"""E5 — Section IV: isolated bandwidth scaling.

Regenerates the per-level speedups from scaling each Table I group alone:
the paper reports average speedups of +4% (L1), +59% (L2) and +11% (DRAM).
Asserted shape: the L2 level dominates by a wide margin, DRAM-alone is
modest, L1-alone is marginal.
"""

import pytest

from repro.core.report import PAPER_AVG_GAINS, render_section_iv


@pytest.mark.benchmark(group="sec4")
def test_sec4_isolated_scaling(
    benchmark, section_iv_exploration, save_report
):
    result = benchmark.pedantic(
        lambda: section_iv_exploration, rounds=1, iterations=1)
    save_report("sec4_speedups", render_section_iv(result))

    gains = {level: result.average_gain(level) for level in ("l1", "l2", "dram")}
    for level, gain in gains.items():
        benchmark.extra_info[f"{level}_gain"] = round(gain, 3)
        benchmark.extra_info[f"{level}_gain_paper"] = PAPER_AVG_GAINS[level]

    # Ordering: L2 >> DRAM > L1 (paper: 59% >> 11% > 4%).
    assert gains["l2"] > gains["dram"] > gains["l1"]
    # Magnitudes: L2 is a large win, DRAM modest, L1 marginal.
    assert gains["l2"] > 0.25
    assert 0.0 < gains["dram"] < gains["l2"] / 2
    assert abs(gains["l1"]) < 0.10

    # The paper's central claim: scaling the cache hierarchy (L1+L2)
    # exceeds a baseline cache hierarchy with high-bandwidth DRAM.
    assert result.average_gain("l1+l2") > gains["dram"]


@pytest.mark.benchmark(group="sec4")
def test_sec4_per_benchmark_winners(benchmark, section_iv_exploration):
    """Each scaled level wins big for the benchmarks it bottlenecks:
    L2 scaling for the cache-bandwidth-bound kernels, DRAM scaling for the
    streaming kernels, and neither for the compute-bound one."""
    result = benchmark.pedantic(
        lambda: section_iv_exploration, rounds=1, iterations=1)

    l2_wins = result.speedups("l2")
    dram_wins = result.speedups("dram")
    for name in ("dwt2d", "sc", "ss"):  # L2-bandwidth-bound models
        assert l2_wins[name] > 1.25, name
    assert dram_wins["lbm"] > 1.25  # DRAM-bound streaming stencil
    # Compute-bound: insensitive to every scaling.
    for label in ("l1", "l2", "dram"):
        assert abs(result.speedup(label, "leukocyte") - 1.0) < 0.08
    benchmark.extra_info["l2_best"] = max(l2_wins, key=l2_wins.get)
    benchmark.extra_info["dram_best"] = max(dram_wins, key=dram_wins.get)
