"""E7 — Section IV: isolated L1 scaling can be counter-productive.

The paper: "increasing the L1 bandwidth by increasing the MSHRs to handle
more outstanding misses can lead to performance degradation due to an
even higher congestion between L1 and L2.  However, matching the
increased bandwidth demand of L1 at L2 significantly improves
performance."

Asserted shape: at least one benchmark slows down under L1-alone scaling,
and for those benchmarks the L1+L2 combination recovers (and beats) the
baseline.
"""

import pytest

from repro.utils.tables import render_table


@pytest.mark.benchmark(group="sec4")
def test_sec4_l1_counterproductive(
    benchmark, section_iv_exploration, save_report
):
    result = benchmark.pedantic(
        lambda: section_iv_exploration, rounds=1, iterations=1)

    degraded = result.degraded_benchmarks("l1")
    rows = [
        [name,
         f"{result.speedup('l1', name):.3f}x",
         f"{result.speedup('l1+l2', name):.3f}x"]
        for name in result.benchmarks
    ]
    save_report(
        "sec4_l1_counterproductive",
        render_table(
            ["benchmark", "L1 alone", "L1+L2"], rows,
            title="Counter-productive isolated L1 scaling "
                  f"(degraded: {', '.join(degraded) or 'none'})"))
    benchmark.extra_info["degraded"] = ",".join(degraded)

    # The counter-productive case exists...
    assert degraded, "no benchmark degraded under isolated L1 scaling"
    # ...and L1 scaling is never a large win on its own...
    assert result.average_gain("l1") < 0.10
    # ...but matching the L1 demand at the L2 recovers the loss.
    for name in degraded:
        assert result.speedup("l1+l2", name) >= result.speedup("l1", name)
    assert result.average_gain("l1+l2") > 0.2
