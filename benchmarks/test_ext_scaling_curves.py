"""EXT-3 — scaling-coefficient curves (Table I's "~4x" made a variable).

The paper chooses 4x "just to demonstrate the potential of resolving
congestion at each level".  This extension sweeps the coefficient (1x,
2x, 4x) per level over a representative benchmark pair and reports where
each level's benefit saturates.
"""

import pytest

from repro.core.bottleneck import diagnose_suite, render_diagnoses
from repro.core.scaling_curve import (
    render_scaling_curves,
    sweep_scaling_coefficient,
)

BENCHES = ("sc", "lbm")
FACTORS = (1, 2, 4)


@pytest.mark.benchmark(group="extension")
def test_ext_scaling_curves(benchmark, baseline_config, scale, save_report):
    def run():
        return [
            sweep_scaling_coefficient(
                baseline_config, level, factors=FACTORS,
                benchmarks=BENCHES, iteration_scale=scale)
            for level in ("l2", "dram")
        ]

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ext_scaling_curves", render_scaling_curves(curves))
    by_level = {c.level: c for c in curves}
    for level, curve in by_level.items():
        for factor in FACTORS:
            benchmark.extra_info[f"{level}_{factor}x"] = round(
                curve.average_speedup(factor), 3)

    # Gains grow (weakly) with the coefficient for both levels.
    for curve in curves:
        speedups = [curve.average_speedup(f) for f in FACTORS]
        for lo, hi in zip(speedups, speedups[1:]):
            assert hi >= lo * 0.97
    # On this pair the L2 level gains more from its 4x than DRAM does.
    assert (
        by_level["l2"].average_speedup(4)
        > by_level["dram"].average_speedup(4) * 0.9
    )


@pytest.mark.benchmark(group="extension")
def test_ext_bottleneck_classification(
    benchmark, baseline_config, scale, save_report
):
    """The automated classifier reproduces the suite's design intent."""

    def run():
        return diagnose_suite(baseline_config, iteration_scale=scale)

    diagnoses = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ext_bottleneck_classification", render_diagnoses(diagnoses))
    by_name = {d.benchmark: d.bottleneck.value for d in diagnoses}
    benchmark.extra_info.update(by_name)

    assert by_name["leukocyte"] == "compute"
    assert by_name["lbm"] == "dram_bandwidth"
    assert by_name["sc"] == "l1_l2_bandwidth"
    assert by_name["nw"] == "latency"
    # Every benchmark gets a deterministic verdict.
    assert len(by_name) == 8
