"""A3 — structural ablations: L2 capacity and warp scheduling policy.

The paper's introduction attributes the off-chip pressure to "high cache
miss rates and cache thrashing"; these ablations quantify both sides of
that sentence on our models:

* **L2 capacity sweep** — the hot-set benchmark's L2 hit rate and IPC as
  the L2 shrinks below / grows beyond its working set (thrash knee);
* **LRR vs GTO** — scheduler-induced locality differences across the two
  cache-sensitive benchmarks.
"""

import dataclasses

import pytest

from repro import get_benchmark, run_kernel
from repro.utils.tables import render_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_l2_capacity(benchmark, baseline_config, scale, save_report):
    kernel = get_benchmark("sc", scale)  # hot set sized for the 128 KiB slice
    sizes_kib = (32, 64, 128, 256)

    def run():
        out = {}
        for size in sizes_kib:
            config = dataclasses.replace(
                baseline_config,
                l2=dataclasses.replace(
                    baseline_config.l2, size_bytes=size * 1024))
            out[size] = run_kernel(config, kernel)
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{size} KiB/slice", f"{m.l2_hit_rate:.1%}", f"{m.ipc:.3f}",
         m.dram_reads]
        for size, m in runs.items()
    ]
    save_report(
        "ablation_l2_capacity",
        render_table(
            ["L2 capacity", "L2 hit rate", "IPC", "DRAM reads"], rows,
            title="L2 capacity sweep (sc): the thrash knee"))
    for size, m in runs.items():
        benchmark.extra_info[f"kib{size}_hit"] = round(m.l2_hit_rate, 3)

    # Hit rate grows monotonically with capacity...
    hits = [runs[s].l2_hit_rate for s in sizes_kib]
    for small, big in zip(hits, hits[1:]):
        assert big >= small - 0.02
    # ...and the hot set thrashes badly at quarter capacity.
    assert runs[32].l2_hit_rate < runs[128].l2_hit_rate - 0.15
    # More DRAM traffic when thrashing.
    assert runs[32].dram_reads > runs[256].dram_reads


@pytest.mark.benchmark(group="ablation")
def test_ablation_warp_scheduler(
    benchmark, baseline_config, scale, save_report
):
    def run():
        out = {}
        for policy in ("lrr", "gto"):
            config = dataclasses.replace(
                baseline_config,
                core=dataclasses.replace(
                    baseline_config.core, scheduler=policy))
            out[policy] = {
                name: run_kernel(
                    config,
                    # Strip the kernel's own scheduler override so the
                    # config's policy is exercised.
                    get_benchmark(name, scale),
                )
                for name in ("sc", "leukocyte")
            }
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for policy, by_bench in runs.items():
        for name, m in by_bench.items():
            rows.append(
                [policy, name, f"{m.ipc:.3f}", f"{m.l1_hit_rate:.1%}",
                 f"{m.l2_hit_rate:.1%}"])
    save_report(
        "ablation_warp_scheduler",
        render_table(
            ["policy", "benchmark", "IPC", "L1 hit", "L2 hit"], rows,
            title="Warp scheduling policy (LRR vs GTO)"))
    for policy, by_bench in runs.items():
        for name, m in by_bench.items():
            benchmark.extra_info[f"{policy}_{name}_ipc"] = round(m.ipc, 3)

    # Same work either way; neither policy collapses.
    for name in ("sc", "leukocyte"):
        lrr, gto = runs["lrr"][name], runs["gto"][name]
        assert lrr.instructions == gto.instructions
        assert min(lrr.ipc, gto.ipc) > 0.5 * max(lrr.ipc, gto.ipc)
