"""E3 — Section III: measuring the bandwidth bottleneck.

Regenerates the queue-occupancy measurement: the fraction of each queue's
usage lifetime spent completely full, per benchmark and averaged over the
suite.  The paper reports 46% for the L2 access queues and 39% for the
DRAM scheduler queues on its GTX480 baseline; this reproduction asserts
the *shape* — substantial congestion at both levels on the baseline, and
an order-of-magnitude drop once the Table I design space is applied.
"""

import pytest

from repro import measure_congestion, scale_levels
from repro.core.report import (
    PAPER_DRAM_SCHEDQ_FULL,
    PAPER_L2_ACCESSQ_FULL,
    render_congestion,
)


@pytest.mark.benchmark(group="sec3")
def test_sec3_queue_occupancy(benchmark, baseline_config, scale, save_report):
    def run():
        return measure_congestion(baseline_config, iteration_scale=scale)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("sec3_queue_occupancy", render_congestion(report))

    l2_full = report.avg_l2_access_queue_full
    dram_full = report.avg_dram_queue_full
    benchmark.extra_info["l2_accessq_full"] = round(l2_full, 3)
    benchmark.extra_info["l2_accessq_full_paper"] = PAPER_L2_ACCESSQ_FULL
    benchmark.extra_info["dram_schedq_full"] = round(dram_full, 3)
    benchmark.extra_info["dram_schedq_full_paper"] = PAPER_DRAM_SCHEDQ_FULL

    # Substantial congestion at both levels (same order as 46% / 39%).
    assert 0.10 <= l2_full <= 0.80
    assert 0.10 <= dram_full <= 0.80
    # Per-benchmark sanity: at least half the suite shows L2-path pressure.
    pressured = sum(
        1 for m in report.runs.values()
        if m.l2_accessq.full_fraction > 0.2 or m.l2_respq.full_fraction > 0.2
    )
    assert pressured >= len(report.runs) // 2


@pytest.mark.benchmark(group="sec3")
def test_sec3_congestion_vanishes_when_scaled(
    benchmark, baseline_config, scale, save_report
):
    """Back-pressure, not capacity, fills the baseline queues: with the
    full Table I scaling the same workloads leave them nearly empty."""
    relieved_config = scale_levels(baseline_config, ("l1", "l2", "dram"))

    def run():
        return measure_congestion(relieved_config, iteration_scale=scale)

    relieved = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = measure_congestion(baseline_config, iteration_scale=scale)
    save_report(
        "sec3_scaled_queue_occupancy",
        relieved.to_table()
        + f"\n\nbaseline L2 accessQ full: {baseline.avg_l2_access_queue_full:.0%}"
        + f" -> scaled: {relieved.avg_l2_access_queue_full:.0%}"
        + f"\nbaseline DRAM schedQ full: {baseline.avg_dram_queue_full:.0%}"
        + f" -> scaled: {relieved.avg_dram_queue_full:.0%}",
    )
    benchmark.extra_info["scaled_l2_accessq_full"] = round(
        relieved.avg_l2_access_queue_full, 3)
    benchmark.extra_info["scaled_dram_schedq_full"] = round(
        relieved.avg_dram_queue_full, 3)
    # The scaled machine runs the same workloads much faster, so demand per
    # cycle rises; congestion must still drop in both Table I queues.
    assert relieved.avg_l2_access_queue_full < baseline.avg_l2_access_queue_full
    assert relieved.avg_dram_queue_full < baseline.avg_dram_queue_full
