"""Simulator-throughput benchmarks (engineering, not paper artifacts).

Tracks the simulator's own speed in simulated kilocycles per wall second
on three representative loads.  These are the only benchmarks here where
the *time* column is the result; a large regression means a hot-path
change made the whole experiment harness proportionally slower.
"""

import pytest

from repro import get_benchmark
from repro.gpu import GPU
from repro.sim.config import SimConfig

#: The event-calendar engine (engine_mode="event") is benchmarked
#: alongside the default ticked engine under distinct test names, so the
#: committed trajectory records both modes per entry while the original
#: three names keep their history.
_EVENT = SimConfig(engine_mode="event")


def _run(config, kernel, sim_config=None):
    gpu = GPU(config, kernel, sim_config=sim_config)
    gpu.run(max_cycles=5_000_000)
    return gpu


@pytest.mark.benchmark(group="perf")
def test_perf_congested_run(benchmark, baseline_config):
    """sc at 0.25 scale: a heavily congested memory system (worst case for
    per-cycle Python work)."""
    kernel = get_benchmark("sc", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    # Floors are ~25% of the reference-machine rates (congested ~10k,
    # compute ~25k, magic ~48k kcycles/s) — slack for slower CI runners,
    # tight enough to catch an accidental hot-path regression.
    assert kcycles_per_s > 2.5


@pytest.mark.benchmark(group="perf")
def test_perf_compute_bound_run(benchmark, baseline_config):
    """leukocyte: mostly-idle memory system exercises the fast paths."""
    kernel = get_benchmark("leukocyte", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 6.0


@pytest.mark.benchmark(group="perf")
def test_perf_magic_mode_run(benchmark, baseline_config):
    """Figure 1 mode: only the SMs are simulated, so this bounds the
    latency-profile sweep's cost."""
    kernel = get_benchmark("sc", 0.25)
    config = baseline_config.with_magic_memory(200)
    gpu = benchmark(lambda: _run(config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 12.0


@pytest.mark.benchmark(group="perf")
def test_perf_congested_run_event(benchmark, baseline_config):
    """sc at 0.25 scale on the event-calendar engine."""
    kernel = get_benchmark("sc", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel, _EVENT))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 2.5


@pytest.mark.benchmark(group="perf")
def test_perf_compute_bound_run_event(benchmark, baseline_config):
    """leukocyte on the event-calendar engine: long all-asleep windows
    become single calendar jumps instead of per-cycle wake probes."""
    kernel = get_benchmark("leukocyte", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel, _EVENT))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 6.0


@pytest.mark.benchmark(group="perf")
def test_perf_magic_mode_run_event(benchmark, baseline_config):
    """Figure 1 mode on the event-calendar engine."""
    kernel = get_benchmark("sc", 0.25)
    config = baseline_config.with_magic_memory(200)
    gpu = benchmark(lambda: _run(config, kernel, _EVENT))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 12.0
