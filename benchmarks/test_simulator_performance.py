"""Simulator-throughput benchmarks (engineering, not paper artifacts).

Tracks the simulator's own speed in simulated kilocycles per wall second
on three representative loads.  These are the only benchmarks here where
the *time* column is the result; a large regression means a hot-path
change made the whole experiment harness proportionally slower.
"""

import pytest

from repro import get_benchmark
from repro.gpu import GPU


def _run(config, kernel):
    gpu = GPU(config, kernel)
    gpu.run(max_cycles=5_000_000)
    return gpu


@pytest.mark.benchmark(group="perf")
def test_perf_congested_run(benchmark, baseline_config):
    """sc at 0.25 scale: a heavily congested memory system (worst case for
    per-cycle Python work)."""
    kernel = get_benchmark("sc", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    # Floors are ~25% of the reference-machine rates (congested ~10k,
    # compute ~25k, magic ~48k kcycles/s) — slack for slower CI runners,
    # tight enough to catch an accidental hot-path regression.
    assert kcycles_per_s > 2.5


@pytest.mark.benchmark(group="perf")
def test_perf_compute_bound_run(benchmark, baseline_config):
    """leukocyte: mostly-idle memory system exercises the fast paths."""
    kernel = get_benchmark("leukocyte", 0.25)
    gpu = benchmark(lambda: _run(baseline_config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 6.0


@pytest.mark.benchmark(group="perf")
def test_perf_magic_mode_run(benchmark, baseline_config):
    """Figure 1 mode: only the SMs are simulated, so this bounds the
    latency-profile sweep's cost."""
    kernel = get_benchmark("sc", 0.25)
    config = baseline_config.with_magic_memory(200)
    gpu = benchmark(lambda: _run(config, kernel))
    kcycles_per_s = gpu.cycles / 1000 / benchmark.stats["mean"]
    benchmark.extra_info["sim_kcycles_per_s"] = round(kcycles_per_s, 1)
    assert kcycles_per_s > 12.0
