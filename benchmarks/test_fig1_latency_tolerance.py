"""E1/E2 — Figure 1: performance variation with increasing L1 miss latency.

Regenerates the paper's latency-tolerance profile for the full suite:
IPC under a fixed-latency memory system (x = 0..800 cycles), normalized
to the true baseline.  Asserts the paper's two observations:

1. baseline performance is far from the low-latency plateau for the
   memory-intensive benchmarks (normalized IPC at latency 0 well above 1);
2. the 1.0x intercept — the effective baseline latency — lies above the
   unloaded L2 round trip (~120 cy) for every memory-bound benchmark, and
   above the unloaded DRAM round trip for the most congested ones.
"""

import pytest

from repro import PAPER_SUITE, profile_latency_tolerance
from repro.core.latency_profile import IDEAL_DRAM_LATENCY, IDEAL_L2_LATENCY
from repro.core.report import render_figure1

LATENCIES = tuple(range(0, 801, 100))

#: Benchmarks the paper's figure shows as strongly latency/bandwidth bound.
MEMORY_BOUND = ("cfd", "dwt2d", "nn", "sc", "lbm", "ss")
#: The compute-bound outlier with the flattest curve.
COMPUTE_BOUND = "leukocyte"


@pytest.mark.benchmark(group="fig1")
def test_fig1_latency_tolerance(benchmark, baseline_config, scale, save_report):
    def run():
        return [
            profile_latency_tolerance(
                name, baseline_config, latencies=LATENCIES,
                iteration_scale=scale)
            for name in PAPER_SUITE
        ]

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig1_latency_tolerance", render_figure1(profiles))

    by_name = {p.benchmark: p for p in profiles}
    for profile in profiles:
        benchmark.extra_info[f"{profile.benchmark}_peak"] = round(
            profile.peak_normalized_ipc, 2)
        intercept = profile.intercept_latency()
        benchmark.extra_info[f"{profile.benchmark}_intercept"] = (
            None if intercept is None else round(intercept))
        # Shape: every curve is non-increasing in latency (small tolerance
        # for simulation noise).
        ipcs = [pt.ipc for pt in profile.points]
        for earlier, later in zip(ipcs, ipcs[1:]):
            assert later <= earlier * 1.05, profile.benchmark

    # Observation 1: memory-bound benchmarks sit far from their plateau.
    for name in MEMORY_BOUND:
        assert by_name[name].peak_normalized_ipc > 2.0, name
    # The compute-bound benchmark barely moves.
    assert by_name[COMPUTE_BOUND].peak_normalized_ipc < 1.5

    # Observation 2: effective baseline latencies exceed the unloaded L2
    # latency for all memory-bound benchmarks...
    for name in MEMORY_BOUND:
        intercept = by_name[name].intercept_latency()
        assert intercept is not None and intercept > IDEAL_L2_LATENCY, name
    # ...and exceed the unloaded DRAM latency for most (congestion).
    beyond_dram = sum(
        1 for name in MEMORY_BOUND
        if by_name[name].intercept_latency() > IDEAL_DRAM_LATENCY
    )
    assert beyond_dram >= len(MEMORY_BOUND) - 1


@pytest.mark.benchmark(group="fig1")
def test_fig1_intercept_matches_measured_latency(
    benchmark, baseline_config, scale
):
    """Methodology self-check: the 1.0x intercept independently estimates
    the baseline's measured average L1 miss latency."""

    def run():
        return profile_latency_tolerance(
            "sc", baseline_config, latencies=LATENCIES,
            iteration_scale=scale)

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    intercept = profile.intercept_latency()
    measured = profile.baseline_avg_miss_latency
    benchmark.extra_info["intercept"] = round(intercept)
    benchmark.extra_info["measured_avg_miss_latency"] = round(measured)
    assert abs(intercept - measured) / measured < 0.35
