"""E4 — Table I: the consolidated design space.

Regenerates the paper's Table I (parameter, type, baseline, ~4x scaled
value) directly from the configuration system, and verifies that applying
each row actually produces the stated value in a concrete ``GPUConfig`` —
i.e. the printed table and the simulated architecture cannot drift apart.
"""

import pytest

from repro import TABLE_I, render_table_i, scaled_config, small_gpu
from repro.core.design_space import parameters_for_level

#: How each Table I key is read back out of a GPUConfig.
_READERS = {
    "dram_sched_queue": lambda c: c.dram.sched_queue_depth,
    "dram_banks": lambda c: c.dram.banks,
    "dram_bus_width": lambda c: c.dram.bus_bytes,
    "l2_miss_queue": lambda c: c.l2.miss_queue_depth,
    "l2_response_queue": lambda c: c.l2.response_queue_depth,
    "l2_mshr": lambda c: c.l2.mshr_entries,
    "l2_access_queue": lambda c: c.l2.access_queue_depth,
    "l2_data_port": lambda c: c.l2.data_port_bytes,
    "flit_size": lambda c: c.icnt.flit_bytes,
    "l2_banks": lambda c: c.l2.banks,
    "l1_miss_queue": lambda c: c.l1.miss_queue_depth,
    "l1_mshr": lambda c: c.l1.mshr_entries,
    "mem_pipeline_width": lambda c: c.core.mem_pipeline_width,
}


@pytest.mark.benchmark(group="table1")
def test_table1_design_space(benchmark, baseline_config, save_report):
    def run():
        return render_table_i()

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table1_design_space", table)

    assert len(TABLE_I) == 13 == len(_READERS)
    for parameter in TABLE_I:
        reader = _READERS[parameter.key]
        # Baseline value in the default configuration...
        assert reader(baseline_config) == parameter.baseline, parameter.key
        # ...and the scaled value after applying the row.
        scaled = scaled_config(baseline_config, parameter.key)
        assert reader(scaled) == parameter.scaled, parameter.key
        # The paper's ~4x scaling (bus width is the stated 2x exception).
        ratio = parameter.scaled / parameter.baseline
        assert ratio == (2.0 if parameter.key == "dram_bus_width" else 4.0)

    # Level grouping exactly as printed: (a) DRAM 3, (b) L2 7, (c) L1 3.
    assert [len(parameters_for_level(l)) for l in ("dram", "l2", "l1")] == [3, 7, 3]
    benchmark.extra_info["rows"] = len(TABLE_I)
