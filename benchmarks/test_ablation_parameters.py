"""A1 — ablations beyond the paper: per-parameter sweeps.

DESIGN.md calls out three design choices whose individual contribution the
paper folds into whole-level scalings; these ablations separate them:

* the DRAM scheduler-queue depth ('=': exposes row hits / bank parallelism),
* the crossbar flit size ('+': raw L1<->L2 bandwidth),
* FR-FCFS vs FCFS scheduling (the baseline policy choice).
"""

import dataclasses

import pytest

from repro import get_benchmark, run_kernel, sweep_parameter
from repro.utils.tables import render_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_dram_sched_queue(
    benchmark, baseline_config, scale, save_report
):
    """Deeper scheduler queues help the irregular DRAM-bound benchmark,
    with diminishing returns once lookahead saturates."""

    def run():
        return sweep_parameter(
            baseline_config, "dram_sched_queue", values=(4, 16, 64),
            benchmark="cfd", iteration_scale=scale)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = sweep.speedups()
    rows = [
        [v, f"{speedups[v]:.2f}x",
         f"{sweep.points[v].dram_row_hit_rate:.1%}",
         f"{sweep.points[v].dram_schedq.full_fraction:.1%}"]
        for v in sorted(sweep.points)
    ]
    save_report(
        "ablation_dram_sched_queue",
        render_table(
            ["entries", "speedup", "row-hit rate", "schedQ full"], rows,
            title="DRAM scheduler-queue depth sweep (cfd)"))
    for v in sorted(sweep.points):
        benchmark.extra_info[f"q{v}"] = round(speedups[v], 3)
    # Monotone non-degrading, and 64 > 4 materially.
    assert speedups[16] >= speedups[4] * 0.98
    assert speedups[64] >= speedups[4] * 1.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_flit_size(benchmark, baseline_config, scale, save_report):
    """Flit size is the L1<->L2 bandwidth lever: the L2-bound benchmark
    scales with it until another resource binds."""

    def run():
        return sweep_parameter(
            baseline_config, "flit_size", values=(4, 8, 16),
            benchmark="sc", iteration_scale=scale)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = sweep.speedups()
    rows = [[v, f"{speedups[v]:.2f}x"] for v in sorted(sweep.points)]
    save_report(
        "ablation_flit_size",
        render_table(["flit bytes", "speedup"], rows,
                     title="Crossbar flit-size sweep (sc)"))
    for v in sorted(sweep.points):
        benchmark.extra_info[f"flit{v}"] = round(speedups[v], 3)
    assert speedups[8] > 1.05
    assert speedups[16] >= speedups[8]


@pytest.mark.benchmark(group="ablation")
def test_ablation_frfcfs_vs_fcfs(
    benchmark, baseline_config, scale, save_report
):
    """FR-FCFS's row-hit-first policy beats in-order FCFS for streaming
    traffic with bank contention."""
    fcfs_config = dataclasses.replace(
        baseline_config,
        dram=dataclasses.replace(baseline_config.dram, scheduler="fcfs"))
    kernel = get_benchmark("lbm", scale)

    def run():
        frfcfs = run_kernel(baseline_config, kernel)
        fcfs = run_kernel(fcfs_config, kernel)
        return frfcfs, fcfs

    frfcfs, fcfs = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_dram_scheduler",
        render_table(
            ["policy", "IPC", "row-hit rate", "bus util"],
            [["frfcfs", f"{frfcfs.ipc:.3f}",
              f"{frfcfs.dram_row_hit_rate:.1%}",
              f"{frfcfs.dram_bus_utilization:.1%}"],
             ["fcfs", f"{fcfs.ipc:.3f}",
              f"{fcfs.dram_row_hit_rate:.1%}",
              f"{fcfs.dram_bus_utilization:.1%}"]],
            title="DRAM scheduling policy (lbm)"))
    benchmark.extra_info["frfcfs_ipc"] = round(frfcfs.ipc, 3)
    benchmark.extra_info["fcfs_ipc"] = round(fcfs.ipc, 3)
    assert frfcfs.ipc >= fcfs.ipc
    assert frfcfs.dram_row_hit_rate >= fcfs.dram_row_hit_rate


@pytest.mark.benchmark(group="ablation")
def test_ablation_icnt_topology(
    benchmark, baseline_config, scale, save_report
):
    """Crossbar vs bidirectional ring at equal per-link bandwidth: shared
    ring links concentrate the L1<->L2 traffic, so the cache-bandwidth-
    bound benchmark suffers more congestion on the ring."""
    ring_config = dataclasses.replace(
        baseline_config,
        icnt=dataclasses.replace(baseline_config.icnt, topology="ring"))
    kernel = get_benchmark("sc", scale)

    def run():
        xbar = run_kernel(baseline_config, kernel)
        ring = run_kernel(ring_config, kernel)
        return xbar, ring

    xbar, ring = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_icnt_topology",
        render_table(
            ["topology", "IPC", "avg miss latency"],
            [["crossbar (baseline)", f"{xbar.ipc:.3f}",
              f"{xbar.l1_avg_miss_latency:.0f}"],
             ["ring", f"{ring.ipc:.3f}",
              f"{ring.l1_avg_miss_latency:.0f}"]],
            title="Interconnect topology (sc)"))
    benchmark.extra_info["xbar_ipc"] = round(xbar.ipc, 3)
    benchmark.extra_info["ring_ipc"] = round(ring.ipc, 3)
    # Both topologies complete; the ring does not outperform the crossbar
    # for bisection-heavy traffic.
    assert ring.ipc <= xbar.ipc * 1.05
    assert ring.ipc > 0.3 * xbar.ipc
