"""E6 — Section IV: synergistic scaling.

The paper: "we observe an average speedup of 69% and 76% on increasing
the combined bandwidth of L1-L2 and L2-DRAM respectively, which is
greater than the respective sum of the individual gains.  Therefore, we
demonstrate that synergistic scaling yields better results than
increasing the bandwidth at the memory levels independently."

Asserted shape: both combinations are super-additive, and the L2+DRAM
combination is the largest overall gain.
"""

import pytest

from repro import analyze_synergy


@pytest.mark.benchmark(group="sec4")
def test_sec4_synergistic_scaling(
    benchmark, section_iv_exploration, save_report
):
    analysis = benchmark.pedantic(
        lambda: analyze_synergy(section_iv_exploration),
        rounds=1, iterations=1)
    save_report("sec4_synergy", analysis.to_table())

    by_label = {p.combined_label: p for p in analysis.pairs}
    for label, pair in by_label.items():
        benchmark.extra_info[f"{label}_gain"] = round(pair.combined_gain, 3)
        benchmark.extra_info[f"{label}_synergy"] = round(pair.synergy, 3)

    # Super-additivity of both combinations.
    assert analysis.all_super_additive
    # Both combinations beat every isolated level.
    result = section_iv_exploration
    best_isolated = max(
        result.average_gain(l) for l in ("l1", "l2", "dram"))
    assert by_label["l1+l2"].combined_gain > best_isolated
    assert by_label["l2+dram"].combined_gain > best_isolated


@pytest.mark.benchmark(group="sec4")
def test_sec4_congestion_moves_when_scaled_in_isolation(
    benchmark, section_iv_exploration
):
    """Mechanism check: relieving only the L2 pushes congestion down to
    DRAM — 'solving the problem in isolation can lead to even more
    congestion elsewhere in the memory system'."""
    result = benchmark.pedantic(
        lambda: section_iv_exploration, rounds=1, iterations=1)
    moved = 0
    for name in result.benchmarks:
        base = result.runs["baseline"][name]
        l2_scaled = result.runs["l2"][name]
        if (
            l2_scaled.dram_schedq.full_fraction
            > base.dram_schedq.full_fraction + 0.05
        ):
            moved += 1
    benchmark.extra_info["benchmarks_with_moved_congestion"] = moved
    assert moved >= 2
