"""EXT-1 — the paper's future work: cost-effective congestion mitigation.

"In future, we plan to assess the complexity and cost of the various
design configurations in order to evaluate most cost-effective ways to
mitigate the bandwidth bottleneck."

Combines the Section IV exploration with a relative area/complexity cost
model over the Table I rows, ranks configurations by gain-per-cost and
extracts the pareto frontier.
"""

import pytest

from repro.core.cost_model import (
    cost_effectiveness,
    pareto_frontier,
    render_cost_effectiveness,
)
from repro.core.explorer import SECTION_IV_CONFIGS


@pytest.mark.benchmark(group="extension")
def test_ext_cost_effectiveness(
    benchmark, section_iv_exploration, save_report
):
    def run():
        points = cost_effectiveness(
            section_iv_exploration, SECTION_IV_CONFIGS)
        return points, pareto_frontier(points)

    points, frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_cost_effectiveness",
        render_cost_effectiveness(points, frontier))

    by_label = {p.label: p for p in points}
    for p in points:
        benchmark.extra_info[f"{p.label}_eff"] = round(p.efficiency, 2)

    # The L2 level should be the most cost-effective single level (its gain
    # dwarfs the others at comparable cost) ...
    singles = [by_label[l] for l in ("l1", "l2", "dram")]
    assert max(singles, key=lambda p: p.efficiency).label == "l2"
    # ... and must sit on the pareto frontier.
    frontier_labels = {p.label for p in frontier}
    assert "l2" in frontier_labels or "l1+l2" in frontier_labels
    # The frontier is cost-sorted with non-decreasing gains.
    assert frontier
    costs = [p.cost for p in frontier]
    gains = [p.gain for p in frontier]
    assert costs == sorted(costs)
    assert gains == sorted(gains)
