"""A2 — congestion-mitigation ablations beyond the Table I design space.

The paper's introduction cites warp-throttling work (MASCAR) as the
motivation for understanding where congestion sits; these ablations probe
that mitigation space on our baseline:

* **TLP throttling** — capping active warps per SM reduces the number of
  concurrent misses, trading parallelism for lower queueing latency;
* **L1 write policy** — write-back vs the baseline write-through for the
  store-heavy benchmark;
* **DRAM refresh** — sanity check that modelled refresh steals bandwidth
  roughly in proportion to its duty cycle.
"""

import dataclasses

import pytest

from repro import get_benchmark, run_kernel
from repro.utils.tables import render_table


def _with_core(config, **kw):
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core, **kw))


@pytest.mark.benchmark(group="ablation")
def test_ablation_tlp_throttling(
    benchmark, baseline_config, scale, save_report
):
    kernel = get_benchmark("ss", scale)
    limits = (1, 2, 4, 16)

    def run():
        return {
            limit: run_kernel(
                _with_core(baseline_config, active_warp_limit=limit), kernel)
            for limit in limits
        }

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [limit,
         f"{m.ipc:.3f}",
         f"{m.l1_avg_miss_latency:.0f}",
         f"{m.l2_accessq.full_fraction:.0%}"]
        for limit, m in runs.items()
    ]
    save_report(
        "ablation_tlp_throttling",
        render_table(
            ["active warps/SM", "IPC", "avg miss latency", "L2 accessQ full"],
            rows, title="TLP throttling sweep (ss)"))
    for limit, m in runs.items():
        benchmark.extra_info[f"w{limit}_ipc"] = round(m.ipc, 3)

    # Fewer warps -> fewer outstanding misses -> lower queueing latency.
    assert runs[1].l1_avg_miss_latency < 0.8 * runs[16].l1_avg_miss_latency
    # But a bandwidth-bound benchmark needs the parallelism: severe
    # throttling costs throughput.
    assert runs[1].ipc < runs[16].ipc


@pytest.mark.benchmark(group="ablation")
def test_ablation_l1_write_policy(
    benchmark, baseline_config, scale, save_report
):
    kernel = get_benchmark("lbm", scale)
    wb_config = dataclasses.replace(
        baseline_config,
        l1=dataclasses.replace(baseline_config.l1, write_policy="write_back"))

    def run():
        wt = run_kernel(baseline_config, kernel)
        wb = run_kernel(wb_config, kernel)
        return wt, wb

    wt, wb = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_l1_write_policy",
        render_table(
            ["policy", "IPC", "DRAM reads", "DRAM writes"],
            [["write-through (baseline)", f"{wt.ipc:.3f}", wt.dram_reads,
              wt.dram_writes],
             ["write-back", f"{wb.ipc:.3f}", wb.dram_reads, wb.dram_writes]],
            title="L1 write policy (lbm)"))
    benchmark.extra_info["wt_ipc"] = round(wt.ipc, 3)
    benchmark.extra_info["wb_ipc"] = round(wb.ipc, 3)
    # Both policies complete the same kernel with the same instruction
    # count; lbm streams stores (no reuse) so neither should collapse.
    assert wt.instructions == wb.instructions
    assert wb.ipc > 0.5 * wt.ipc


@pytest.mark.benchmark(group="ablation")
def test_ablation_dram_refresh(benchmark, baseline_config, scale, save_report):
    kernel = get_benchmark("nn", scale)
    refresh_config = dataclasses.replace(
        baseline_config,
        dram=dataclasses.replace(
            baseline_config.dram, refresh_interval=2000, refresh_cycles=200))

    def run():
        base = run_kernel(baseline_config, kernel)
        refreshed = run_kernel(refresh_config, kernel)
        return base, refreshed

    base, refreshed = benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = base.ipc / refreshed.ipc if refreshed.ipc else float("inf")
    save_report(
        "ablation_dram_refresh",
        render_table(
            ["config", "IPC"],
            [["no refresh (baseline)", f"{base.ipc:.3f}"],
             ["10% refresh duty cycle", f"{refreshed.ipc:.3f}"]],
            title=f"DRAM refresh overhead (nn): {slowdown:.2f}x slowdown"))
    benchmark.extra_info["slowdown"] = round(slowdown, 3)
    # Refresh costs something, bounded by a few times its 10% duty cycle.
    assert 1.0 <= slowdown < 1.5
