"""Shared fixtures for the experiment-regeneration benchmarks.

Each benchmark module regenerates one artifact of the paper (a figure,
a table, or a reported aggregate).  All experiments run on the reduced-
scale baseline (``small_gpu``); the iteration scale can be adjusted with
the ``REPRO_BENCH_SCALE`` environment variable (default 0.5 — halves each
kernel's iteration count to keep the full suite's wall time reasonable
while leaving the congestion behaviour intact).

Results are printed AND written to ``benchmarks/results/*.txt`` so the
regenerated artifacts survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import small_gpu
from repro.core.explorer import explore_design_space

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Iteration scale for every experiment (env-overridable).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def baseline_config():
    return small_gpu()


@pytest.fixture(scope="session")
def save_report():
    """Writer for regenerated artifacts: save_report(name, text)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")
        return path

    return _save


_EXPLORATION_CACHE: dict = {}


@pytest.fixture(scope="session")
def section_iv_exploration(baseline_config):
    """The Section IV experiment matrix, computed once per session."""
    key = (SCALE, SEED)
    if key not in _EXPLORATION_CACHE:
        _EXPLORATION_CACHE[key] = explore_design_space(
            baseline_config, iteration_scale=SCALE, seed=SEED)
    return _EXPLORATION_CACHE[key]
