"""EXT-2 — per-hop latency breakdown (extends Section II's observation).

Section II infers congestion by comparing effective latencies against the
ideal access latencies.  This extension locates the congestion directly:
per-hop timestamps break the average L2-miss round trip into segments,
and the congestion share (latency beyond the unloaded round trip) is
computed per benchmark.
"""

import pytest

from repro.core.latency_breakdown import (
    congestion_share,
    measure_latency_breakdown,
)

#: One benchmark per bottleneck class.
CASES = ("sc", "lbm", "leukocyte")


@pytest.mark.benchmark(group="extension")
def test_ext_latency_breakdown(benchmark, baseline_config, scale, save_report):
    def run():
        return {
            name: measure_latency_breakdown(
                baseline_config, name, iteration_scale=scale)
            for name in CASES
        }

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)
    report = []
    for name, breakdown in breakdowns.items():
        share = congestion_share(breakdown, baseline_config)
        benchmark.extra_info[f"{name}_congestion_share"] = round(share, 2)
        report.append(breakdown.to_table())
        report.append(f"congestion share of the L2-miss round trip: {share:.0%}\n")
    save_report("ext_latency_breakdown", "\n".join(report))

    # The L2-bandwidth-bound benchmark accrues most of its delay before
    # DRAM (queues + response network), the DRAM-bound one inside DRAM.
    sc = breakdowns["sc"]
    lbm = breakdowns["lbm"]
    assert lbm.mean("dram_service") > sc.mean("dram_service")
    sc_cache_side = sc.mean("l2_queue") + sc.mean("response_network")
    assert sc_cache_side > sc.mean("dram_service")

    # Memory-bound benchmarks: most of the observed latency is congestion.
    assert congestion_share(sc, baseline_config) > 0.3
    assert congestion_share(lbm, baseline_config) > 0.3
