"""Memory request objects.

A :class:`MemoryRequest` is created by an SM's coalescer for one cache-line
transaction and travels — as a single mutable object — through L1, the
crossbar, L2 and DRAM, collecting per-hop timestamps on the way.  The
timestamps power the paper's latency analysis: the Figure 1 discussion
("baseline memory latencies are critically higher than the ideal access
latencies") compares measured L1-miss round trips against unloaded L2/DRAM
latencies, and the per-hop deltas show *where* congestion adds time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class AccessKind(enum.Enum):
    """The kinds of memory transactions the hierarchy carries."""

    LOAD = "load"
    STORE = "store"
    #: Dirty line evicted from L2, headed for DRAM.
    WRITEBACK = "writeback"

    @property
    def is_write(self) -> bool:
        return self is not AccessKind.LOAD


@dataclass(slots=True)
class MemoryRequest:
    """One line-sized memory transaction.

    ``line`` is the line *index* (byte address // line size); all routing
    and cache indexing operate on line indices.
    """

    rid: int
    kind: AccessKind
    line: int
    sm_id: int
    warp_id: int
    #: Core cycle at which the SM handed the transaction to the L1.
    issued_at: int = 0
    #: Per-hop timestamps, keyed by hop name ("l1_miss", "l2_in", "l2_hit",
    #: "dram_in", "dram_done", "l2_out", "l1_fill", ...).
    timestamps: dict[str, int] = field(default_factory=dict)
    #: True once the request is travelling back towards its SM.
    is_response: bool = False
    #: DRAM coordinates cached by the channel controller at admission
    #: (-1 = not yet computed); the FR-FCFS scan reads them every cycle
    #: for every queued request, far too hot for repeated address math.
    dram_bank: int = -1
    dram_row: int = -1
    #: Set by L2 when the request was a miss there (for statistics).
    l2_miss: bool = False
    #: True once the request has left the system for good (load handed back
    #: to its SM, store absorbed by a cache level, writeback drained by
    #: DRAM).  Set unconditionally at every terminal site; consumed by the
    #: :mod:`repro.analysis` sanitizer to prove request conservation.
    retired: bool = False

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    def stamp(self, hop: str, now: int) -> None:
        """Record that the request reached ``hop`` at cycle ``now``."""
        self.timestamps[hop] = now

    def hops(self) -> list[tuple[str, int]]:
        """Recorded ``(hop, cycle)`` pairs in chronological order.

        Ties (several hops stamped on the same cycle) keep recording
        order, so the sequence is the request's actual itinerary — the
        basis for :mod:`repro.telemetry` trace spans.
        """
        return sorted(self.timestamps.items(), key=lambda item: item[1])

    def latency(self, start_hop: str, end_hop: str) -> int | None:
        """Cycles between two recorded hops, or None if either is missing."""
        start = self.timestamps.get(start_hop)
        end = self.timestamps.get(end_hop)
        if start is None or end is None:
            return None
        return end - start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        direction = "resp" if self.is_response else "req"
        return (
            f"MemoryRequest(#{self.rid} {self.kind.value} {direction} "
            f"line={self.line:#x} sm={self.sm_id} warp={self.warp_id})"
        )


class RequestFactory:
    """Allocates uniquely-numbered requests for one simulation run."""

    def __init__(self) -> None:
        self._ids = itertools.count()
        #: Optional callable invoked with every request created; used by the
        #: sanitizer to register requests for conservation tracking.
        self.listener = None

    def make(
        self,
        kind: AccessKind,
        line: int,
        sm_id: int,
        warp_id: int,
        now: int,
    ) -> MemoryRequest:
        request = MemoryRequest(
            rid=next(self._ids),
            kind=kind,
            line=line,
            sm_id=sm_id,
            warp_id=warp_id,
            issued_at=now,
        )
        if self.listener is not None:
            self.listener(request)
        return request
