"""Memory-system primitives: requests, instrumented queues, delay pipes."""

from repro.mem.request import AccessKind, MemoryRequest, RequestFactory
from repro.mem.queue import StatQueue
from repro.mem.pipe import DelayPipe

__all__ = [
    "AccessKind",
    "MemoryRequest",
    "RequestFactory",
    "StatQueue",
    "DelayPipe",
]
