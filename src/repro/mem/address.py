"""Address mapping across partitions, L2 banks and DRAM banks/rows.

All mapping operates on *line indices* (byte address / line size).  Lines
are interleaved across memory partitions at line granularity, matching
GPGPU-Sim's default: consecutive lines hit different partitions, spreading
bandwidth demand.  Within a partition the *local* line index is laid out as

    [ row | dram bank | column ]

so a streaming access pattern produces runs of row-buffer hits on one bank
before moving to the next bank, while the L2 bank is taken from the low
local bits so consecutive local lines alternate L2 banks.
"""

from __future__ import annotations

from repro.sim.config import GPUConfig


class AddressMapper:
    """Precomputed masks/shifts for the partition/bank/row mapping."""

    def __init__(self, config: GPUConfig) -> None:
        self.n_partitions = config.n_partitions
        self._part_mask = config.n_partitions - 1
        self.l2_banks = config.l2.banks
        self._l2_bank_mask = config.l2.banks - 1
        self.dram_banks = config.dram.banks
        self._dram_bank_mask = config.dram.banks - 1
        self.row_lines = config.dram.row_bytes // config.line_bytes
        self._row_shift = self.row_lines.bit_length() - 1

    def partition(self, line: int) -> int:
        """Memory partition servicing ``line``."""
        return line & self._part_mask

    def local_line(self, line: int) -> int:
        """Line index within its partition's local address space."""
        return line >> (self._part_mask.bit_length())

    def l2_bank(self, line: int) -> int:
        """L2 bank within the partition."""
        return self.local_line(line) & self._l2_bank_mask

    def dram_bank(self, line: int) -> int:
        """DRAM bank within the partition's channel."""
        return (self.local_line(line) >> self._row_shift) & self._dram_bank_mask

    def dram_row(self, line: int) -> int:
        """DRAM row within the bank."""
        local = self.local_line(line)
        return local >> (self._row_shift + self._dram_bank_mask.bit_length())
