"""Finite queues with congestion statistics.

Every boundary between two memory-system components is a :class:`StatQueue`.
A full queue refuses pushes, and the refusing producer simply retries later:
that refusal *is* the back-pressure mechanism the paper studies, and the
queue records exactly the statistic Section III reports — the fraction of a
queue's *usage lifetime* (cycles during which it held at least one entry)
for which it was completely full.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.errors import ConfigError, SimulationError
from repro.utils.stats import IntervalTracker

T = TypeVar("T")


class StatQueue(Generic[T]):
    """Bounded FIFO with full-time / busy-time instrumentation.

    All mutating operations take the current cycle so occupancy intervals
    can be integrated event-wise (no per-cycle sampling).
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"queue {name!r} capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._full_time = IntervalTracker(f"{name}.full")
        self._busy_time = IntervalTracker(f"{name}.busy")
        #: Number of successful pushes over the run.
        self.pushes: int = 0
        #: Number of pops/removes over the run.
        self.pops: int = 0
        #: Number of refused pushes (producer saw the queue full).
        self.rejections: int = 0
        #: Sum over pushes of occupancy at push time (for mean occupancy).
        self._occupancy_sum: int = 0

    # ------------------------------------------------------------------
    # queue operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def can_push(self) -> bool:
        return len(self._items) < self.capacity

    def push(self, item: T, now: int) -> bool:
        """Append ``item``; returns False (and counts a rejection) if full."""
        if len(self._items) >= self.capacity:
            self.rejections += 1
            return False
        self._items.append(item)
        self.pushes += 1
        occupancy = len(self._items)
        self._occupancy_sum += occupancy
        # Edge-only tracker updates: redundant calls are no-ops inside the
        # tracker anyway, but the call itself is hot (every queue boundary
        # crossing in the machine lands here).
        if occupancy == 1:
            self._busy_time.update(now, True)
        if occupancy >= self.capacity:
            self._full_time.update(now, True)
        return True

    def peek(self) -> T:
        if not self._items:
            raise SimulationError(f"peek on empty queue {self.name!r}")
        return self._items[0]

    def pop(self, now: int) -> T:
        if not self._items:
            raise SimulationError(f"pop on empty queue {self.name!r}")
        item = self._items.popleft()
        self.pops += 1
        remaining = len(self._items)
        if remaining >= self.capacity - 1:
            self._full_time.update(now, False)  # falling edge (was full)
        if not remaining:
            self._busy_time.update(now, False)
        return item

    def remove(self, item: T, now: int) -> None:
        """Remove ``item`` from anywhere in the queue (identity match).

        Used by out-of-order consumers such as the FR-FCFS DRAM scheduler;
        maintains the same occupancy statistics as :meth:`pop`.
        """
        try:
            self._items.remove(item)
        except ValueError:
            raise SimulationError(
                f"remove of absent item from queue {self.name!r}"
            ) from None
        self.pops += 1
        remaining = len(self._items)
        if remaining >= self.capacity - 1:
            self._full_time.update(now, False)  # falling edge (was full)
        if not remaining:
            self._busy_time.update(now, False)

    def __iter__(self):
        return iter(self._items)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def finalize(self, now: int) -> None:
        """Close open measurement intervals at end of run."""
        self._full_time.finalize(now)
        self._busy_time.finalize(now)

    def full_cycles(self, now: int | None = None) -> int:
        """Cycles the queue spent completely full."""
        return self._full_time.total(now)

    def busy_cycles(self, now: int | None = None) -> int:
        """Usage lifetime: cycles the queue held at least one entry."""
        return self._busy_time.total(now)

    def full_fraction(self, now: int | None = None) -> float:
        """Fraction of the usage lifetime spent full (Section III metric)."""
        busy = self.busy_cycles(now)
        return self.full_cycles(now) / busy if busy else 0.0

    @property
    def mean_occupancy_at_push(self) -> float:
        """Average fill level observed by arriving entries."""
        return self._occupancy_sum / self.pushes if self.pushes else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StatQueue({self.name!r}, {len(self._items)}/{self.capacity})"
        )
