"""Fixed-latency delay pipes.

A :class:`DelayPipe` models a fully-pipelined fixed-latency structure with
unbounded width: items inserted at cycle ``t`` become ready at ``t + L``.
It is used for cache hit/fill latencies, the L2 bank pipelines, and the
Figure 1 magic-memory responder.  Because the heap is keyed by ready time,
idle pipes cost one comparison per cycle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


class DelayPipe(Generic[T]):
    """Unbounded fixed-latency pipeline."""

    def __init__(self, name: str, latency: int) -> None:
        if latency < 0:
            raise ConfigError(f"pipe {name!r} latency must be >= 0")
        self.name = name
        self.latency = latency
        self._heap: list[tuple[int, int, T]] = []
        self._tiebreak = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def __iter__(self):
        """Iterate over the in-flight items (arbitrary order)."""
        return (item for _, _, item in self._heap)

    def insert(self, item: T, now: int, extra_delay: int = 0) -> None:
        """Insert ``item``; it becomes ready at ``now + latency + extra``."""
        ready = now + self.latency + extra_delay
        heapq.heappush(self._heap, (ready, next(self._tiebreak), item))

    def insert_at(self, item: T, ready_cycle: int) -> None:
        """Insert ``item`` with an absolute ready time."""
        heapq.heappush(self._heap, (ready_cycle, next(self._tiebreak), item))

    def ready(self, now: int) -> bool:
        """Whether the head item is ready at cycle ``now``."""
        return bool(self._heap) and self._heap[0][0] <= now

    def next_ready_time(self) -> int | None:
        """Ready cycle of the head item, or None when the pipe is empty.

        The wake hint backing the engine's event-horizon fast-forward.
        """
        return self._heap[0][0] if self._heap else None

    def peek(self) -> T:
        """The head item (raises IndexError when empty)."""
        return self._heap[0][2]

    def pop(self) -> T:
        """Remove and return the head item (caller checked :meth:`ready`)."""
        return heapq.heappop(self._heap)[2]

    def drain_ready(self, now: int) -> list[T]:
        """Pop every item ready at ``now``, in insertion-ready order."""
        out: list[T] = []
        while self._heap and self._heap[0][0] <= now:
            out.append(heapq.heappop(self._heap)[2])
        return out
