"""Cycle-level simulation kernel: components, clocks, engine, configuration."""

from repro.sim.component import Component
from repro.sim.clock import ClockDomain
from repro.sim.engine import Simulator
from repro.sim.config import (
    CoreConfig,
    DRAMConfig,
    GPUConfig,
    ICNTConfig,
    L1Config,
    L2Config,
    fermi_gtx480,
    small_gpu,
)

__all__ = [
    "Component",
    "ClockDomain",
    "Simulator",
    "CoreConfig",
    "DRAMConfig",
    "GPUConfig",
    "ICNTConfig",
    "L1Config",
    "L2Config",
    "fermi_gtx480",
    "small_gpu",
]
