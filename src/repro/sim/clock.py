"""Clock domains.

GPGPU-Sim models four clock domains (core, interconnect, L2, DRAM).  This
reproduction runs everything on the core clock by default — the Table I
bandwidth parameters are expressed in per-core-cycle terms — but the
mechanism is kept so experiments can slow individual components down by an
integer divisor (e.g. a half-rate DRAM command clock).
"""

from __future__ import annotations

from repro.errors import ConfigError


class ClockDomain:
    """A clock derived from the core clock by an integer period.

    A component attached to a domain with ``period=n`` is stepped on core
    cycles where ``cycle % n == phase``.
    """

    def __init__(self, name: str, period: int = 1, phase: int = 0) -> None:
        if period < 1:
            raise ConfigError(f"clock period must be >= 1, got {period}")
        if not 0 <= phase < period:
            raise ConfigError(
                f"clock phase must be in [0, {period}), got {phase}"
            )
        self.name = name
        self.period = period
        self.phase = phase

    def ticks(self, now: int) -> bool:
        """Whether this domain has an edge on core cycle ``now``."""
        return now % self.period == self.phase

    def next_edge(self, cycle: int) -> int:
        """Smallest core cycle ``>= cycle`` with an edge on this domain.

        The event-calendar engine rounds wake hints up to this so a
        component is only ever dispatched on cycles where the ticked loop
        would also have stepped it.
        """
        period = self.period
        if period == 1:
            return cycle
        return cycle + (self.phase - cycle) % period

    def ticks_in(self, start: int, stop: int) -> int:
        """Number of edges in the half-open core-cycle range [start, stop).

        Used by the engine's fast-forward to tell a slow-clock component
        how many of its own cycles a skipped window covered.
        """
        if stop <= start:
            return 0
        period = self.period
        if period == 1:
            return stop - start
        # Edges are at phase, phase+period, ...; count those in range.
        first = start + (-(start - self.phase)) % period
        if first >= stop:
            return 0
        return (stop - 1 - first) // period + 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClockDomain({self.name!r}, period={self.period})"


#: The default full-rate clock shared by all components.
CORE_CLOCK = ClockDomain("core", period=1)
