"""Architectural configuration.

Every design parameter from Table I of the paper appears here under the same
name, grouped into the same three levels — (a) DRAM, (b) L2 cache, (c) L1
cache — plus the structural parameters (cache geometry, timing) that the
paper inherits from its GTX480 GPGPU-Sim baseline.

Baseline values match Table I exactly:

===============================  =========  ===========
parameter                        baseline   scaled ~4x
===============================  =========  ===========
DRAM scheduler queue             16         64
DRAM banks (per chip/channel)    16         64
DRAM bus width                   32 bit     64 bit
L2 miss queue                    8          32
L2 response queue                8          32
L2 MSHR                          32         128
L2 access queue                  8          32
L2 data port                     32 B       128 B
Flit size (crossbar)             4 B        16 B
L2 banks per partition           2          8
L1 miss queue                    8          32
L1 MSHR                          32         128
Memory pipeline width            10         40
===============================  =========  ===========

Timing parameters are chosen so the *unloaded* round-trip latencies match
the paper's stated ideal access latencies: ~120 core cycles to L2 and ~100
additional cycles to DRAM (Section II).

All config dataclasses are frozen; derive variants with
:func:`dataclasses.replace` or the helpers in
:mod:`repro.core.design_space`.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


#: Engine execution modes (see :mod:`repro.sim.engine`): ``"ticked"`` steps
#: every component on every clock edge; ``"event"`` runs the event-calendar
#: scheduler driven by ``next_wake`` hints.
ENGINE_MODES = ("ticked", "event")


@dataclass(frozen=True)
class SimConfig:
    """Engine-level execution settings — nothing architectural.

    Deliberately separate from :class:`GPUConfig`: the engine mode never
    changes simulation results (byte-identical ``RunMetrics`` is enforced
    by tests), so it is not part of any experiment identity or cache key.
    """

    engine_mode: str = "ticked"

    def __post_init__(self) -> None:
        _require(
            self.engine_mode in ENGINE_MODES,
            f"unknown engine mode {self.engine_mode!r}; "
            f"expected one of {ENGINE_MODES}",
        )


def default_sim_config() -> SimConfig:
    """Build a :class:`SimConfig` from the environment.

    ``REPRO_ENGINE_MODE`` selects the engine mode (the CLI's
    ``--engine-mode`` flag sets it so forked pool workers inherit the
    choice); unset or empty means the ticked default.
    """
    mode = os.environ.get("REPRO_ENGINE_MODE", "").strip().lower()
    if not mode:
        return SimConfig()
    return SimConfig(engine_mode=mode)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CoreConfig:
    """Streaming-multiprocessor (SM) front-end parameters."""

    n_sms: int = 8
    #: Maximum resident warps per SM (GTX480: 48).
    warps_per_sm: int = 16
    #: Instructions issued per SM per cycle across ready warps.
    issue_width: int = 2
    #: Table I "Memory pipeline width": memory transactions the LD/ST unit
    #: can present to the L1 per core cycle.
    mem_pipeline_width: int = 10
    #: Capacity of the LD/ST unit's pending-transaction queue.
    ldst_queue_depth: int = 64
    #: Default per-warp limit on outstanding load instructions before the
    #: warp blocks (workloads may override per kernel).
    default_mlp_limit: int = 4
    #: Warp scheduler policy: "lrr" (loose round robin) or "gto"
    #: (greedy-then-oldest).
    scheduler: str = "lrr"
    #: TLP throttle: at most this many warps concurrently active per SM
    #: (None = all resident warps).  Retiring warps activate waiting ones.
    #: Models concurrency-throttling congestion mitigations (cf. the
    #: paper's reference to MASCAR-style schemes).
    active_warp_limit: int | None = None

    def __post_init__(self) -> None:
        _require(self.n_sms >= 1, "n_sms must be >= 1")
        _require(
            self.active_warp_limit is None or self.active_warp_limit >= 1,
            "active_warp_limit must be >= 1 or None")
        _require(self.warps_per_sm >= 1, "warps_per_sm must be >= 1")
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.mem_pipeline_width >= 1, "mem_pipeline_width must be >= 1")
        _require(self.ldst_queue_depth >= 1, "ldst_queue_depth must be >= 1")
        _require(self.default_mlp_limit >= 1, "default_mlp_limit must be >= 1")
        _require(self.scheduler in ("lrr", "gto"),
                 f"unknown scheduler {self.scheduler!r}")


@dataclass(frozen=True)
class L1Config:
    """Per-SM L1 data cache (write-through, no write-allocate)."""

    size_bytes: int = 16 * 1024
    assoc: int = 4
    #: Table I "MSHR (L1D)".
    mshr_entries: int = 32
    #: Maximum requests merged into one outstanding MSHR entry.
    mshr_max_merge: int = 8
    #: Table I "L1 miss queue".
    miss_queue_depth: int = 8
    #: Cycles from tag hit to data return.
    hit_latency: int = 4
    #: Cycles from fill arrival to line readable / dependents woken.
    fill_latency: int = 1
    #: Store handling: "write_through" (Fermi-style write-through with
    #: write-evict, the paper's baseline) or "write_back" (write-allocate
    #: with dirty eviction writebacks to L2).
    write_policy: str = "write_through"

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "L1 size must be positive")
        _require(self.write_policy in ("write_through", "write_back"),
                 f"unknown L1 write policy {self.write_policy!r}")
        _require(self.assoc >= 1, "L1 assoc must be >= 1")
        _require(self.mshr_entries >= 1, "L1 MSHR entries must be >= 1")
        _require(self.mshr_max_merge >= 1, "L1 MSHR merge depth must be >= 1")
        _require(self.miss_queue_depth >= 1, "L1 miss queue must be >= 1")
        _require(self.hit_latency >= 1, "L1 hit latency must be >= 1")
        _require(self.fill_latency >= 1, "L1 fill latency must be >= 1")


@dataclass(frozen=True)
class ICNTConfig:
    """Crossbar interconnect between SMs and memory partitions."""

    #: Table I "Flit size (crossbar)" in bytes.
    flit_bytes: int = 4
    #: Parallel links per port; each moves one flit per cycle, so port
    #: bandwidth is ``flit_bytes * channel_lanes`` bytes/cycle.  Fixed at 8
    #: (matching GPGPU-Sim's GTX480 32-byte channel with the paper's 4-byte
    #: flit); the Table I knob is the flit size.
    channel_lanes: int = 8
    #: Control-header bytes carried by every packet.
    header_bytes: int = 8
    #: Packets buffered at each input port awaiting arbitration.
    input_queue_pkts: int = 4
    #: Fixed network traversal latency (cycles) added to each response
    #: delivery, modelling router/channel pipeline depth; together with the
    #: L2 bank latency it sets the unloaded ~120-cycle L2 round trip.
    network_latency: int = 100
    #: Topology: "crossbar" (baseline, as GPGPU-Sim's GTX480) or "ring"
    #: (ablation alternative with shared-link bandwidth).
    topology: str = "crossbar"
    #: Per-hop pipeline latency of the ring topology.
    ring_hop_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.flit_bytes >= 1, "flit size must be >= 1 byte")
        _require(self.network_latency >= 0, "network latency must be >= 0")
        _require(self.topology in ("crossbar", "ring"),
                 f"unknown interconnect topology {self.topology!r}")
        _require(self.ring_hop_latency >= 0, "ring hop latency must be >= 0")
        _require(self.channel_lanes >= 1, "channel lanes must be >= 1")
        _require(self.header_bytes >= 1, "header size must be >= 1 byte")
        _require(self.input_queue_pkts >= 1, "input queue must be >= 1 packet")


@dataclass(frozen=True)
class L2Config:
    """Per-partition slice of the shared L2 (write-back, write-allocate)."""

    #: Capacity per partition (GTX480: 768 KiB over 6 partitions).
    size_bytes: int = 128 * 1024
    assoc: int = 8
    #: Table I "L2 banks" per partition.
    banks: int = 2
    #: Pipelined bank access latency in core cycles; with the network
    #: latency this sets the unloaded L1-miss-to-L2-hit round trip at ~120
    #: cycles (Section II).  The pipeline depth also bounds per-bank
    #: buffering, so most of the round trip is carried by the (bufferless)
    #: response network instead — back-pressure then reaches the Table I
    #: access queue instead of pooling invisibly in deep bank pipes.
    bank_latency: int = 15
    #: Table I "L2 access queue".
    access_queue_depth: int = 8
    #: Table I "L2 miss queue".
    miss_queue_depth: int = 8
    #: Table I "L2 response queue".
    response_queue_depth: int = 8
    #: Table I "MSHR" (L2).
    mshr_entries: int = 32
    mshr_max_merge: int = 8
    #: Table I "L2 data port" in bytes per cycle: a response of one cache
    #: line occupies the partition's return port for
    #: ``ceil(line_size / data_port_bytes)`` cycles.
    data_port_bytes: int = 32

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "L2 size must be positive")
        _require(self.assoc >= 1, "L2 assoc must be >= 1")
        _require(_is_pow2(self.banks), "L2 banks must be a power of two")
        _require(self.bank_latency >= 1, "L2 bank latency must be >= 1")
        _require(self.access_queue_depth >= 1, "L2 access queue must be >= 1")
        _require(self.miss_queue_depth >= 1, "L2 miss queue must be >= 1")
        _require(self.response_queue_depth >= 1,
                 "L2 response queue must be >= 1")
        _require(self.mshr_entries >= 1, "L2 MSHR entries must be >= 1")
        _require(self.mshr_max_merge >= 1, "L2 MSHR merge depth must be >= 1")
        _require(self.data_port_bytes >= 1, "L2 data port must be >= 1 byte")


@dataclass(frozen=True)
class DRAMConfig:
    """Per-partition GDDR channel and controller."""

    #: Table I "Scheduler queue".
    sched_queue_depth: int = 16
    #: Table I "DRAM Banks" (per chip; one chip per channel modelled).
    banks: int = 16
    #: Table I "Bus width" in bytes per channel (32 bit = 4 B).
    bus_bytes: int = 4
    #: Transfers per core cycle on the data bus (DDR signalling relative to
    #: the core clock); one line occupies the bus for
    #: ``line_size / (bus_bytes * data_rate)`` cycles.
    data_rate: int = 4
    #: Row-buffer size per bank.
    row_bytes: int = 2048
    #: Activate-to-column (RAS-to-CAS) delay, core cycles.
    t_rcd: int = 40
    #: Precharge latency, core cycles.
    t_rp: int = 40
    #: Column access (CAS) latency, core cycles.
    t_cas: int = 40
    #: Scheduling policy: "frfcfs" (first-ready FCFS) or "fcfs".
    scheduler: str = "frfcfs"
    #: Data-bus booking window, in transfers: the controller stops issuing
    #: once the bus is reserved more than this many line transfers into the
    #: future.  Deep enough to keep the bus saturated and banks parallel,
    #: shallow enough that sustained overload backs up into the scheduler
    #: queue (where Section III measures it) instead of an invisible bus
    #: backlog.
    bus_window_transfers: int = 8
    #: Depth of the DRAM->L2 return queue (not a Table I knob; sized to stay
    #: out of the way so back-pressure localizes in the Table I queues).
    return_queue_depth: int = 32
    #: Refresh interval in core cycles (0 = refresh not modelled, the
    #: baseline).  Every interval all banks are locked out for
    #: ``refresh_cycles`` and their rows close.
    refresh_interval: int = 0
    refresh_cycles: int = 0

    def __post_init__(self) -> None:
        _require(self.sched_queue_depth >= 1, "DRAM scheduler queue must be >= 1")
        _require(_is_pow2(self.banks), "DRAM banks must be a power of two")
        _require(self.bus_bytes >= 1, "DRAM bus width must be >= 1 byte")
        _require(self.data_rate >= 1, "DRAM data rate must be >= 1")
        _require(_is_pow2(self.row_bytes), "DRAM row size must be a power of two")
        _require(self.t_rcd >= 1 and self.t_rp >= 1 and self.t_cas >= 1,
                 "DRAM timing parameters must be >= 1")
        _require(self.scheduler in ("frfcfs", "fcfs"),
                 f"unknown DRAM scheduler {self.scheduler!r}")
        _require(self.bus_window_transfers >= 1,
                 "DRAM bus window must be >= 1 transfer")
        _require(self.return_queue_depth >= 1, "DRAM return queue must be >= 1")
        _require(self.refresh_interval >= 0, "refresh interval must be >= 0")
        _require(self.refresh_cycles >= 0, "refresh cycles must be >= 0")
        if self.refresh_interval:
            _require(self.refresh_cycles < self.refresh_interval,
                     "refresh must be shorter than its interval")


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration aggregating all subsystems."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    icnt: ICNTConfig = field(default_factory=ICNTConfig)
    l2: L2Config = field(default_factory=L2Config)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Number of memory partitions; each pairs one L2 slice with one DRAM
    #: channel (GTX480: 6).
    n_partitions: int = 4
    #: Cache-line / memory-transaction size in bytes.
    line_bytes: int = 128
    #: Figure 1 mode: when true, every L1 miss is serviced by a perfect
    #: responder after exactly ``magic_latency`` cycles; the interconnect,
    #: L2 and DRAM are not simulated.
    magic_memory: bool = False
    magic_latency: int = 0

    def __post_init__(self) -> None:
        _require(_is_pow2(self.n_partitions), "n_partitions must be a power of two")
        _require(_is_pow2(self.line_bytes), "line size must be a power of two")
        _require(self.magic_latency >= 0, "magic latency must be >= 0")
        _require(self.l1.size_bytes % (self.line_bytes * self.l1.assoc) == 0,
                 "L1 size must be divisible by line_bytes * assoc")
        _require(self.l2.size_bytes % (self.line_bytes * self.l2.assoc) == 0,
                 "L2 size must be divisible by line_bytes * assoc")
        _require(self.dram.row_bytes % self.line_bytes == 0,
                 "DRAM row must hold a whole number of lines")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dram_transfer_cycles(self) -> int:
        """Core cycles one line occupies a DRAM channel's data bus."""
        per_cycle = self.dram.bus_bytes * self.dram.data_rate
        return max(1, -(-self.line_bytes // per_cycle))

    @property
    def l2_port_cycles(self) -> int:
        """Core cycles one line-sized response occupies the L2 data port."""
        return max(1, -(-self.line_bytes // self.l2.data_port_bytes))

    def request_flits(self, is_write: bool) -> int:
        """Crossbar flits for a request packet (writes carry line data)."""
        payload = self.line_bytes if is_write else 0
        return max(1, -(-(self.icnt.header_bytes + payload) // self.icnt.flit_bytes))

    def response_flits(self, carries_data: bool = True) -> int:
        """Crossbar flits for a response packet."""
        payload = self.line_bytes if carries_data else 0
        return max(1, -(-(self.icnt.header_bytes + payload) // self.icnt.flit_bytes))

    def request_transfer_cycles(self, is_write: bool) -> int:
        """Port cycles a request packet occupies a crossbar port."""
        lanes = self.icnt.channel_lanes
        return max(1, -(-self.request_flits(is_write) // lanes))

    def response_transfer_cycles(self, carries_data: bool = True) -> int:
        """Port cycles a response packet occupies a crossbar port."""
        lanes = self.icnt.channel_lanes
        return max(1, -(-self.response_flits(carries_data) // lanes))

    def with_magic_memory(self, latency: int) -> "GPUConfig":
        """Return a copy configured for Figure 1's fixed-latency mode."""
        return replace(self, magic_memory=True, magic_latency=latency)


#: Sub-config class per nested GPUConfig field (for deserialization).
_SUBCONFIG_TYPES: dict[str, type] = {
    "core": CoreConfig,
    "l1": L1Config,
    "icnt": ICNTConfig,
    "l2": L2Config,
    "dram": DRAMConfig,
}


def config_from_dict(payload: Mapping[str, Any]) -> GPUConfig:
    """Rebuild a :class:`GPUConfig` from ``dataclasses.asdict`` output.

    The inverse of ``dataclasses.asdict(config)`` — campaign manifests
    persist configs as plain JSON and rebuild them here.  Unknown or
    missing fields raise :class:`~repro.errors.ConfigError` (a manifest
    written by different code must fail loudly, not half-apply);
    ``__post_init__`` validation then runs as usual.
    """
    if not isinstance(payload, Mapping):
        raise ConfigError(
            f"config payload must be a mapping, got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(GPUConfig)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(f"unknown GPUConfig field(s): {', '.join(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in payload.items():
        sub_type = _SUBCONFIG_TYPES.get(name)
        if sub_type is None:
            kwargs[name] = value
            continue
        if not isinstance(value, Mapping):
            raise ConfigError(
                f"GPUConfig.{name} must be a mapping, "
                f"got {type(value).__name__}"
            )
        sub_known = {f.name for f in dataclasses.fields(sub_type)}
        sub_unknown = sorted(set(value) - sub_known)
        if sub_unknown:
            raise ConfigError(
                f"unknown {sub_type.__name__} field(s): "
                + ", ".join(sub_unknown)
            )
        kwargs[name] = sub_type(**value)
    return GPUConfig(**kwargs)


def fermi_gtx480() -> GPUConfig:
    """Full-scale GTX480 (Fermi) topology: 15 SMs, 6 partitions... scaled
    queue parameters per Table I.

    Note: GTX480 has 6 partitions (not a power of two); we use 8 partitions
    with proportionally adjusted L2 slice size to preserve total L2 capacity
    and bandwidth ratios while keeping power-of-two address interleaving.
    """
    return GPUConfig(
        core=CoreConfig(n_sms=16, warps_per_sm=48),
        # 96 KiB x 8 partitions = the GTX480's 768 KiB total; 6-way keeps
        # the set count a power of two at that capacity.
        l2=L2Config(size_bytes=96 * 1024, assoc=6),
        n_partitions=8,
    )


def small_gpu() -> GPUConfig:
    """Reduced-scale experiment baseline (8 SMs, 4 partitions).

    Keeps the GTX480 SM:partition ratio (15:6 ~ 8:4 = 2:1) and every Table I
    queue/MSHR/bank parameter at its paper value, so congestion forms at the
    same structures; used as the default for all experiments because pure
    Python cannot simulate the full chip in reasonable time.
    """
    return GPUConfig()


def tiny_gpu() -> GPUConfig:
    """Minimal configuration for unit tests (2 SMs, 2 partitions)."""
    return GPUConfig(
        core=CoreConfig(n_sms=2, warps_per_sm=4, mem_pipeline_width=4),
        l1=L1Config(size_bytes=4 * 1024, mshr_entries=8, miss_queue_depth=4),
        l2=L2Config(size_bytes=16 * 1024, banks=2, access_queue_depth=4,
                    miss_queue_depth=4, response_queue_depth=4,
                    mshr_entries=8, bank_latency=8),
        icnt=ICNTConfig(network_latency=10),
        dram=DRAMConfig(sched_queue_depth=8, banks=4, t_rcd=4, t_rp=4, t_cas=4),
        n_partitions=2,
    )
