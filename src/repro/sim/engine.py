"""The cycle-driven simulation engine.

The engine owns an ordered list of components and advances them one cycle at
a time.  Component order within a cycle is fixed at registration time; the
GPU model registers components front-to-back (cores, interconnect, memory
partitions) so requests can traverse at most one hop per cycle in the
forward direction while responses ride the same discipline backwards — the
same one-hop-per-cycle contract GPGPU-Sim's queue-based model provides.

Termination is delegated to a ``done`` predicate (usually "all warps
retired") guarded by ``max_cycles``; exceeding the guard raises
:class:`~repro.errors.CycleLimitExceeded` so mis-calibrated experiments fail
loudly instead of spinning.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import CycleLimitExceeded, SimulationError
from repro.sim.clock import CORE_CLOCK, ClockDomain
from repro.sim.component import Component

#: Default cycle budget for a simulation run.  Shared by
#: :meth:`Simulator.run`, :meth:`repro.gpu.GPU.run` and
#: :func:`repro.core.metrics.run_kernel` so every entry point fails at the
#: same, single place when an experiment is mis-calibrated.
DEFAULT_MAX_CYCLES = 5_000_000


class Simulator:
    """Owns the clock and the ordered component list."""

    def __init__(self) -> None:
        self.cycle: int = 0
        self._entries: list[tuple[Component, ClockDomain]] = []
        self._finalized = False
        self._fast_steps: list | None = None
        self._slow_entries: list[tuple[Component, ClockDomain]] | None = None
        #: Opt-in observers (e.g. the repro.analysis sanitizer); empty in
        #: normal runs so the per-cycle cost is one truthiness test.
        self._observers: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self, component: Component, clock: ClockDomain = CORE_CLOCK
    ) -> Component:
        """Register ``component`` on ``clock``; returns the component."""
        self._entries.append((component, clock))
        self._fast_steps = None
        self._slow_entries = None
        return component

    @property
    def components(self) -> list[Component]:
        """Registered components in step order."""
        return [c for c, _ in self._entries]

    def attach_observer(self, observer) -> None:
        """Register an observer called at cycle and finalize boundaries.

        An observer provides ``on_cycle(cycle)`` — invoked after every
        component has stepped, at the quiescent point between cycles — and
        ``on_finalize(cycle)`` — invoked once when the simulation
        finalizes.  Observers may raise (the sanitizer raises
        :class:`~repro.errors.SanitizerError` on an invariant violation);
        the exception propagates out of :meth:`step` / :meth:`run`.
        """
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one core cycle."""
        now = self.cycle
        if self._slow_entries is None:
            self._fast_steps = [
                c.step for c, clk in self._entries if clk.period == 1
            ]
            self._slow_entries = [
                (c, clk) for c, clk in self._entries if clk.period != 1
            ]
        if self._slow_entries:
            for component, clock in self._entries:
                if clock.period == 1 or clock.ticks(now):
                    component.step(now)
        else:
            for step in self._fast_steps:
                step(now)
        self.cycle = now + 1
        if self._observers:
            for observer in self._observers:
                observer.on_cycle(now)

    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = DEFAULT_MAX_CYCLES,
        drain: bool = True,
    ) -> int:
        """Run until ``done()`` is true; returns the final cycle count.

        With ``drain`` (the default) the run continues past ``done()`` until
        every component reports idle, so in-flight requests (e.g. stores
        still percolating to DRAM) finish and statistics intervals close at
        their true ends.  Raises :class:`CycleLimitExceeded` if the budget
        runs out first.
        """
        if self._finalized:
            raise SimulationError("simulator already finalized; build a new one")
        while not done():
            if self.cycle >= max_cycles:
                raise CycleLimitExceeded(max_cycles, "done() never satisfied")
            self.step()
        finished_at = self.cycle
        if drain:
            while not all(c.is_idle() for c, _ in self._entries):
                if self.cycle >= max_cycles:
                    raise CycleLimitExceeded(max_cycles, "drain never completed")
                self.step()
        self.finalize()
        return finished_at

    def finalize(self) -> None:
        """Close statistics intervals on every component (idempotent)."""
        if self._finalized:
            return
        for component, _ in self._entries:
            component.finalize(self.cycle)
        for observer in self._observers:
            observer.on_finalize(self.cycle)
        self._finalized = True
