"""The cycle-driven simulation engine.

The engine owns an ordered list of components and advances them one cycle at
a time.  Component order within a cycle is fixed at registration time; the
GPU model registers components front-to-back (cores, interconnect, memory
partitions) so requests can traverse at most one hop per cycle in the
forward direction while responses ride the same discipline backwards — the
same one-hop-per-cycle contract GPGPU-Sim's queue-based model provides.

Termination is delegated to a ``done`` predicate (usually "all warps
retired") guarded by ``max_cycles``; exceeding the guard raises
:class:`~repro.errors.CycleLimitExceeded` so mis-calibrated experiments fail
loudly instead of spinning.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import Protocol

from repro.errors import CycleLimitExceeded, SimulationError
from repro.sim.clock import CORE_CLOCK, ClockDomain
from repro.sim.component import WAKE_NEVER, Component


class SimObserver(Protocol):
    """Structural type for :meth:`Simulator.attach_observer` targets."""

    def on_cycle(self, cycle: int) -> None: ...

    def on_finalize(self, cycle: int) -> None: ...

#: Largest clock-period hyperperiod for which per-residue dispatch lists
#: are precomputed; beyond this the engine falls back to per-entry scans.
_MAX_DISPATCH_RESIDUES = 4096

#: Default cycle budget for a simulation run.  Shared by
#: :meth:`Simulator.run`, :meth:`repro.gpu.GPU.run` and
#: :func:`repro.core.metrics.run_kernel` so every entry point fails at the
#: same, single place when an experiment is mis-calibrated.
DEFAULT_MAX_CYCLES = 5_000_000


class Simulator:
    """Owns the clock and the ordered component list."""

    def __init__(self) -> None:
        self.cycle: int = 0
        self._entries: list[tuple[Component, ClockDomain]] = []
        self._finalized = False
        #: residue -> bound step methods ticking on that residue of the
        #: clock hyperperiod (preserving registration order); None until
        #: built, or permanently None when the hyperperiod is impractical.
        self._dispatch: list[list[Callable[[int], None]]] | None = None
        self._dispatch_mod: int = 0
        #: With every component on the core clock (hyperperiod 1) this is
        #: the single residue list, saving the modulo+index per cycle.
        self._dispatch_flat: list[Callable[[int], None]] | None = None
        self._wake_fns: list[Callable[[int], int | None]] | None = None
        #: Index of the component that vetoed the last fast-forward
        #: attempt; probed first, since a busy component usually stays
        #: busy, making the common no-jump case a single wake call.
        self._last_blocker: int = 0
        #: Do not re-attempt a fast-forward before this cycle.  Set after
        #: a failed attempt so sustained-activity stretches don't pay the
        #: wake-scan every cycle; skipping an attempt only delays a jump
        #: by a few naively-stepped cycles, which is result-neutral.
        self._ff_cooldown: int = 0
        #: Event-horizon fast-forward switch (see :meth:`run`).  On by
        #: default; auto-suspended while observers are attached because
        #: their ``on_cycle`` contract assumes every cycle fires.
        self.fast_forward_enabled: bool = True
        #: Cycles skipped by fast-forward jumps (diagnostic).
        self.cycles_fast_forwarded: int = 0
        #: Opt-in observers (e.g. the repro.analysis sanitizer); empty in
        #: normal runs so the per-cycle cost is one truthiness test.
        self._observers: list[SimObserver] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self, component: Component, clock: ClockDomain = CORE_CLOCK
    ) -> Component:
        """Register ``component`` on ``clock``; returns the component."""
        self._entries.append((component, clock))
        self._dispatch = None
        self._dispatch_mod = 0
        self._dispatch_flat = None
        self._wake_fns = None
        return component

    @property
    def components(self) -> list[Component]:
        """Registered components in step order."""
        return [c for c, _ in self._entries]

    def attach_observer(self, observer: SimObserver) -> None:
        """Register an observer called at cycle and finalize boundaries.

        An observer provides ``on_cycle(cycle)`` — invoked after every
        component has stepped, at the quiescent point between cycles — and
        ``on_finalize(cycle)`` — invoked once when the simulation
        finalizes.  Observers may raise (the sanitizer raises
        :class:`~repro.errors.SanitizerError` on an invariant violation);
        the exception propagates out of :meth:`step` / :meth:`run`.
        """
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _build_dispatch(self) -> None:
        """Precompute per-residue step lists over the clock hyperperiod.

        Mixed clock domains must keep both the fast path *and* the
        registration order (the one-hop-per-cycle contract fixes which
        component acts first within a cycle), so the dispatch table holds
        one ordered list of bound ``step`` methods per residue of
        ``lcm(periods)``.  With every component on the core clock this
        collapses to a single list; a pathological hyperperiod falls back
        to the per-entry scan.
        """
        self._wake_fns = [c.next_wake for c, _ in self._entries]
        self._last_blocker = 0
        hyper = math.lcm(*(clk.period for _, clk in self._entries)) \
            if self._entries else 1
        if hyper > _MAX_DISPATCH_RESIDUES:
            self._dispatch = None
            self._dispatch_flat = None
            self._dispatch_mod = -1  # built; use the per-entry scan
            return
        self._dispatch = [
            [c.step for c, clk in self._entries if clk.ticks(residue)]
            for residue in range(hyper)
        ]
        self._dispatch_flat = self._dispatch[0] if hyper == 1 else None
        self._dispatch_mod = hyper

    def step(self) -> None:
        """Advance the simulation by one core cycle."""
        now = self.cycle
        if self._dispatch_mod == 0:
            self._build_dispatch()
        flat = self._dispatch_flat
        if flat is not None:
            for step in flat:
                step(now)
        elif (dispatch := self._dispatch) is not None:
            for step in dispatch[now % self._dispatch_mod]:
                step(now)
        else:
            for component, clock in self._entries:
                if clock.ticks(now):
                    component.step(now)
        self.cycle = now + 1
        if self._observers:
            for observer in self._observers:
                observer.on_cycle(now)

    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = DEFAULT_MAX_CYCLES,
        drain: bool = True,
    ) -> int:
        """Run until ``done()`` is true; returns the final cycle count.

        With ``drain`` (the default) the run continues past ``done()`` until
        every component reports idle, so in-flight requests (e.g. stores
        still percolating to DRAM) finish and statistics intervals close at
        their true ends.  Raises :class:`CycleLimitExceeded` if the budget
        runs out first.
        """
        if self._finalized:
            raise SimulationError("simulator already finalized; build a new one")
        fast = self.fast_forward_enabled and not self._observers
        for component, _ in self._entries:
            component.set_fast_mode(fast)
        while not done():
            if self.cycle >= max_cycles:
                raise CycleLimitExceeded(max_cycles, "done() never satisfied")
            if fast and self._try_fast_forward(max_cycles):
                continue  # re-check the cycle budget at the new time
            self.step()
        finished_at = self.cycle
        if drain:
            while not all(c.is_idle() for c, _ in self._entries):
                if self.cycle >= max_cycles:
                    raise CycleLimitExceeded(max_cycles, "drain never completed")
                if fast and self._try_fast_forward(max_cycles):
                    continue
                self.step()
        self.finalize()
        return finished_at

    def _try_fast_forward(self, limit: int) -> bool:
        """Jump ``self.cycle`` to the components' joint event horizon.

        Returns True when time advanced.  The jump happens only when every
        component publishes a wake cycle strictly beyond ``self.cycle`` —
        then no component would change any state in the skipped window, so
        only the per-cycle counters need replaying (via
        :meth:`Component.fast_forward`, with per-clock-domain tick counts).
        Any ``None`` hint vetoes fast-forward for good.  The horizon is
        clamped to ``limit`` so a cycle-budget overrun fires at the same
        cycle as the naive loop.
        """
        now = self.cycle
        if now < self._ff_cooldown:
            return False
        if self._dispatch_mod == 0:
            self._build_dispatch()
        fns = self._wake_fns
        horizon = WAKE_NEVER
        if fns:
            # Probe the last veto first: a component busy this cycle is
            # almost always busy the next, so the common no-jump case
            # costs one wake call instead of a full scan.
            blocker = self._last_blocker
            w = fns[blocker](now)
            if w is None:
                self.fast_forward_enabled = False
                return False
            if w <= now:
                self._ff_cooldown = now + 3
                return False
            horizon = w
            for i, wake in enumerate(fns):
                if i == blocker:
                    continue
                w = wake(now)
                if w is None:
                    self.fast_forward_enabled = False
                    return False
                if w <= now:
                    self._last_blocker = i
                    self._ff_cooldown = now + 3
                    return False
                if w < horizon:
                    horizon = w
        if horizon > limit:
            horizon = limit
        if horizon <= now:
            return False
        window = horizon - now
        for component, clock in self._entries:
            ticks = window if clock.period == 1 \
                else clock.ticks_in(now, horizon)
            if ticks:
                component.fast_forward(ticks)
        self.cycles_fast_forwarded += window
        self.cycle = horizon
        return True

    def finalize(self) -> None:
        """Close statistics intervals on every component (idempotent)."""
        if self._finalized:
            return
        for component, _ in self._entries:
            component.finalize(self.cycle)
        for observer in self._observers:
            observer.on_finalize(self.cycle)
        self._finalized = True
