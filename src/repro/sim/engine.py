"""The cycle-driven simulation engine.

The engine owns an ordered list of components and advances them one cycle at
a time.  Component order within a cycle is fixed at registration time; the
GPU model registers components front-to-back (cores, interconnect, memory
partitions) so requests can traverse at most one hop per cycle in the
forward direction while responses ride the same discipline backwards — the
same one-hop-per-cycle contract GPGPU-Sim's queue-based model provides.

Termination is delegated to a ``done`` predicate (usually "all warps
retired") guarded by ``max_cycles``; exceeding the guard raises
:class:`~repro.errors.CycleLimitExceeded` so mis-calibrated experiments fail
loudly instead of spinning.

Two execution modes share those semantics (``SimConfig.engine_mode``):

``ticked``
    The historical loop: every component is stepped on every edge of its
    clock, with the event-horizon fast-forward of PR 4 jumping windows
    where *all* components sleep.

``event``
    An event-calendar scheduler.  Each component carries a scheduled wake
    cycle in an indexed min-calendar (a lazy binary heap keyed on absolute
    core cycle); within a cycle, due components are serviced in
    registration order, so the one-hop-per-cycle contract and mixed
    clock-domain dispatch order are preserved exactly.  Sleeping
    components have their skipped clock edges replayed through
    :meth:`Component.fast_forward` before they next act, and wake edges
    declared by the model (:meth:`Simulator.connect`) re-arm consumers
    when a producer hands them work, so results are byte-identical to the
    ticked loop.  Observers or a ``None`` wake hint degrade back to
    per-cycle stepping, exactly as fast-forward already does.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from heapq import heapify, heappop, heappush
from typing import Protocol

from repro.errors import CycleLimitExceeded, SimulationError
from repro.sim.clock import CORE_CLOCK, ClockDomain
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import SimConfig, default_sim_config


class SimObserver(Protocol):
    """Structural type for :meth:`Simulator.attach_observer` targets."""

    def on_cycle(self, cycle: int) -> None: ...

    def on_finalize(self, cycle: int) -> None: ...

#: Largest clock-period hyperperiod for which per-residue dispatch lists
#: are precomputed; beyond this the engine falls back to per-entry scans.
_MAX_DISPATCH_RESIDUES = 4096

#: Default cycle budget for a simulation run.  Shared by
#: :meth:`Simulator.run`, :meth:`repro.gpu.GPU.run` and
#: :func:`repro.core.metrics.run_kernel` so every entry point fails at the
#: same, single place when an experiment is mis-calibrated.
DEFAULT_MAX_CYCLES = 5_000_000


class Simulator:
    """Owns the clock and the ordered component list."""

    def __init__(self, sim_config: SimConfig | None = None) -> None:
        self.sim_config = (
            sim_config if sim_config is not None else default_sim_config()
        )
        #: Execution mode (``"ticked"`` or ``"event"``); see module docs.
        self.engine_mode: str = self.sim_config.engine_mode
        self.cycle: int = 0
        self._entries: list[tuple[Component, ClockDomain]] = []
        self._finalized = False
        #: Wake edges declared via :meth:`connect` /
        #: :meth:`connect_fanout`; compiled lazily by the event engine.
        self._edges: list[
            tuple[Component, Component, Callable[[], object] | None]
        ] = []
        self._fanouts: list[
            tuple[Component, tuple[Component, ...], Callable[[], Iterable[int]]]
        ] = []
        #: The fast flag of the active :meth:`run`, so components
        #: registered mid-run still receive :meth:`set_fast_mode`.
        self._run_fast: bool | None = None
        #: Set by :meth:`add`; tells a live event calendar its compiled
        #: tables no longer cover every component.
        self._entries_dirty = False
        #: residue -> bound step methods ticking on that residue of the
        #: clock hyperperiod (preserving registration order); None until
        #: built, or permanently None when the hyperperiod is impractical.
        self._dispatch: list[list[Callable[[int], None]]] | None = None
        self._dispatch_mod: int = 0
        #: With every component on the core clock (hyperperiod 1) this is
        #: the single residue list, saving the modulo+index per cycle.
        self._dispatch_flat: list[Callable[[int], None]] | None = None
        self._wake_fns: list[Callable[[int], int | None]] | None = None
        #: Index of the component that vetoed the last fast-forward
        #: attempt; probed first, since a busy component usually stays
        #: busy, making the common no-jump case a single wake call.
        self._last_blocker: int = 0
        #: Do not re-attempt a fast-forward before this cycle.  Set after
        #: a failed attempt so sustained-activity stretches don't pay the
        #: wake-scan every cycle; skipping an attempt only delays a jump
        #: by a few naively-stepped cycles, which is result-neutral.
        self._ff_cooldown: int = 0
        #: Event-horizon fast-forward switch (see :meth:`run`).  On by
        #: default; auto-suspended while observers are attached because
        #: their ``on_cycle`` contract assumes every cycle fires.
        self.fast_forward_enabled: bool = True
        #: Cycles skipped by fast-forward jumps (diagnostic).
        self.cycles_fast_forwarded: int = 0
        #: Opt-in observers (e.g. the repro.analysis sanitizer); empty in
        #: normal runs so the per-cycle cost is one truthiness test.
        self._observers: list[SimObserver] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self, component: Component, clock: ClockDomain = CORE_CLOCK
    ) -> Component:
        """Register ``component`` on ``clock``; returns the component."""
        self._entries.append((component, clock))
        self._dispatch = None
        self._dispatch_mod = 0
        self._dispatch_flat = None
        self._wake_fns = None
        #: A registration while the event calendar is live invalidates its
        #: compiled tables; the event loop degrades to the ticked loop.
        self._entries_dirty = True
        if self._run_fast is not None:
            component.set_fast_mode(self._run_fast)
        return component

    def connect(
        self,
        producer: Component,
        consumer: Component,
        signal: Callable[[], object] | None = None,
    ) -> None:
        """Declare that ``producer`` stepping may hand work to ``consumer``.

        Used only by the event engine: after ``producer`` steps, ``signal``
        (a cheap zero-arg callable, e.g. a queue's bound ``__len__``) is
        evaluated, and if truthy — or if ``signal`` is None — ``consumer``
        is re-armed.  A consumer registered *after* the producer is
        serviced later in the same cycle (same-cycle visibility, matching
        ticked registration order); one registered before is re-polled on
        the next cycle (next-cycle visibility).  Edges are advisory for
        scheduling only; they never change simulation results, but a
        missing edge would let the event engine oversleep, which the
        byte-identity tests would catch.
        """
        self._edges.append((producer, consumer, signal))

    def connect_fanout(
        self,
        producer: Component,
        consumers: Iterable[Component],
        touched: Callable[[], Iterable[int]],
    ) -> None:
        """Declare a one-to-many wake edge with per-step target selection.

        ``touched`` is evaluated after ``producer`` steps and yields
        indices into ``consumers`` naming exactly the ones handed work
        this step (e.g. a crossbar's delivered-sink list).  Semantics
        otherwise match :meth:`connect`.
        """
        self._fanouts.append((producer, tuple(consumers), touched))

    @property
    def components(self) -> list[Component]:
        """Registered components in step order."""
        return [c for c, _ in self._entries]

    def attach_observer(self, observer: SimObserver) -> None:
        """Register an observer called at cycle and finalize boundaries.

        An observer provides ``on_cycle(cycle)`` — invoked after every
        component has stepped, at the quiescent point between cycles — and
        ``on_finalize(cycle)`` — invoked once when the simulation
        finalizes.  Observers may raise (the sanitizer raises
        :class:`~repro.errors.SanitizerError` on an invariant violation);
        the exception propagates out of :meth:`step` / :meth:`run`.
        """
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _build_dispatch(self) -> None:
        """Precompute per-residue step lists over the clock hyperperiod.

        Mixed clock domains must keep both the fast path *and* the
        registration order (the one-hop-per-cycle contract fixes which
        component acts first within a cycle), so the dispatch table holds
        one ordered list of bound ``step`` methods per residue of
        ``lcm(periods)``.  With every component on the core clock this
        collapses to a single list; a pathological hyperperiod falls back
        to the per-entry scan.
        """
        self._wake_fns = [c.next_wake for c, _ in self._entries]
        self._last_blocker = 0
        hyper = math.lcm(*(clk.period for _, clk in self._entries)) \
            if self._entries else 1
        if hyper > _MAX_DISPATCH_RESIDUES:
            self._dispatch = None
            self._dispatch_flat = None
            self._dispatch_mod = -1  # built; use the per-entry scan
            return
        self._dispatch = [
            [c.step for c, clk in self._entries if clk.ticks(residue)]
            for residue in range(hyper)
        ]
        self._dispatch_flat = self._dispatch[0] if hyper == 1 else None
        self._dispatch_mod = hyper

    def step(self) -> None:
        """Advance the simulation by one core cycle."""
        now = self.cycle
        if self._dispatch_mod == 0:
            self._build_dispatch()
        flat = self._dispatch_flat
        if flat is not None:
            for step in flat:
                step(now)
        elif (dispatch := self._dispatch) is not None:
            for step in dispatch[now % self._dispatch_mod]:
                step(now)
        else:
            for component, clock in self._entries:
                if clock.ticks(now):
                    component.step(now)
        self.cycle = now + 1
        if self._observers:
            for observer in self._observers:
                observer.on_cycle(now)

    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = DEFAULT_MAX_CYCLES,
        drain: bool = True,
    ) -> int:
        """Run until ``done()`` is true; returns the final cycle count.

        With ``drain`` (the default) the run continues past ``done()`` until
        every component reports idle, so in-flight requests (e.g. stores
        still percolating to DRAM) finish and statistics intervals close at
        their true ends.  Raises :class:`CycleLimitExceeded` if the budget
        runs out first.
        """
        if self._finalized:
            raise SimulationError("simulator already finalized; build a new one")
        fast = self.fast_forward_enabled and not self._observers
        self._run_fast = fast
        for component, _ in self._entries:
            component.set_fast_mode(fast)
        finished_at: int | None = None
        completed = False
        if fast and self.engine_mode == "event":
            finished_at, completed = self._run_event(done, max_cycles, drain)
            # A mid-run degrade clears fast_forward_enabled; drop the
            # per-cycle wake probing too, it would keep failing.
            fast = fast and self.fast_forward_enabled
        if not completed:
            while not done():
                if self.cycle >= max_cycles:
                    raise CycleLimitExceeded(
                        max_cycles, "done() never satisfied"
                    )
                if fast and self._try_fast_forward(max_cycles):
                    continue  # re-check the cycle budget at the new time
                self.step()
            if finished_at is None:
                finished_at = self.cycle
            if drain:
                while not all(c.is_idle() for c, _ in self._entries):
                    if self.cycle >= max_cycles:
                        raise CycleLimitExceeded(
                            max_cycles, "drain never completed"
                        )
                    if fast and self._try_fast_forward(max_cycles):
                        continue
                    self.step()
        self.finalize()
        return finished_at

    # ------------------------------------------------------------------
    # event-calendar engine
    # ------------------------------------------------------------------
    def _component_index(self, component: Component) -> int:
        for i, (candidate, _) in enumerate(self._entries):
            if candidate is component:
                return i
        raise SimulationError(
            "event edge references a component that was never add()ed"
        )

    def _compile_event_edges(
        self,
    ) -> tuple[
        list[list[tuple[Callable[[], object] | None, int]]],
        list[list[tuple[Callable[[], Iterable[int]], list[int]]]],
        list[list[tuple[Callable[[], object] | None, int]]],
        list[list[tuple[Callable[[], Iterable[int]], list[int]]]],
    ]:
        """Resolve declared edges to positional bitmask tables.

        Returns ``(fwd_plain, fwd_fan, bwd_plain, bwd_fan)`` indexed by
        producer position.  Plain entries are ``(signal, target_bit)``
        pairs (signal None = unconditional); fanout entries are
        ``(touched, per_index_bit)`` where bits for consumers on the wrong
        side are 0.  Forward edges (consumer registered after the
        producer) re-arm for the *current* cycle — the ascending sweep has
        not passed them yet; backward edges re-arm for the next cycle.
        This mirrors exactly the same/next-cycle visibility registration
        order gives the ticked loop.
        """
        n = len(self._entries)
        fwd_plain: list[list[tuple[Callable[[], object] | None, int]]] = [
            [] for _ in range(n)
        ]
        bwd_plain: list[list[tuple[Callable[[], object] | None, int]]] = [
            [] for _ in range(n)
        ]
        fwd_fan: list[list[tuple[Callable[[], Iterable[int]], list[int]]]] = [
            [] for _ in range(n)
        ]
        bwd_fan: list[list[tuple[Callable[[], Iterable[int]], list[int]]]] = [
            [] for _ in range(n)
        ]
        for producer, consumer, signal in self._edges:
            p = self._component_index(producer)
            q = self._component_index(consumer)
            side = fwd_plain if q > p else bwd_plain
            side[p].append((signal, 1 << q))
        for producer, consumers, touched in self._fanouts:
            p = self._component_index(producer)
            positions = [self._component_index(c) for c in consumers]
            ahead = [1 << q if q > p else 0 for q in positions]
            behind = [1 << q if q < p else 0 for q in positions]
            if any(ahead):
                fwd_fan[p].append((touched, ahead))
            if any(behind):
                bwd_fan[p].append((touched, behind))
        return fwd_plain, fwd_fan, bwd_plain, bwd_fan

    def _advance_event(self, serviced: list[int], target: int) -> None:
        """Replay every component's skipped clock edges up to ``target``.

        ``serviced[i]`` is the cycle up to which (exclusive) component
        ``i`` has accounted all its clock edges, via steps or replay.
        Called before any exit from the event loop so per-cycle counters
        and intervals match a ticked run ending at the same cycle.
        Components registered after the calendar was compiled (beyond
        ``len(serviced)``) have no skipped edges to replay.
        """
        for i, (component, clock) in enumerate(self._entries[: len(serviced)]):
            base = serviced[i]
            if base < target:
                missed = clock.ticks_in(base, target)
                if missed:
                    component.fast_forward(missed)
                serviced[i] = target

    def _degrade_to_ticked(self, now: int, serviced: list[int]) -> None:
        """Finish cycle ``now`` conservatively after a ``None`` wake hint.

        A ``None`` hint invalidates the calendar, so every component that
        has not yet acted this cycle is brought current and — if its clock
        has an edge here — stepped, in registration order.  Stepping a
        sleeping component is always byte-safe (the ticked loop steps
        everyone), so this hands the ticked loop a world identical to its
        own at ``now + 1``.  Components registered *during* cycle ``now``
        (beyond ``len(serviced)``) are skipped: the ticked loop steps them
        from ``now + 1`` on, exactly as it would after a mid-cycle add.
        """
        for i, (component, clock) in enumerate(self._entries[: len(serviced)]):
            base = serviced[i]
            if base > now:
                continue  # already stepped this cycle
            missed = clock.ticks_in(base, now)
            if missed:
                component.fast_forward(missed)
            if clock.ticks(now):
                component.step(now)
            serviced[i] = now + 1
        self.cycle = now + 1
        if self._observers:  # pragma: no cover - event mode excludes them
            for observer in self._observers:
                observer.on_cycle(now)

    def _run_event(
        self,
        done: Callable[[], bool],
        max_cycles: int,
        drain: bool,
    ) -> tuple[int | None, bool]:
        """Event-calendar loop; returns ``(finished_at, completed)``.

        ``completed`` False means a component published a ``None`` wake
        hint: the world has been brought to a cycle boundary and the
        caller must continue on the ticked loop (``finished_at`` is the
        done-cycle if ``done()`` was already observed).

        Invariants:

        * ``serviced[i]`` — all clock edges of component ``i`` in
          ``[start, serviced[i])`` are accounted (stepped or replayed).
        * ``wake[i]`` — the cycle of component ``i``'s single *valid*
          calendar entry (``WAKE_NEVER`` when none); stale heap entries
          are skipped lazily on pop.
        * Components are serviced strictly in registration order within a
          cycle, so one-hop-per-cycle visibility matches the ticked loop.

        Calendar entries are single ints ``(cycle << shift) | position``
        (faster to heap-compare than tuples); the due/re-poll sets are
        int bitmasks, iterated lowest-bit-first — which *is* registration
        order.
        """
        if self._dispatch_mod == 0:
            self._build_dispatch()
        entries = self._entries
        n = len(entries)
        clocks = [clk for _, clk in entries]
        on_core_clock = [clk.period == 1 for clk in clocks]
        steps = [c.step for c, _ in entries]
        wake_fns = [c.next_wake for c, _ in entries]
        replay_fns = [c.fast_forward for c, _ in entries]
        idle_fns = [c.is_idle for c, _ in entries]
        fwd_plain, fwd_fan, bwd_plain, bwd_fan = self._compile_event_edges()
        shift = max(1, (n - 1).bit_length()) if n else 1
        pos_mask = (1 << shift) - 1
        self._entries_dirty = False

        start = self.cycle
        serviced = [start] * n
        wake = [
            start if on_core_clock[i] else clocks[i].next_edge(start)
            for i in range(n)
        ]
        heap: list[int] = [(wake[i] << shift) | i for i in range(n)]
        heapify(heap)

        finished_at: int | None = None
        draining = False
        #: Positions due at exactly ``self.cycle``, scheduled without a
        #: heap round-trip (the busy-every-cycle common case).
        hot_mask = 0

        while True:
            # Boundary checks at self.cycle — the same points the ticked
            # loop checks: before every serviced cycle and after every
            # jump, so cycle-predicate ``done`` exits at identical cycles.
            if draining:
                if all(fn() for fn in idle_fns):
                    self._advance_event(serviced, self.cycle)
                    return finished_at, True
            elif done():
                finished_at = self.cycle
                if not drain or all(fn() for fn in idle_fns):
                    self._advance_event(serviced, self.cycle)
                    return finished_at, True
                draining = True
            if self.cycle >= max_cycles:
                self._advance_event(serviced, max_cycles)
                raise CycleLimitExceeded(
                    max_cycles,
                    "drain never completed"
                    if draining
                    else "done() never satisfied",
                )
            if hot_mask:
                c = self.cycle
            else:
                c = (heap[0] >> shift) if heap else WAKE_NEVER
                if c > self.cycle:
                    # Jump to the next calendar entry (clamped to the
                    # budget), then loop back so the boundary checks see
                    # that cycle.
                    clamped = min(c, max_cycles)
                    self.cycles_fast_forwarded += clamped - self.cycle
                    self.cycle = clamped
                    continue
            due_mask = hot_mask
            hot_mask = 0
            gather_below = (c + 1) << shift
            while heap and heap[0] < gather_below:
                i = heappop(heap) & pos_mask
                if wake[i] == c:
                    due_mask |= 1 << i
            repoll_mask = 0
            while due_mask:
                bit = due_mask & -due_mask
                due_mask ^= bit
                p = bit.bit_length() - 1
                base = serviced[p]
                if base > c:
                    continue  # duplicate calendar entry, already handled
                if on_core_clock[p]:
                    if c > base:
                        replay_fns[p](c - base)
                else:
                    missed = clocks[p].ticks_in(base, c)
                    if missed:
                        replay_fns[p](missed)
                    if not clocks[p].ticks(c):
                        # Woken off-edge (a repoll or a wake rounded short):
                        # nothing can happen before the next clock edge.
                        serviced[p] = c
                        edge = clocks[p].next_edge(c)
                        wake[p] = edge
                        heappush(heap, (edge << shift) | p)
                        continue
                # A valid calendar entry means the component either asked
                # to act here or was handed work by an edge; stepping is
                # always byte-safe (the ticked loop steps everyone), and
                # components guard their own no-op steps cheaply, so step
                # without a pre-step wake probe.
                steps[p](c)
                serviced[p] = c + 1
                if self._entries_dirty:
                    # The step registered a new component the compiled
                    # tables don't cover; finish this cycle conservatively
                    # and let the ticked loop (which rebuilds its dispatch)
                    # take over.  Not a hint failure: fast-forward probing
                    # stays enabled.
                    self._degrade_to_ticked(c, serviced)
                    return finished_at, False
                for signal, bits in fwd_plain[p]:
                    if signal is None or signal():
                        due_mask |= bits
                for touched, masks in fwd_fan[p]:
                    for i in touched():
                        due_mask |= masks[i]
                for signal, bits in bwd_plain[p]:
                    if signal is None or signal():
                        repoll_mask |= bits
                for touched, masks in bwd_fan[p]:
                    for i in touched():
                        repoll_mask |= masks[i]
                # Post-step scheduling: ask the component when it next
                # acts instead of blindly re-polling it next cycle.
                # Mutations later components make this cycle are covered
                # by their backward edges, which override this wake via
                # the re-poll sweep below.
                w = wake_fns[p](c + 1)
                if w is None:
                    # Hintless component: the calendar can't be trusted.
                    self.fast_forward_enabled = False
                    self._degrade_to_ticked(c, serviced)
                    return finished_at, False
                if w <= c + 1:
                    if on_core_clock[p]:
                        wake[p] = c + 1
                        hot_mask |= bit
                    else:
                        edge = clocks[p].next_edge(c + 1)
                        wake[p] = edge
                        if edge == c + 1:
                            hot_mask |= bit
                        else:
                            heappush(heap, (edge << shift) | p)
                elif w < WAKE_NEVER:
                    edge = w if on_core_clock[p] else clocks[p].next_edge(w)
                    wake[p] = edge
                    heappush(heap, (edge << shift) | p)
                else:
                    wake[p] = WAKE_NEVER
            nxt = c + 1
            self.cycle = nxt
            while repoll_mask:
                bit = repoll_mask & -repoll_mask
                repoll_mask ^= bit
                i = bit.bit_length() - 1
                wake[i] = nxt
                hot_mask |= bit

    def _try_fast_forward(self, limit: int) -> bool:
        """Jump ``self.cycle`` to the components' joint event horizon.

        Returns True when time advanced.  The jump happens only when every
        component publishes a wake cycle strictly beyond ``self.cycle`` —
        then no component would change any state in the skipped window, so
        only the per-cycle counters need replaying (via
        :meth:`Component.fast_forward`, with per-clock-domain tick counts).
        Any ``None`` hint vetoes fast-forward for good.  The horizon is
        clamped to ``limit`` so a cycle-budget overrun fires at the same
        cycle as the naive loop.
        """
        now = self.cycle
        if now < self._ff_cooldown:
            return False
        if self._dispatch_mod == 0:
            self._build_dispatch()
        fns = self._wake_fns
        horizon = WAKE_NEVER
        if fns:
            # Probe the last veto first: a component busy this cycle is
            # almost always busy the next, so the common no-jump case
            # costs one wake call instead of a full scan.
            blocker = self._last_blocker
            w = fns[blocker](now)
            if w is None:
                self.fast_forward_enabled = False
                return False
            if w <= now:
                self._ff_cooldown = now + 3
                return False
            horizon = w
            for i, wake in enumerate(fns):
                if i == blocker:
                    continue
                w = wake(now)
                if w is None:
                    self.fast_forward_enabled = False
                    return False
                if w <= now:
                    self._last_blocker = i
                    self._ff_cooldown = now + 3
                    return False
                if w < horizon:
                    horizon = w
        if horizon > limit:
            horizon = limit
        if horizon <= now:
            return False
        window = horizon - now
        for component, clock in self._entries:
            ticks = window if clock.period == 1 \
                else clock.ticks_in(now, horizon)
            if ticks:
                component.fast_forward(ticks)
        self.cycles_fast_forwarded += window
        self.cycle = horizon
        return True

    def finalize(self) -> None:
        """Close statistics intervals on every component (idempotent)."""
        if self._finalized:
            return
        for component, _ in self._entries:
            component.finalize(self.cycle)
        for observer in self._observers:
            observer.on_finalize(self.cycle)
        self._finalized = True
