"""Component protocol for the cycle-driven simulator.

A component is anything stepped once per (its clock domain's) cycle.  The
engine calls :meth:`Component.step` with the current core-clock cycle; the
component performs one cycle of work — popping input queues, advancing
pipelines, pushing output queues — and returns.  Back-pressure is expressed
purely through finite queues: a component that cannot push its output simply
leaves the item where it is and retries on a later cycle.

Components also expose :meth:`finalize` (close open statistics intervals)
and :meth:`is_idle` (used by the engine to detect global quiescence and by
tests to assert drained state).

Introspection
-------------
The ``inspect_*`` hooks let the :mod:`repro.analysis` sanitizer enumerate a
component's bookkeeping without knowing its concrete type: every bounded
queue (:meth:`inspect_queues`), every MSHR table (:meth:`inspect_mshrs`)
and every request currently travelling through the component's private
buffers (:meth:`inspect_inflight` — pipeline registers, crossbar FIFOs,
pending-response lists; *not* MSHR residence, which the sanitizer reads
from the tables themselves).  The defaults return empty iterables so plain
components need not care.

Telemetry
---------
The ``sample_*`` hooks are the same idea for the :mod:`repro.telemetry`
time-series probe, but labelled: each yields ``(label, thing)`` pairs
where the label names the *family* the instrument belongs to
(``"l2_accessq"``, ``"l1_mshr"``, ``"instructions"``), so the probe can
aggregate the instances living on different components into one
per-window series.  ``sample_counters`` yields *cumulative monotone*
counters; the probe reports their per-window deltas.  The defaults return
empty iterables, so — like the sanitizer — telemetry is strictly opt-in
and free when no probe is attached.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

#: Wake hint meaning "idle until something external arrives".  Far beyond
#: any reachable cycle count, but small enough that arithmetic on it stays
#: in CPython's fast int range.
WAKE_NEVER = 1 << 62


class Component:
    """Base class for simulated hardware components."""

    #: Name used in statistics reports; subclasses should override.
    name: str = "component"

    def step(self, now: int) -> None:
        """Advance the component by one cycle (core-clock cycle ``now``)."""
        raise NotImplementedError

    def finalize(self, now: int) -> None:
        """Close any open measurement intervals at end of simulation."""

    def is_idle(self) -> bool:
        """True when the component holds no in-flight work."""
        return True

    # ------------------------------------------------------------------
    # event-horizon fast-forward hooks
    # ------------------------------------------------------------------
    def next_wake(self, now: int) -> int | None:
        """Earliest core cycle >= ``now`` at which stepping could matter.

        The contract backing :meth:`Simulator.run`'s fast-forward:

        * ``now`` — the component must step this cycle;
        * ``> now`` — stepping before that cycle is a no-op *provided no
          other component acts first* (the engine only skips when every
          component agrees, so a producer that would feed this component
          pins the horizon to ``now`` itself);
        * :data:`WAKE_NEVER` — idle until external input arrives;
        * ``None`` (the default) — no hint; disables fast-forward for the
          whole simulation, keeping ad-hoc components conservative.

        A hint must only depend on state that is stable while *every*
        component sleeps; per-cycle statistics for skipped cycles are
        replayed through :meth:`fast_forward`.
        """
        return None

    def fast_forward(self, cycles: int) -> None:
        """Account for ``cycles`` skipped cycles (clock-domain ticks).

        Called by the engine after a fast-forward jump, once per component,
        with the number of tick edges its clock domain would have seen.
        Implementations replicate exactly the per-cycle counters an idle
        :meth:`step` would have accumulated; the default assumes there are
        none.
        """

    def set_fast_mode(self, enabled: bool) -> None:
        """Tell the component whether fast-forward replay is permitted.

        Called by :meth:`Simulator.run` before the main loop with the same
        switch that governs global event-horizon jumps (user flag AND no
        observers attached).  Components with *component-local* skip
        optimisations (e.g. the SM's burst windows) gate them on this, so
        ``fast_forward=False`` runs — the determinism reference — and
        observed runs always execute the naive per-cycle path.  Default:
        ignore.
        """

    # ------------------------------------------------------------------
    # sanitizer introspection hooks
    # ------------------------------------------------------------------
    def inspect_queues(self) -> Iterable[Any]:
        """Bounded :class:`~repro.mem.queue.StatQueue` instances owned here."""
        return ()

    def inspect_mshrs(self) -> Iterable[Any]:
        """:class:`~repro.cache.mshr.MSHRTable` instances owned here."""
        return ()

    def inspect_inflight(self) -> Iterable[Any]:
        """Requests held in transit buffers other than the above queues."""
        return ()

    # ------------------------------------------------------------------
    # telemetry sampling hooks
    # ------------------------------------------------------------------
    def sample_queues(self) -> Iterable[tuple[str, object]]:
        """``(family, StatQueue)`` pairs for windowed congestion series."""
        return ()

    def sample_mshrs(self) -> Iterable[tuple[str, object]]:
        """``(family, MSHRTable)`` pairs for windowed occupancy series."""
        return ()

    def sample_counters(self) -> Iterable[tuple[str, float]]:
        """``(name, cumulative value)`` monotone counters for delta series."""
        return ()

    def sample_stalls(self) -> Iterable[tuple[str, int]]:
        """``(cause, cumulative stall cycles)`` pairs for attribution.

        Causes are stable string keys (the ``AccessResult`` stall values:
        ``"stall_mshr_full"``, ``"stall_merge_full"``,
        ``"stall_missq_full"``).  Like :meth:`sample_counters`, values are
        cumulative and monotone; the attribution probe reports per-window
        deltas.  Components without a stalling issue stage return nothing.
        """
        return ()

    def inspect_cycle_classes(self) -> dict[str, int]:
        """Exhaustive cycle-accounting partition for this component.

        A component that classifies its cycles returns a mapping holding
        the key ``"cycles"`` (its total stepped cycles) plus one entry per
        accounting class.  The contract — enforced by the sanitizer and
        the attribution tests — is *exact conservation*: the class counts
        sum to ``cycles`` at every cycle boundary, with no overlap and no
        gap.  The default (empty mapping) means "no accounting here".
        """
        return {}
