"""Kernel program abstraction.

A :class:`KernelProgram` supplies one instruction iterator per warp (see
:mod:`repro.cores.warp` for the instruction set) plus the execution
parameters the kernel wants from the core (warps per SM, MLP limit, warp
scheduler).  The GPU builder instantiates one iterator per (SM, warp) pair
with a deterministic per-warp random seed, so runs are exactly repeatable.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.cores.warp import Instruction
from repro.errors import WorkloadError

#: (sm_id, warp_id, rng) -> instruction iterator
WarpProgramFactory = Callable[[int, int, random.Random], Iterator[Instruction]]


@dataclass(frozen=True)
class KernelProgram:
    """A complete kernel description consumable by :class:`repro.gpu.GPU`."""

    name: str
    make_warp_program: WarpProgramFactory
    #: Per-warp limit on outstanding load instructions.
    mlp_limit: int = 4
    #: Override the config's warps per SM (None = use config).
    warps_per_sm: int | None = None
    #: Override the config's warp scheduler (None = use config).
    scheduler: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.mlp_limit < 1:
            raise WorkloadError(f"kernel {self.name!r}: mlp_limit must be >= 1")
        if self.warps_per_sm is not None and self.warps_per_sm < 1:
            raise WorkloadError(
                f"kernel {self.name!r}: warps_per_sm must be >= 1"
            )

    def instantiate(
        self, sm_id: int, warp_id: int, seed: int
    ) -> Iterator[Instruction]:
        """Create the instruction iterator for one warp."""
        rng = random.Random((seed * 1_000_003 + sm_id * 1009 + warp_id) & 0xFFFFFFFF)
        return self.make_warp_program(sm_id, warp_id, rng)
