"""The paper's benchmark suite, modelled synthetically.

Eight kernels mirror the memory signatures of the benchmarks in Figure 1
of the paper (Rodinia: cfd, dwt2d, leukocyte, nn, nw, sc; Parboil: lbm;
ss).  Absolute problem sizes are scaled to the reduced-scale simulator
(see DESIGN.md, substitution table); what is preserved per benchmark is
the *relative* signature — arithmetic intensity, coalescing, cache
locality at each level, store traffic and synchronization — because those
determine which level of the memory hierarchy bottlenecks it.

Signature summary (working sets relative to the 512 KiB / 4096-line
aggregate L2 of the default config):

=========== ============== ====== ======================================
benchmark   pattern        bound  notes
=========== ============== ====== ======================================
cfd         random         L2/DRAM  irregular mesh gather, 4x L2 footprint
dwt2d       shared_stream  L2     strided wavelet passes over shared rows
leukocyte   tile_reuse     compute heavy arithmetic, L1-resident tiles
nn          stream         DRAM   coalesced streaming distance computation
nw          wavefront      latency dependent diagonal wavefront, low MLP
sc          hot_cold       L2     streamcluster: hot centroids + cold pass
lbm         stream+stores  DRAM   stencil update, heavy write traffic
ss          random (div.)  L1-L2  divergent similarity lookups
=========== ============== ====== ======================================
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.program import KernelProgram
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel

#: Benchmark specifications, calibrated against the paper's Figure 1 shape
#: and Section III/IV aggregates on the default ``small_gpu`` config.
SPECS: dict[str, SyntheticKernelSpec] = {
    "cfd": SyntheticKernelSpec(
        name="cfd",
        pattern="random",
        iterations=40,
        compute_per_iter=14,
        loads_per_iter=2,
        txns_per_load=2,
        working_set_lines=10240,
        mlp_limit=4,
        description="unstructured-mesh CFD solver: irregular gathers over a "
        "footprint ~4x the L2",
    ),
    "dwt2d": SyntheticKernelSpec(
        name="dwt2d",
        pattern="shared_stream",
        iterations=40,
        compute_per_iter=12,
        loads_per_iter=2,
        txns_per_load=2,
        txn_spread=2,
        working_set_lines=3072,
        warp_stride=48,
        mlp_limit=4,
        description="2D discrete wavelet transform: strided passes over a "
        "shared image that mostly fits the L2",
    ),
    "leukocyte": SyntheticKernelSpec(
        name="leukocyte",
        pattern="tile_reuse",
        iterations=48,
        compute_per_iter=36,
        loads_per_iter=2,
        txns_per_load=1,
        tile_lines=4,
        reuse_per_line=8,
        mlp_limit=2,
        description="cell tracking: heavy per-pixel arithmetic over "
        "L1-resident tiles (compute bound)",
    ),
    "nn": SyntheticKernelSpec(
        name="nn",
        pattern="shared_stream",
        iterations=60,
        compute_per_iter=8,
        loads_per_iter=2,
        txns_per_load=1,
        working_set_lines=32768,
        warp_stride=16,
        mlp_limit=6,
        description="k-nearest-neighbours: coalesced streaming of one "
        "shared record array (DRAM bound, row-friendly)",
    ),
    "nw": SyntheticKernelSpec(
        name="nw",
        pattern="wavefront",
        iterations=56,
        compute_per_iter=4,
        loads_per_iter=2,
        txns_per_load=1,
        working_set_lines=2048,
        warp_stride=11,
        membar_every=1,
        mlp_limit=1,
        description="Needleman-Wunsch: dependent diagonal wavefront, one "
        "outstanding load at a time (latency bound)",
    ),
    "sc": SyntheticKernelSpec(
        name="sc",
        pattern="hot_cold",
        iterations=44,
        compute_per_iter=8,
        loads_per_iter=2,
        txns_per_load=2,
        hot_lines=3072,
        p_hot=0.9,
        mlp_limit=4,
        description="streamcluster: hot centroid table (~L2-resident) plus "
        "a cold streaming pass (L2 bandwidth bound)",
    ),
    "lbm": SyntheticKernelSpec(
        name="lbm",
        pattern="shared_stream",
        iterations=36,
        compute_per_iter=14,
        loads_per_iter=3,
        txns_per_load=1,
        stores_per_iter=1,
        txns_per_store=1,
        working_set_lines=32768,
        warp_stride=24,
        mlp_limit=6,
        description="lattice-Boltzmann stencil: streaming reads plus heavy "
        "result stores (DRAM read+write bound)",
    ),
    "ss": SyntheticKernelSpec(
        name="ss",
        pattern="random",
        iterations=36,
        compute_per_iter=12,
        loads_per_iter=2,
        txns_per_load=3,
        txn_spread=3,
        working_set_lines=5120,
        mlp_limit=6,
        description="similarity score: divergent random lookups (4 "
        "transactions per load) over a 2x-L2 footprint",
    ),
}

#: Benchmark order used in the paper's figures.
PAPER_SUITE: tuple[str, ...] = (
    "cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss",
)

BENCHMARKS: dict[str, KernelProgram] = {
    name: build_kernel(spec) for name, spec in SPECS.items()
}


def get_benchmark(name: str, iteration_scale: float = 1.0) -> KernelProgram:
    """Fetch a suite benchmark, optionally scaling its iteration count.

    ``iteration_scale < 1`` shortens runs for tests; the memory signature
    (per-iteration behaviour) is unchanged.
    """
    try:
        spec = SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(SPECS)}"
        ) from None
    if iteration_scale != 1.0:
        spec = spec.scaled(iteration_scale)
    return build_kernel(spec)
