"""Address-pattern generators.

Each generator yields cache-line indices.  Patterns are the vocabulary the
synthetic benchmark models are written in; they control the three
properties that determine where a workload's bandwidth bottleneck sits:

* **L1 locality** — how soon a warp revisits a line (tile reuse);
* **L2 locality** — how much of the footprint is shared across warps/SMs
  and whether it fits the shared L2;
* **DRAM row locality** — whether consecutive misses stream through rows
  (row-buffer hits) or scatter (row conflicts).
"""

from __future__ import annotations

import random
from collections.abc import Iterator


def stream(base: int, start: int, length: int) -> Iterator[int]:
    """Sequential lines ``base+start .. base+start+length-1`` (no wrap:
    callers size streams explicitly)."""
    return iter(range(base + start, base + start + length))


def strided(base: int, start: int, stride: int, count: int) -> Iterator[int]:
    """``count`` lines spaced ``stride`` apart."""
    return iter(range(base + start, base + start + stride * count, stride))


def uniform_random(
    rng: random.Random, base: int, span: int, count: int
) -> Iterator[int]:
    """``count`` lines uniformly random within ``[base, base+span)``."""
    return (base + rng.randrange(span) for _ in range(count))


def hot_cold(
    rng: random.Random,
    base: int,
    hot_span: int,
    cold_span: int,
    p_hot: float,
    count: int,
) -> Iterator[int]:
    """Mixture: probability ``p_hot`` from a hot region, else cold region.

    The hot region starts at ``base``; the cold region follows it.
    """
    def gen() -> Iterator[int]:
        for _ in range(count):
            if rng.random() < p_hot:
                yield base + rng.randrange(hot_span)
            else:
                yield base + hot_span + rng.randrange(cold_span)

    return gen()


def coalesced_group(first_line: int, n_txns: int, spread: int = 1) -> list[int]:
    """The transaction list of one warp-wide access.

    ``n_txns == 1`` models a perfectly coalesced access; larger values
    model divergent accesses touching ``n_txns`` distinct lines spaced
    ``spread`` apart.
    """
    return [first_line + i * spread for i in range(n_txns)]
