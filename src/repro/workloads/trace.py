"""Memory-trace recording and replay.

Two complementary uses:

* **Record** — capture the instruction stream the synthetic generators
  produce (or any :class:`~repro.workloads.program.KernelProgram`) into a
  plain-text trace file, one warp per section.  Recorded traces make runs
  exactly reproducible across library versions and are diffable artifacts
  for regression review.
* **Replay** — build a :class:`KernelProgram` from a trace file, or from
  lane-level address traces via the coalescer.  This is the entry point
  for driving the simulator with externally produced traces (e.g.
  converted from a real profiler's output).

Trace format (text, line oriented)::

    # comment
    warp <sm_id> <warp_id>
    c <n>              # compute n
    l <line> [line...] # load transactions (line indices, hex or dec)
    s <line> [line...] # store transactions
    m                  # membar

Warp sections may appear in any order; a warp absent from the trace gets
an empty program.
"""

from __future__ import annotations

import io
from collections.abc import Iterator, Sequence
from pathlib import Path

from repro.cores.coalescer import Coalescer
from repro.cores.warp import Instruction
from repro.errors import WorkloadError
from repro.workloads.program import KernelProgram


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def record_program(
    kernel: KernelProgram,
    n_sms: int,
    warps_per_sm: int,
    seed: int = 1,
) -> str:
    """Render every warp's instruction stream as a trace text."""
    out = io.StringIO()
    out.write(f"# trace of kernel {kernel.name!r} (seed {seed})\n")
    for sm_id in range(n_sms):
        for warp_id in range(warps_per_sm):
            out.write(f"warp {sm_id} {warp_id}\n")
            for instr in kernel.instantiate(sm_id, warp_id, seed):
                op = instr[0]
                if op == "compute":
                    out.write(f"c {instr[1]}\n")
                elif op == "load":
                    out.write("l " + " ".join(map(str, instr[1])) + "\n")
                elif op == "store":
                    out.write("s " + " ".join(map(str, instr[1])) + "\n")
                elif op == "membar":
                    out.write("m\n")
                else:  # pragma: no cover - guarded by warp validation
                    raise WorkloadError(f"unknown op {op!r}")
    return out.getvalue()


def save_trace(path: str | Path, text: str) -> None:
    """Write a trace text to disk."""
    Path(path).write_text(text)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def parse_trace(text: str) -> dict[tuple[int, int], list[Instruction]]:
    """Parse a trace text into {(sm_id, warp_id): [instruction, ...]}."""
    programs: dict[tuple[int, int], list[Instruction]] = {}
    current: list[Instruction] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        op, args = fields[0], fields[1:]
        try:
            if op == "warp":
                key = (_parse_int(args[0]), _parse_int(args[1]))
                current = programs.setdefault(key, [])
            elif op == "c":
                current.append(("compute", _parse_int(args[0])))
            elif op == "l":
                current.append(("load", [_parse_int(a) for a in args]))
            elif op == "s":
                current.append(("store", [_parse_int(a) for a in args]))
            elif op == "m":
                current.append(("membar",))
            else:
                raise WorkloadError(f"line {lineno}: unknown op {op!r}")
        except WorkloadError:
            raise
        except (AttributeError, TypeError):
            raise WorkloadError(
                f"line {lineno}: instruction before any 'warp' header"
            ) from None
        except (IndexError, ValueError):
            raise WorkloadError(f"line {lineno}: malformed {raw!r}") from None
    return programs


def load_trace(path: str | Path) -> dict[tuple[int, int], list[Instruction]]:
    """Parse a trace file."""
    return parse_trace(Path(path).read_text())


def trace_kernel(
    programs: dict[tuple[int, int], list[Instruction]],
    name: str = "trace",
    mlp_limit: int = 4,
    warps_per_sm: int | None = None,
    scheduler: str | None = None,
) -> KernelProgram:
    """Wrap parsed trace programs as a replayable :class:`KernelProgram`."""

    def factory(sm_id: int, warp_id: int, _rng) -> Iterator[Instruction]:
        return iter(programs.get((sm_id, warp_id), []))

    return KernelProgram(
        name=name,
        make_warp_program=factory,
        mlp_limit=mlp_limit,
        warps_per_sm=warps_per_sm,
        scheduler=scheduler,
        description="replayed memory trace",
    )


# ----------------------------------------------------------------------
# lane-level traces
# ----------------------------------------------------------------------
def coalesce_lane_trace(
    accesses: Sequence[tuple[str, Sequence[int | None]]],
    line_bytes: int,
    compute_between: int = 0,
) -> tuple[list[Instruction], "Coalescer"]:
    """Convert a lane-address trace into an instruction list.

    ``accesses`` is a sequence of ("load"|"store", [lane addresses]) pairs;
    each is coalesced into line transactions.  ``compute_between`` inserts
    arithmetic work between memory accesses.  Returns the instruction list
    plus the coalescer (whose statistics describe the trace's coalescing
    degree).
    """
    coalescer = Coalescer(line_bytes)
    instructions: list[Instruction] = []
    for kind, lanes in accesses:
        if kind not in ("load", "store"):
            raise WorkloadError(f"bad access kind {kind!r}")
        lines = coalescer.access(lanes)
        if not lines:
            continue  # fully masked-off access
        if compute_between:
            instructions.append(("compute", compute_between))
        instructions.append((kind, lines))
    return instructions, coalescer
