"""Workloads: kernel programs, address patterns, and the paper's benchmark suite."""

from repro.workloads.program import KernelProgram
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel
from repro.workloads.suite import BENCHMARKS, PAPER_SUITE, get_benchmark
from repro.workloads.trace import (
    load_trace,
    parse_trace,
    record_program,
    save_trace,
    trace_kernel,
)

__all__ = [
    "KernelProgram",
    "SyntheticKernelSpec",
    "build_kernel",
    "BENCHMARKS",
    "PAPER_SUITE",
    "get_benchmark",
    "load_trace",
    "parse_trace",
    "record_program",
    "save_trace",
    "trace_kernel",
]
