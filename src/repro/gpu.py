"""Top-level GPU model.

Assembles the full simulated machine from a :class:`GPUConfig` and a
:class:`KernelProgram`:

* ``n_sms`` SMs, each with a private L1D;
* a request crossbar (L1 miss queues -> L2 access queues) and a response
  crossbar (L2 response queues -> L1 fill ports), both flit-based;
* ``n_partitions`` memory partitions, each an L2 slice paired with a DRAM
  channel.

In *magic memory* mode (Figure 1) only the SMs are built: every L1 miss is
filled after exactly ``config.magic_latency`` cycles by the L1 itself.

Component step order is cores -> request crossbar -> L2 -> DRAM -> response
crossbar, giving a one-hop-per-cycle forward path and a clean backward path
for responses produced earlier in the same cycle.
"""

from __future__ import annotations

from repro.cores.sm import SM
from repro.dram.controller import DRAMChannel
from repro.cache.l2 import L2Slice
from repro.errors import ConfigError
from repro.icnt.crossbar import Crossbar, PacketSink
from repro.icnt.ring import RingNetwork
from repro.mem.address import AddressMapper
from repro.mem.request import RequestFactory
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.engine import DEFAULT_MAX_CYCLES, Simulator
from repro.workloads.program import KernelProgram


class GPU:
    """A fully wired simulated GPU executing one kernel."""

    def __init__(
        self,
        config: GPUConfig,
        kernel: KernelProgram,
        seed: int = 1,
        sim_config: SimConfig | None = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.seed = seed
        self.mapper = AddressMapper(config)
        self.factory = RequestFactory()
        self.sim = Simulator(sim_config)

        if kernel.scheduler is not None and kernel.scheduler != config.core.scheduler:
            from dataclasses import replace

            config = replace(
                config, core=replace(config.core, scheduler=kernel.scheduler)
            )
            self.config = config

        warps_per_sm = kernel.warps_per_sm or config.core.warps_per_sm
        if warps_per_sm > 64:
            raise ConfigError("warps_per_sm above 64 breaks arena layout")

        self.sms: list[SM] = []
        for sm_id in range(config.core.n_sms):
            programs = [
                kernel.instantiate(sm_id, warp_id, seed)
                for warp_id in range(warps_per_sm)
            ]
            self.sms.append(
                SM(sm_id, config, programs, kernel.mlp_limit, self.factory)
            )

        self.l2_slices: list[L2Slice] = []
        self.dram_channels: list[DRAMChannel] = []
        self.request_xbar: Crossbar | None = None
        self.response_xbar: Crossbar | None = None

        for sm in self.sms:
            self.sim.add(sm)

        if not config.magic_memory:
            self._build_memory_system(config)

    # ------------------------------------------------------------------
    def _build_memory_system(self, config: GPUConfig) -> None:
        for pid in range(config.n_partitions):
            l2 = L2Slice(f"l2_p{pid}", config, self.mapper, pid)
            dram = DRAMChannel(f"dram_p{pid}", config, self.mapper, pid)
            l2.dram = dram
            dram.l2 = l2
            self.l2_slices.append(l2)
            self.dram_channels.append(dram)

        mapper = self.mapper
        if config.icnt.topology == "ring":
            def make_network(name, sources, sinks, route, flit_count, hop):
                return RingNetwork(
                    name, config, sources=sources, sinks=sinks, route=route,
                    flit_count=flit_count, stamp_hop=hop,
                    hop_latency=config.icnt.ring_hop_latency)
        else:
            def make_network(name, sources, sinks, route, flit_count, hop):
                return Crossbar(
                    name, config, sources=sources, sinks=sinks, route=route,
                    flit_count=flit_count, stamp_hop=hop)

        self.request_xbar = req = make_network(
            "req_xbar",
            [sm.l1.miss_queue for sm in self.sms],
            [
                PacketSink(
                    can_accept=(lambda l2: lambda _req: l2.access_queue.can_push())(l2),
                    accept=(lambda l2: lambda req, now: l2.access_queue.push(req, now))(l2),
                )
                for l2 in self.l2_slices
            ],
            lambda req: mapper.partition(req.line),
            lambda req: config.request_flits(req.is_write),
            "icnt_req",
        )
        self.response_xbar = resp = make_network(
            "resp_xbar",
            [l2.response_queue for l2 in self.l2_slices],
            [
                PacketSink(
                    can_accept=lambda _req: True,
                    accept=(lambda sm: lambda req, now: sm.l1.deliver_fill(req, now))(sm),
                )
                for sm in self.sms
            ],
            lambda req: req.sm_id,
            lambda _req: config.response_flits(True),
            "icnt_resp",
        )

        self.sim.add(req)
        for l2 in self.l2_slices:
            self.sim.add(l2)
        for dram in self.dram_channels:
            self.sim.add(dram)
        self.sim.add(resp)

        # Wake edges for the event engine (see Simulator.connect).  One
        # edge per way work is handed between components; components that
        # hold work themselves (blocked outputs, pending completions)
        # self-report through next_wake and need no edge.
        sim = self.sim
        for sm in self.sms:
            sim.connect(sm, req, signal=sm.l1.miss_queue.__len__)
        sim.connect_fanout(req, self.l2_slices, req.delivered_sinks)
        sim.connect_fanout(req, self.sms, req.injected_sources)
        for l2, dram in zip(self.l2_slices, self.dram_channels):
            sim.connect(l2, dram, signal=l2.miss_queue.__len__)
            sim.connect(dram, l2, signal=dram.return_queue.__len__)
            sim.connect(l2, resp, signal=l2.response_queue.__len__)
        sim.connect_fanout(resp, self.sms, resp.delivered_sinks)

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """All warps on all SMs retired."""
        return all(sm.done for sm in self.sms)

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> int:
        """Run to completion; returns the cycle at which all warps retired."""
        return self.sim.run(self.done, max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # aggregate statistics (detailed extraction in repro.core.metrics)
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.sim.cycle

    @property
    def instructions(self) -> int:
        return sum(sm.instructions for sm in self.sms)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
