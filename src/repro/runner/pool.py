"""The batch runner: serial or process-pool execution with bounded retry.

:class:`BatchRunner` executes a sequence of :class:`~repro.runner.Job`\\ s
and returns their metrics *in submission order*:

1. jobs are deduplicated by content key (identical jobs run once);
2. the cache (when attached) is consulted for every unique key;
3. remaining jobs run in-process (``jobs=1`` — the fidelity path, where
   observers still work) or across a ``ProcessPoolExecutor``;
4. worker crashes and unexpected errors are retried up to ``retries``
   extra attempts; deterministic simulator failures
   (:class:`~repro.errors.ReproError`) are not retried — re-running the
   same frozen config cannot change the outcome;
5. results are merged back by key, never by completion order, so output
   is identical whatever the parallelism;
6. any job still failing raises one :class:`~repro.errors.RunnerError`
   summary.  Completed results were cached as they arrived, so a rerun
   repeats only the failures.

Observability is opt-in per runner: pass ``events=EventLog(path)`` for a
JSONL record of every submit/start/finish/retry (plus batch summaries
with pool utilization computed from in-worker wall times), and
``progress=True`` for a single rewritten stderr line during long sweeps.
Neither changes results — stdout and metrics stay byte-identical.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.metrics import RunMetrics
from repro.errors import ReproError, RunnerError, UsageError
from repro.runner.cache import ResultCache
from repro.runner.events import EventLog, ProgressLine
from repro.runner.job import Job

#: Extra attempts granted to a crashed job before it is reported failed.
DEFAULT_RETRIES = 2

#: Test hook (see :func:`_maybe_inject_fault`); never set in production.
FAULT_ENV = "REPRO_RUNNER_FAULT"


def _maybe_inject_fault() -> None:
    """Hard-crash the worker while the fault budget file is positive.

    When ``REPRO_RUNNER_FAULT`` names a file holding an integer > 0, the
    worker decrements the counter and dies via ``os._exit`` —
    indistinguishable from a real worker crash.  This exists only so the
    retry path is testable end to end; it runs exclusively inside pool
    workers, never in the parent process.
    """
    fault = os.environ.get(FAULT_ENV)
    if not fault:
        return
    path = Path(fault)
    try:
        remaining = int(path.read_text().strip() or 0)
    except (OSError, ValueError):
        return
    if remaining > 0:
        path.write_text(str(remaining - 1))
        os._exit(17)


def _pool_execute(job: Job) -> tuple[RunMetrics, float]:
    """Worker body; module-level so the pool can pickle it.

    Returns the metrics plus the job's in-worker wall time, so the parent
    can log per-job durations without conflating them with queueing.
    """
    _maybe_inject_fault()
    start = time.perf_counter()  # noqa: REP001 - host wall timing, not simulated time
    metrics = job.execute()
    return metrics, time.perf_counter() - start  # noqa: REP001 - host wall timing, not simulated time


@dataclass(frozen=True)
class JobFailure:
    """One job's terminal failure after all attempts."""

    job: Job
    attempts: int
    error: str

    def render(self) -> str:
        return f"  {self.job.describe()}: {self.error} [{self.attempts} attempt(s)]"


@dataclass
class RunnerStats:
    """What the last :meth:`BatchRunner.run` actually did."""

    jobs: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    retried: int = 0
    failed: int = 0

    def add(self, other: "RunnerStats") -> None:
        """Fold another batch's counters into this one."""
        self.jobs += other.jobs
        self.unique += other.unique
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.retried += other.retried
        self.failed += other.failed


class BatchRunner:
    """Executes job batches serially or across a process pool."""

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        retries: int = DEFAULT_RETRIES,
        events: EventLog | None = None,
        progress: bool = False,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise UsageError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise UsageError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.retries = retries
        #: Optional JSONL event sink (see :mod:`repro.runner.events`).
        self.events = events
        #: Opt-in stderr progress line for long sweeps.
        self.progress = ProgressLine() if progress else None
        #: Counters for the most recent :meth:`run` call.
        self.last_stats = RunnerStats()
        #: Counters accumulated over every :meth:`run` call of this runner.
        self.total_stats = RunnerStats()
        #: In-worker wall seconds summed over executed jobs (last run).
        self.busy_seconds = 0.0

    @classmethod
    def serial(cls) -> "BatchRunner":
        """In-process runner with no cache — the legacy execution path."""
        return cls(jobs=1, cache=None)

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> list[RunMetrics]:
        """Execute ``jobs``; returns metrics in the order given."""
        jobs = list(jobs)
        stats = RunnerStats(jobs=len(jobs))
        self.last_stats = stats
        self.busy_seconds = 0.0
        if not jobs:
            return []

        started = time.perf_counter()  # noqa: REP001 - host wall timing, not simulated time
        keys: list[str] = []
        unique: dict[str, Job] = {}
        for job in jobs:
            key = job.key()
            keys.append(key)
            unique.setdefault(key, job)
        stats.unique = len(unique)

        results: dict[str, RunMetrics] = {}
        if self.cache is not None:
            for key, job in unique.items():
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    self._emit("cache_hit", key=key, job=job.describe())
            stats.cache_hits = len(results)

        pending = {k: j for k, j in unique.items() if k not in results}
        if self.cache is not None:
            self.cache.record_usage(
                hits=stats.cache_hits, misses=len(pending)
            )
        self._emit(
            "batch_start",
            jobs=len(jobs),
            unique=stats.unique,
            pending=len(pending),
            cache_hits=stats.cache_hits,
            workers=self.jobs,
        )
        failures: dict[str, JobFailure] = {}
        self._tick(stats, failures)
        pending_count = len(pending)  # _run_pool consumes the dict
        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(pending, results, failures, stats)
            else:
                self._run_pool(pending, results, failures, stats)

        stats.failed = len(failures)
        self.total_stats.add(stats)
        wall = time.perf_counter() - started  # noqa: REP001 - host wall timing, not simulated time
        workers = min(self.jobs, pending_count) if pending_count else 1
        self._emit(
            "batch_end",
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            retried=stats.retried,
            failed=stats.failed,
            wall_s=round(wall, 6),
            busy_s=round(self.busy_seconds, 6),
            workers=workers,
            pool_utilization=round(
                self.busy_seconds / (wall * workers), 4
            ) if wall > 0 else 0.0,
        )
        if self.progress is not None:
            self.progress.finish()
        if failures:
            ordered = [failures[k] for k in unique if k in failures]
            raise RunnerError(
                f"{len(failures)} of {stats.unique} job(s) failed "
                f"({stats.executed} completed, {stats.cache_hits} cached):",
                failures=tuple(f.render() for f in ordered),
            )
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        """Forward one event to the attached log, if any."""
        if self.events is not None:
            self.events.emit(event, **fields)

    def _tick(self, stats: RunnerStats, failures: dict) -> None:
        """Refresh the progress line, if enabled."""
        if self.progress is None:
            return
        failed = len(failures)
        self.progress.update(
            stats.cache_hits + stats.executed + failed,
            stats.unique,
            cached=stats.cache_hits,
            failed=failed,
            retried=stats.retried,
        )

    def _record(
        self,
        key: str,
        metrics: RunMetrics,
        results: dict[str, RunMetrics],
        stats: RunnerStats,
    ) -> None:
        stats.executed += 1
        results[key] = metrics
        if self.cache is not None:
            self.cache.put(key, metrics)

    def _run_serial(
        self,
        pending: dict[str, Job],
        results: dict[str, RunMetrics],
        failures: dict[str, JobFailure],
        stats: RunnerStats,
    ) -> None:
        """In-process path: observers work, no pickling, same semantics."""
        for key, job in pending.items():
            attempts = 0
            while True:
                attempts += 1
                self._emit(
                    "job_start", key=key, job=job.describe(),
                    attempt=attempts,
                )
                start = time.perf_counter()  # noqa: REP001 - host wall timing, not simulated time
                try:
                    metrics = job.execute()
                except ReproError as exc:
                    failures[key] = JobFailure(
                        job, attempts, f"{type(exc).__name__}: {exc}"
                    )
                    self._emit(
                        "job_error", key=key, attempt=attempts,
                        error=f"{type(exc).__name__}: {exc}", fatal=True,
                    )
                    break
                except Exception as exc:  # unexpected: retry, then surface
                    if attempts > self.retries:
                        failures[key] = JobFailure(
                            job, attempts, f"{type(exc).__name__}: {exc}"
                        )
                        self._emit(
                            "job_error", key=key, attempt=attempts,
                            error=f"{type(exc).__name__}: {exc}", fatal=True,
                        )
                        break
                    stats.retried += 1
                    self._emit(
                        "job_retry", key=key, attempt=attempts,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    wall = time.perf_counter() - start  # noqa: REP001 - host wall timing, not simulated time
                    self.busy_seconds += wall
                    self._record(key, metrics, results, stats)
                    self._emit(
                        "job_finish", key=key, attempt=attempts,
                        wall_s=round(wall, 6),
                        truncated=metrics.truncated,
                    )
                    break
            self._tick(stats, failures)

    def _run_pool(
        self,
        pending: dict[str, Job],
        results: dict[str, RunMetrics],
        failures: dict[str, JobFailure],
        stats: RunnerStats,
    ) -> None:
        """Fan out over a process pool, rebuilding it after crashes.

        A dead worker breaks the whole executor and every outstanding
        future raises ``BrokenProcessPool``; each affected job loses one
        attempt and the pool is rebuilt for the survivors, so one crashy
        job cannot sink the batch but cannot loop forever either.
        """
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        attempts: dict[str, int] = {key: 0 for key in pending}
        while pending:
            round_jobs = dict(pending)
            crashed: list[str] = []
            # Per-round: a crash in round N must be reported with round
            # N's diagnostics, not a stale exception text from round N-1.
            crash_errors: dict[str, str] = {}
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(round_jobs))
            ) as pool:
                futures = {}
                for key, job in round_jobs.items():
                    attempts[key] += 1
                    self._emit(
                        "job_start", key=key, job=job.describe(),
                        attempt=attempts[key],
                    )
                    futures[pool.submit(_pool_execute, job)] = key
                for future in as_completed(futures):
                    key = futures[future]
                    try:
                        metrics, wall = future.result()
                    except BrokenProcessPool:
                        crashed.append(key)
                    except ReproError as exc:
                        failures[key] = JobFailure(
                            round_jobs[key], attempts[key],
                            f"{type(exc).__name__}: {exc}",
                        )
                        self._emit(
                            "job_error", key=key, attempt=attempts[key],
                            error=f"{type(exc).__name__}: {exc}", fatal=True,
                        )
                        del pending[key]
                    except Exception as exc:  # worker died or pickling broke
                        crashed.append(key)
                        crash_errors[key] = f"{type(exc).__name__}: {exc}"
                    else:
                        self.busy_seconds += wall
                        self._record(key, metrics, results, stats)
                        self._emit(
                            "job_finish", key=key, attempt=attempts[key],
                            wall_s=round(wall, 6),
                            truncated=metrics.truncated,
                        )
                        del pending[key]
                    self._tick(stats, failures)
            for key in crashed:
                error = crash_errors.get(
                    key, "worker crashed (process pool broken)"
                )
                if attempts[key] > self.retries:
                    failures[key] = JobFailure(
                        round_jobs[key], attempts[key], error,
                    )
                    self._emit(
                        "job_error", key=key, attempt=attempts[key],
                        error=error, fatal=True,
                    )
                    del pending[key]
                else:
                    stats.retried += 1
                    self._emit(
                        "job_retry", key=key, attempt=attempts[key],
                        error=error,
                    )
            if crashed:
                self._tick(stats, failures)
