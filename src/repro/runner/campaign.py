"""Distributed, resumable sweep campaigns over a shared artifact store.

A *campaign* is a sweep (Section IV config labels x benchmarks x seeds,
or any list of :class:`~repro.runner.Job`\\ s) persisted on disk so that
independent worker processes — on one machine or many sharing a
filesystem — can execute it cooperatively, die, and resume without ever
re-simulating a completed unit.  Four on-disk pieces, all under one
campaign directory:

``manifest.json``
    The immutable work list, written once by :meth:`CampaignManifest.create`:
    one *work unit* per unique :meth:`Job.key` (content-addressed — the
    key covers config, kernel, seed, scale, cycle budget and code
    digest), with enough serialized job state to rebuild the ``Job`` in
    any process.  Keys are frozen at creation; workers refuse to run if
    the package's code digest has drifted since (results would land
    under different keys and the campaign could never converge).

``claims/<key>.claim``
    The mutual-exclusion protocol.  A worker claims a unit by creating
    its claim file with ``O_CREAT | O_EXCL`` — exactly one concurrent
    creator wins.  Claim files carry the worker name and pid, and their
    mtime is the heartbeat: a claim older than ``stale_after`` seconds
    is presumed dead and may be taken over (rename to a tombstone — only
    one renamer wins — then a fresh ``O_EXCL`` create).

``ledger.jsonl``
    The append-only completion ledger: one ``O_APPEND`` record per unit
    outcome (``done`` / ``failed``, worker, wall seconds).  The ledger
    is the campaign's *history*; the authoritative "is this unit done?"
    signal is the shared :class:`~repro.runner.ResultCache` itself — an
    entry under the unit's frozen key *is* the result, so a worker
    killed between ``cache.put`` and its ledger append loses nothing.

``events/<worker>.jsonl``
    One :class:`~repro.runner.EventLog` per worker (job/batch lifecycle,
    wall times, pool utilization), merged by :func:`campaign_status`.

Workers (:class:`CampaignWorker`) loop: scan the manifest for units that
are neither completed nor claimed, claim up to ``jobs`` of them, execute
the batch through a :class:`~repro.runner.BatchRunner` (process-pool
fan-out, bounded retry, shared-cache writes), append ledger records and
release the claims.  With ``wait=True`` a worker that finds nothing
claimable but sees unfinished units (another worker holds them) polls
until the campaign settles, so every worker exits with the campaign
complete — and any of them can export the merged results.

Determinism: results are gathered in manifest order from the shared
store, so a campaign executed by eight racing workers exports byte-
identical CSV/JSON to the same sweep run serially.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import signal
import threading
import time
from collections.abc import Callable, Collection
from pathlib import Path
from typing import Any

from repro.core.metrics import RunMetrics
from repro.errors import RunnerError, UsageError
from repro.runner.cache import ResultCache, _append_jsonl, _read_jsonl
from repro.runner.events import EventLog
from repro.runner.job import Job, code_version
from repro.runner.pool import DEFAULT_RETRIES, BatchRunner
from repro.sim.config import config_from_dict

#: Bumped when the manifest layout changes.
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"
LEDGER_NAME = "ledger.jsonl"
CLAIMS_DIR = "claims"
EVENTS_DIR = "events"
#: Default shared store location inside the campaign directory.
STORE_DIR = "store"

#: Seconds without a heartbeat before a claim may be taken over.
DEFAULT_STALE_AFTER = 600.0

#: Seconds between polls while waiting on units claimed by other workers.
DEFAULT_POLL = 0.5


def _campaign_dir(directory: str | Path) -> Path:
    return Path(directory).expanduser()


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One claimable unit: a job plus its frozen content key."""

    key: str
    job: Job

    def to_payload(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kernel": self.job.kernel_name,
            "seed": self.job.seed,
            "iteration_scale": self.job.iteration_scale,
            "max_cycles": self.job.max_cycles,
            "config": dataclasses.asdict(self.job.config),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "WorkUnit":
        try:
            job = Job(
                config_from_dict(payload["config"]),
                payload["kernel"],
                seed=payload["seed"],
                iteration_scale=payload["iteration_scale"],
                max_cycles=payload["max_cycles"],
            )
            key = payload["key"]
        except (KeyError, TypeError) as exc:
            raise UsageError(f"malformed manifest work unit: {exc}") from exc
        if not isinstance(key, str) or not key:
            raise UsageError("malformed manifest work unit: missing key")
        return cls(key=key, job=job)


class CampaignManifest:
    """The persistent work list of one campaign."""

    def __init__(
        self, directory: Path, units: tuple[WorkUnit, ...], code: str
    ) -> None:
        self.directory = directory
        self.units = units
        #: ``code_version()`` at manifest creation (keys are frozen to it).
        self.code = code

    @staticmethod
    def path_for(directory: str | Path) -> Path:
        return _campaign_dir(directory) / MANIFEST_NAME

    @classmethod
    def create(
        cls, directory: str | Path, jobs: list[Job] | tuple[Job, ...]
    ) -> "CampaignManifest":
        """Write a new manifest from ``jobs`` (deduplicated by key).

        Refuses to overwrite an existing manifest — a campaign's work
        list is immutable; resume instead of re-creating.
        """
        if not jobs:
            raise UsageError("a campaign needs at least one job")
        base = _campaign_dir(directory)
        path = cls.path_for(base)
        if path.exists():
            raise UsageError(
                f"campaign manifest already exists at {path}; "
                "use resume (or a fresh directory)"
            )
        units: list[WorkUnit] = []
        seen: set[str] = set()
        for job in jobs:
            key = job.key()
            if key not in seen:
                seen.add(key)
                units.append(WorkUnit(key=key, job=job))
        manifest = cls(base, tuple(units), code_version())
        base.mkdir(parents=True, exist_ok=True)
        (base / CLAIMS_DIR).mkdir(exist_ok=True)
        (base / EVENTS_DIR).mkdir(exist_ok=True)
        payload = {
            "schema": MANIFEST_SCHEMA,
            "code": manifest.code,
            "units": [unit.to_payload() for unit in manifest.units],
        }
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        try:
            # link (not rename): fails with EEXIST if another creator
            # won the race, so exactly one manifest ever lands.
            os.link(tmp, path)
        except FileExistsError:
            raise UsageError(
                f"campaign manifest already exists at {path}; "
                "use resume (or a fresh directory)"
            ) from None
        finally:
            tmp.unlink(missing_ok=True)
        return manifest

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignManifest":
        base = _campaign_dir(directory)
        path = cls.path_for(base)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise UsageError(
                f"no campaign manifest at {path}; create one with "
                "`repro campaign run`"
            ) from None
        except (OSError, ValueError) as exc:
            raise UsageError(f"unreadable campaign manifest {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
            raise UsageError(
                f"campaign manifest {path} has unsupported schema "
                f"{payload.get('schema') if isinstance(payload, dict) else '?'!r}"
            )
        units = tuple(
            WorkUnit.from_payload(raw) for raw in payload.get("units", [])
        )
        if not units:
            raise UsageError(f"campaign manifest {path} lists no work units")
        code = payload.get("code", "")
        return cls(base, units, code if isinstance(code, str) else "")

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        return [unit.key for unit in self.units]

    def check_code_drift(self) -> None:
        """Refuse to execute against drifted simulator code.

        Unit keys were frozen at creation; if the package digest has
        changed since, fresh executions would land under *different*
        keys and the campaign could never converge.  Status/results
        remain readable — only execution is gated.
        """
        current = code_version()
        if self.code and self.code != current:
            raise UsageError(
                "simulator code changed since this campaign was created "
                f"(manifest digest {self.code}, current {current}); "
                "finish it with the original code or start a new campaign"
            )


# ----------------------------------------------------------------------
# claim files
# ----------------------------------------------------------------------

def _claim_path(directory: str | Path, key: str) -> Path:
    return _campaign_dir(directory) / CLAIMS_DIR / f"{key}.claim"


def try_claim(
    directory: str | Path,
    key: str,
    worker: str,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> bool:
    """Attempt to claim ``key``; True iff this worker now holds it.

    ``O_CREAT | O_EXCL`` guarantees a single winner among concurrent
    claimers.  An existing claim whose mtime (heartbeat) is older than
    ``stale_after`` seconds is taken over: rename it to a pid-suffixed
    tombstone (the filesystem arbitrates — exactly one renamer
    succeeds), delete the tombstone, then race a fresh ``O_EXCL``
    create like everyone else.
    """
    path = _claim_path(directory, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(
        {"worker": worker, "pid": os.getpid(), "ts": round(time.time(), 3)},  # noqa: REP001 - claim bookkeeping, not simulated time
        separators=(",", ":"),
    ).encode("utf-8")
    for attempt in range(2):
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            if attempt:
                return False
            try:
                age = time.time() - path.stat().st_mtime  # noqa: REP001 - claim bookkeeping, not simulated time
            except OSError:
                continue  # claim vanished: retry the O_EXCL create
            if age <= stale_after:
                return False
            tombstone = path.with_name(f"{path.name}.stale{os.getpid()}")
            try:
                os.rename(path, tombstone)
            except OSError:
                return False  # another taker won the rename
            try:
                tombstone.unlink()
            except OSError:
                pass
            continue  # stale claim cleared: retry the O_EXCL create
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True
    return False


def release_claim(directory: str | Path, key: str) -> None:
    try:
        _claim_path(directory, key).unlink()
    except OSError:
        pass


def heartbeat_claims(directory: str | Path, keys: list[str]) -> None:
    """Refresh the heartbeat (mtime) of every held claim in ``keys``."""
    for key in keys:
        try:
            os.utime(_claim_path(directory, key))
        except OSError:
            pass


def read_claims(directory: str | Path) -> dict[str, dict[str, Any]]:
    """Current claim files: key -> {worker, pid, ts, age_s}."""
    claims_dir = _campaign_dir(directory) / CLAIMS_DIR
    out: dict[str, dict[str, Any]] = {}
    if not claims_dir.is_dir():
        return out
    for path in sorted(claims_dir.glob("*.claim")):
        info: dict[str, Any] = {}
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(raw, dict):
                info.update(raw)
        except (OSError, ValueError):
            pass
        try:
            info["age_s"] = round(time.time() - path.stat().st_mtime, 3)  # noqa: REP001 - claim bookkeeping, not simulated time
        except OSError:
            continue  # released between glob and stat
        out[path.name[: -len(".claim")]] = info
    return out


# ----------------------------------------------------------------------
# ledger
# ----------------------------------------------------------------------

def append_ledger(
    directory: str | Path, key: str, status: str, worker: str, **fields: Any
) -> None:
    """Append one completion record (single O_APPEND write)."""
    record: dict[str, Any] = {
        "key": key,
        "status": status,
        "worker": worker,
        "ts": round(time.time(), 3),  # noqa: REP001 - ledger bookkeeping, not simulated time
    }
    record.update(fields)
    try:
        _append_jsonl(_campaign_dir(directory) / LEDGER_NAME, record)
    except OSError:
        pass  # the ledger is history; the cache entry is the result


def read_ledger(directory: str | Path) -> list[dict[str, Any]]:
    return _read_jsonl(_campaign_dir(directory) / LEDGER_NAME)


def _failed_keys(directory: str | Path) -> set[str]:
    """Keys whose *latest* ledger record is a failure."""
    latest: dict[str, str] = {}
    for record in read_ledger(directory):
        key = record.get("key")
        status = record.get("status")
        if isinstance(key, str) and isinstance(status, str):
            latest[key] = status
    return {key for key, status in latest.items() if status == "failed"}


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------

def manifest_protection(
    directory: str | Path,
) -> Callable[[], Collection[str]]:
    """Eviction guard: the campaign's frozen work-unit keys.

    Store entry presence is the campaign's done-authority, so a
    size-bounded shared store must never LRU-evict an entry the ledger
    already counts as done — that would silently flip a completed unit
    back to pending.  The returned callable plugs into
    :class:`~repro.runner.ResultCache` ``protect_keys``; it resolves
    lazily (the store is often built before the manifest exists) and
    memoizes once loaded (the manifest is immutable after creation).
    """
    base = _campaign_dir(directory)
    cached: set[str] | None = None

    def protected() -> Collection[str]:
        nonlocal cached
        if cached is None:
            try:
                cached = set(CampaignManifest.load(base).keys())
            except UsageError:
                return ()  # no manifest yet: nothing to protect
        return cached

    return protected


def default_store(
    directory: str | Path,
    max_bytes: int | None = None,
    cache_dir: str | Path | None = None,
) -> ResultCache:
    """The campaign's shared artifact store (``<dir>/store``).

    ``cache_dir`` overrides the location (the CLI's ``--cache-dir``);
    either way the store's eviction is guarded by
    :func:`manifest_protection`, so completed units survive any
    ``max_bytes`` bound.
    """
    return ResultCache(
        Path(cache_dir).expanduser() if cache_dir
        else _campaign_dir(directory) / STORE_DIR,
        max_bytes=max_bytes,
        protect_keys=manifest_protection(directory),
    )


def _safe_worker_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name) or f"worker-{os.getpid()}"


@dataclasses.dataclass
class WorkerReport:
    """What one :meth:`CampaignWorker.run` invocation did."""

    executed: int = 0
    skipped_done: int = 0
    failed: int = 0
    rounds: int = 0


class CampaignWorker:
    """One cooperating executor of a persisted campaign."""

    def __init__(
        self,
        directory: str | Path,
        worker: str | None = None,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        stale_after: float = DEFAULT_STALE_AFTER,
        poll: float = DEFAULT_POLL,
        retries: int = DEFAULT_RETRIES,
        retry_failed: bool = False,
    ) -> None:
        self.directory = _campaign_dir(directory)
        self.manifest = CampaignManifest.load(self.directory)
        self.manifest.check_code_drift()
        self.worker = _safe_worker_name(worker or f"worker-{os.getpid()}")
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache if cache is not None else default_store(self.directory)
        self.stale_after = stale_after
        self.poll = poll
        self.retries = retries
        #: Retry units whose latest ledger record is a failure (fresh
        #: invocations only — within one run a failed unit stays failed).
        self.retry_failed = retry_failed
        events_dir = self.directory / EVENTS_DIR
        events_dir.mkdir(parents=True, exist_ok=True)
        self.events = EventLog(events_dir / f"{self.worker}.jsonl")
        #: Claim files this worker currently holds (released on any exit
        #: path, including SIGINT/SIGTERM, so interrupted work is handed
        #: back immediately instead of after ``stale_after``).
        self._held: set[str] = set()

    # ------------------------------------------------------------------
    def _claim_round(self, skip: set[str]) -> list[WorkUnit]:
        """Claim up to ``self.jobs`` unclaimed, incomplete units."""
        claimed: list[WorkUnit] = []
        for unit in self.manifest.units:
            if len(claimed) >= self.jobs:
                break
            if unit.key in skip or self.cache.contains(unit.key):
                continue
            if try_claim(
                self.directory, unit.key, self.worker, self.stale_after
            ):
                self._held.add(unit.key)
                # The claim raced the completion check: someone may have
                # finished the unit between our contains() and the claim.
                if self.cache.contains(unit.key):
                    self._release(unit.key)
                    continue
                claimed.append(unit)
        return claimed

    def _release(self, key: str) -> None:
        release_claim(self.directory, key)
        self._held.discard(key)

    def _release_held(self) -> None:
        """Hand every held claim back (interrupt/exit path)."""
        for key in sorted(self._held):
            release_claim(self.directory, key)
        self._held.clear()

    def _heartbeat_interval(self) -> float:
        """Refresh well inside ``stale_after`` but never busy-spin."""
        return min(max(self.stale_after / 4.0, 0.05), 30.0)

    def _run_claimed(
        self, claimed: list[WorkUnit], report: WorkerReport
    ) -> set[str]:
        """Execute claimed units as one batch; returns failed keys.

        Heartbeats run from a background thread for the whole batch
        duration: a single simulation longer than ``stale_after`` must
        not let the claim go stale mid-flight (another worker would take
        it over and duplicate the work).
        """
        keys = [unit.key for unit in claimed]
        heartbeat_claims(self.directory, keys)
        runner = BatchRunner(
            jobs=min(self.jobs, len(claimed)),
            cache=self.cache,
            retries=self.retries,
            events=self.events,
        )
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(self._heartbeat_interval()):
                heartbeat_claims(self.directory, keys)

        beater = threading.Thread(
            target=_beat, name=f"heartbeat-{self.worker}", daemon=True
        )
        beater.start()
        error_text = ""
        try:
            runner.run([unit.job for unit in claimed])
        except RunnerError as exc:
            error_text = str(exc)
        finally:
            stop.set()
            beater.join()
        failed: set[str] = set()
        for unit in claimed:
            if self.cache.contains(unit.key):
                report.executed += 1
                append_ledger(
                    self.directory, unit.key, "done", self.worker,
                    job=unit.job.describe(),
                )
            else:
                failed.add(unit.key)
                report.failed += 1
                append_ledger(
                    self.directory, unit.key, "failed", self.worker,
                    job=unit.job.describe(),
                    error=error_text.splitlines()[0] if error_text else "",
                )
            self._release(unit.key)
        return failed

    def run(self, wait: bool = True) -> WorkerReport:
        """Work the campaign until it settles (or nothing is claimable).

        With ``wait=True`` (default) the worker keeps polling while
        other workers hold claims on unfinished units — dead workers'
        claims go stale and get taken over — so returning means every
        unit is either done or failed.  With ``wait=False`` the worker
        returns as soon as it finds nothing to claim.

        Any exit — normal return, exception, SIGINT, SIGTERM — releases
        every claim this worker still holds, so an interrupted worker
        hands its units back immediately instead of leaving them locked
        until ``stale_after`` expires.  (A SIGKILL cannot be caught; the
        stale-takeover path remains the backstop for that.)
        """
        report = WorkerReport()
        previous_term: Any = None
        installed_term = False
        if threading.current_thread() is threading.main_thread():
            # SIGTERM default-kills without unwinding; converting it to
            # SystemExit lets the finally below release held claims.
            def _terminate(signum: int, frame: Any) -> None:
                raise SystemExit(128 + signum)  # noqa: REP003 - signal exit, not a library failure

            previous_term = signal.signal(signal.SIGTERM, _terminate)
            installed_term = True
        try:
            skip: set[str] = (
                set() if self.retry_failed else _failed_keys(self.directory)
            )
            self.events.emit(
                "campaign_worker_start", worker=self.worker,
                units=len(self.manifest.units), jobs=self.jobs,
            )
            while True:
                report.rounds += 1
                claimed = self._claim_round(skip)
                if claimed:
                    skip |= self._run_claimed(claimed, report)
                    continue
                if not self.retry_failed:
                    # Units another worker failed while we waited are
                    # resolved too — without this refresh we would poll
                    # them forever.
                    skip |= _failed_keys(self.directory)
                unresolved = [
                    unit.key for unit in self.manifest.units
                    if unit.key not in skip
                    and not self.cache.contains(unit.key)
                ]
                if not unresolved:
                    break
                if not wait:
                    break
                time.sleep(self.poll)
            report.skipped_done = sum(
                1 for unit in self.manifest.units
                if self.cache.contains(unit.key)
            ) - report.executed
            self.events.emit(
                "campaign_worker_end", worker=self.worker,
                executed=report.executed, failed=report.failed,
                rounds=report.rounds,
            )
            self.events.close()
        finally:
            self._release_held()
            if installed_term:
                signal.signal(signal.SIGTERM, previous_term)
        return report


# ----------------------------------------------------------------------
# status & results
# ----------------------------------------------------------------------

@dataclasses.dataclass
class CampaignStatus:
    """Merged view of a campaign directory."""

    total: int
    done: int
    failed: int
    claimed: int
    pending: int
    #: Per-worker event-log summaries, worker name -> summary dict.
    workers: dict[str, dict[str, Any]]
    claims: dict[str, dict[str, Any]]
    code_drift: bool

    @property
    def complete(self) -> bool:
        return self.done + self.failed >= self.total


def _worker_summaries(directory: Path) -> dict[str, dict[str, Any]]:
    """Fold every per-worker event log into one summary per worker."""
    events_dir = directory / EVENTS_DIR
    out: dict[str, dict[str, Any]] = {}
    if not events_dir.is_dir():
        return out
    for path in sorted(events_dir.glob("*.jsonl")):
        finished = retried = cache_hits = events = 0
        busy = 0.0
        for record in _read_jsonl(path):
            events += 1
            name = record.get("event")
            if name == "job_finish":
                finished += 1
                wall = record.get("wall_s")
                if isinstance(wall, (int, float)):
                    busy += float(wall)
            elif name == "job_retry":
                retried += 1
            elif name == "cache_hit":
                cache_hits += 1
        out[path.stem] = {
            "events": events,
            "finished": finished,
            "retried": retried,
            "cache_hits": cache_hits,
            "busy_s": round(busy, 3),
        }
    return out


def campaign_status(
    directory: str | Path, cache: ResultCache | None = None
) -> CampaignStatus:
    """Fold manifest, store, ledger, claims and event logs into a status."""
    base = _campaign_dir(directory)
    manifest = CampaignManifest.load(base)
    store = cache if cache is not None else default_store(base)
    failed = _failed_keys(base)
    claims = read_claims(base)
    done = claimed = pending = 0
    for unit in manifest.units:
        if store.contains(unit.key):
            done += 1
        elif unit.key in failed:
            continue
        elif unit.key in claims:
            claimed += 1
        else:
            pending += 1
    return CampaignStatus(
        total=len(manifest.units),
        done=done,
        failed=sum(1 for key in failed if not store.contains(key)),
        claimed=claimed,
        pending=pending,
        workers=_worker_summaries(base),
        claims=claims,
        code_drift=bool(manifest.code and manifest.code != code_version()),
    )


def render_status(status: CampaignStatus) -> str:
    """Human-readable campaign status block."""
    lines = [
        f"units: {status.total} total — {status.done} done, "
        f"{status.failed} failed, {status.claimed} claimed, "
        f"{status.pending} pending"
    ]
    if status.complete:
        lines.append("campaign complete" if not status.failed
                     else "campaign complete (with failures)")
    if status.code_drift:
        lines.append(
            "note: simulator code changed since the manifest was created; "
            "execution is locked to the original digest"
        )
    for worker, summary in status.workers.items():
        lines.append(
            f"  worker {worker}: {summary['finished']} finished, "
            f"{summary['cache_hits']} cache hits, "
            f"{summary['retried']} retried, busy {summary['busy_s']}s"
        )
    for key, claim in status.claims.items():
        holder = claim.get("worker", "?")
        lines.append(
            f"  claim {key[:12]}…: held by {holder} "
            f"(age {claim.get('age_s', '?')}s)"
        )
    return "\n".join(lines)


def campaign_results(
    directory: str | Path, cache: ResultCache | None = None
) -> list[RunMetrics]:
    """Completed metrics in manifest order (the export contract).

    Raises :class:`~repro.errors.RunnerError` while any unit is missing
    from the store — partial exports would silently change meaning.
    """
    base = _campaign_dir(directory)
    manifest = CampaignManifest.load(base)
    store = cache if cache is not None else default_store(base)
    results: list[RunMetrics] = []
    missing: list[str] = []
    for unit in manifest.units:
        metrics = store.get(unit.key)
        if metrics is None:
            missing.append(unit.job.describe())
        else:
            results.append(metrics)
    if missing:
        raise RunnerError(
            f"campaign incomplete: {len(missing)} of "
            f"{len(manifest.units)} unit(s) have no stored result:",
            failures=tuple(f"  {name}" for name in missing),
        )
    return results
