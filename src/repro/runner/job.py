"""The unit of batch execution: one simulation as a pure, picklable value.

A :class:`Job` captures everything that determines a simulation's outcome
— the frozen :class:`~repro.sim.config.GPUConfig`, the suite benchmark
name, the seed, the iteration scale and the cycle budget — and nothing
else, so it can cross a process boundary and serve as a cache key.
Kernels are referenced *by name* (closures inside
:class:`~repro.workloads.program.KernelProgram` do not pickle); the worker
rebuilds the kernel from the suite spec, which is deterministic.

:func:`Job.key` is a stable content hash over the config's dataclass
fields, the run parameters and :func:`code_version` (a digest of the
package's own sources), so results cached on disk are invalidated by any
change to either the experiment or the simulator.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path

from repro.core.metrics import RunMetrics, run_kernel
from repro.errors import UsageError
from repro.sim.config import GPUConfig
from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.workloads.suite import get_benchmark


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``.py`` source in the repro package.

    Part of every job key: a simulator change silently invalidates all
    cached results instead of serving metrics computed by old code.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class Job:
    """One ``run_kernel`` invocation as a value."""

    config: GPUConfig
    kernel_name: str
    seed: int = 1
    iteration_scale: float = 1.0
    max_cycles: int = DEFAULT_MAX_CYCLES

    def __post_init__(self) -> None:
        if not self.kernel_name or not isinstance(self.kernel_name, str):
            raise UsageError("Job.kernel_name must be a suite benchmark name")
        if self.max_cycles < 1:
            raise UsageError("Job.max_cycles must be >= 1")
        if self.iteration_scale <= 0:
            raise UsageError("Job.iteration_scale must be > 0")

    def key(self) -> str:
        """Stable content hash identifying this job's result."""
        payload = json.dumps(
            {
                "config": dataclasses.asdict(self.config),
                "kernel": self.kernel_name,
                "seed": self.seed,
                "iteration_scale": self.iteration_scale,
                "max_cycles": self.max_cycles,
                "code": code_version(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """One-line human identification for logs and error summaries."""
        parts = [f"seed={self.seed}"]
        if self.iteration_scale != 1.0:
            parts.append(f"scale={self.iteration_scale}")
        if self.config.magic_memory:
            parts.append(f"magic_latency={self.config.magic_latency}")
        return f"{self.kernel_name}({', '.join(parts)})"

    def execute(self) -> RunMetrics:
        """Run the simulation in the current process."""
        kernel = get_benchmark(self.kernel_name, self.iteration_scale)
        return run_kernel(
            self.config, kernel, seed=self.seed, max_cycles=self.max_cycles
        )
