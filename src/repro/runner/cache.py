"""Content-addressed on-disk cache of completed job results.

One pickle file per :meth:`repro.runner.Job.key` under
``~/.cache/repro/`` (overridable with the ``REPRO_CACHE_DIR`` environment
variable or an explicit directory).  The key already encodes the full
config, the run parameters and the package's code digest, so lookups are
exact: a hit is byte-for-byte the metrics a fresh run would produce, and
any config or code change misses cleanly.

Entries that fail to unpickle (interrupted writes, stale formats) are
deleted and treated as misses; writes go through a temp file + rename so
concurrent runners never observe a torn entry.

The cache also keeps advisory lifetime hit/miss counters in a small
``_usage.json`` sidecar (surfaced by ``repro cache info``).  The counters
are best-effort bookkeeping only — a corrupt or missing sidecar never
affects correctness, and :meth:`ResultCache.clear` resets it.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from repro.core.metrics import RunMetrics

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped when the on-disk payload layout changes.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """Maps job keys to pickled :class:`~repro.core.metrics.RunMetrics`."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (
            Path(directory).expanduser() if directory else default_cache_dir()
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, key: str) -> RunMetrics | None:
        """Return the cached metrics for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT
            or not isinstance(payload.get("metrics"), RunMetrics)
        ):
            self._discard(path)
            return None
        return payload["metrics"]

    def put(self, key: str, metrics: RunMetrics) -> None:
        """Store ``metrics`` under ``key`` (atomic replace)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(
                {"format": CACHE_FORMAT, "key": key, "metrics": metrics},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        tmp.replace(path)

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Cache entry files, sorted for deterministic iteration."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry (and the usage sidecar); returns entries removed."""
        removed = 0
        for path in self.entries():
            if self._discard(path):
                removed += 1
        self._discard(self._usage_path())
        return removed

    # ------------------------------------------------------------------
    def _usage_path(self) -> Path:
        return self.directory / "_usage.json"

    def record_usage(self, hits: int = 0, misses: int = 0) -> None:
        """Fold a batch's lookup outcome into the lifetime counters.

        Advisory only: any I/O or parse failure is swallowed, because the
        sidecar must never be able to fail an actual campaign.
        """
        usage = self.usage_stats()
        usage["hits"] += hits
        usage["misses"] += misses
        usage["batches"] += 1
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._usage_path()
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(usage), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass

    def usage_stats(self) -> dict[str, int]:
        """Lifetime lookup counters: ``hits``, ``misses``, ``batches``."""
        usage = {"hits": 0, "misses": 0, "batches": 0}
        try:
            raw = json.loads(self._usage_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return usage
        for key in usage:
            value = raw.get(key) if isinstance(raw, dict) else None
            if isinstance(value, int) and value >= 0:
                usage[key] = value
        return usage

    def stats(self) -> tuple[int, int]:
        """(entry count, total bytes) of the cache directory."""
        total = 0
        entries = self.entries()
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return len(entries), total

    @staticmethod
    def _discard(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False
