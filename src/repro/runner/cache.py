"""Content-addressed on-disk cache of completed job results.

One pickle file per :meth:`repro.runner.Job.key` under
``~/.cache/repro/`` (overridable with the ``REPRO_CACHE_DIR`` environment
variable or an explicit directory).  The key already encodes the full
config, the run parameters and the package's code digest, so lookups are
exact: a hit is byte-for-byte the metrics a fresh run would produce, and
any config or code change misses cleanly.

The cache is safe to share between concurrent worker processes — it is
the artifact store distributed campaigns (:mod:`repro.runner.campaign`)
are built on:

* Entry writes go through a temp file + atomic rename, so readers never
  observe a torn entry; entries that still fail to unpickle (stale
  formats, partial disk writes) are deleted and treated as misses.
* A process that dies between write and rename leaves a ``*.tmp<pid>``
  orphan behind.  :meth:`ResultCache.stats` counts such orphans and
  :meth:`ResultCache.clear` sweeps them.
* Usage counters (``hits`` / ``misses`` / ``batches``) are recorded as
  per-batch *delta* records appended with ``O_APPEND`` to a
  ``_usage_deltas.jsonl`` sidecar — a single appended line per batch, so
  concurrent runners never lose each other's read-modify-write the way a
  shared ``_usage.json`` rewrite would.  :meth:`usage_stats` folds the
  deltas (plus a legacy ``_usage.json`` base, if present).  The counters
  stay advisory: a corrupt or missing sidecar never affects correctness,
  and :meth:`ResultCache.clear` resets them.
* Every :meth:`put` appends a record to an ``_index.jsonl`` sidecar
  (key, payload size, store timestamp); :meth:`index` folds it against
  the directory.  With ``max_bytes`` set the store is size-bounded:
  :meth:`put` evicts least-recently-used entries (file mtime — refreshed
  on every :meth:`get` hit) until the store fits, never evicting the
  entry just written.
* Campaigns treat *store entry presence* as the done-authority (see
  :mod:`repro.runner.campaign`), so eviction must never silently undo a
  completed unit: ``protect_keys`` names keys (directly or through a
  callable, e.g. a campaign-manifest loader) that :meth:`evict` always
  skips, keeping the size bound and the done-authority invariant
  compatible.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from collections.abc import Callable, Collection, Iterable
from pathlib import Path
from typing import Any, NamedTuple

from repro.core.metrics import RunMetrics

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped when the on-disk payload layout changes.
CACHE_FORMAT = 1

#: Sidecar files (never counted as cache entries).
USAGE_NAME = "_usage.json"
USAGE_DELTAS_NAME = "_usage_deltas.jsonl"
INDEX_NAME = "_index.jsonl"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class CacheStats(NamedTuple):
    """What :meth:`ResultCache.stats` sees on disk."""

    entries: int
    total_bytes: int
    #: ``*.tmp<pid>`` files orphaned by a process that died mid-write.
    orphans: int


def _append_jsonl(path: Path, record: dict) -> None:
    """Append one JSON line with a single ``O_APPEND`` write.

    POSIX guarantees the append offset per write; emitting the whole line
    in one short write keeps concurrent appenders from interleaving, so
    this is the multi-process-safe primitive every sidecar uses.
    """
    data = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def _read_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL sidecar, skipping torn or corrupt lines."""
    records: list[dict] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn final line from a killed writer
        if isinstance(record, dict):
            records.append(record)
    return records


class ResultCache:
    """Maps job keys to pickled :class:`~repro.core.metrics.RunMetrics`.

    ``max_bytes`` (optional) size-bounds the store: every :meth:`put`
    evicts least-recently-used entries until the total fits.
    ``protect_keys`` (a collection of keys, or a zero-argument callable
    returning one) names entries :meth:`evict` must never delete — the
    campaign layer passes its manifest keys so a size-bounded shared
    store cannot evict results a live campaign's ledger already counts
    as done.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
        protect_keys: Collection[str] | Callable[[], Collection[str]] | None = None,
    ) -> None:
        self.directory = (
            Path(directory).expanduser() if directory else default_cache_dir()
        )
        self.max_bytes = max_bytes
        self.protect_keys = protect_keys

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, key: str) -> RunMetrics | None:
        """Return the cached metrics for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT
            or not isinstance(payload.get("metrics"), RunMetrics)
        ):
            self._discard(path)
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return payload["metrics"]

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no unpickle check)."""
        return self._path(key).is_file()

    def put(self, key: str, metrics: RunMetrics) -> None:
        """Store ``metrics`` under ``key`` (atomic replace)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(
                {"format": CACHE_FORMAT, "key": key, "metrics": metrics},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        size = tmp.stat().st_size
        tmp.replace(path)
        try:
            _append_jsonl(
                self.directory / INDEX_NAME,
                {"key": key, "bytes": size, "ts": round(time.time(), 3)},  # noqa: REP001 - store bookkeeping, not simulated time
            )
        except OSError:
            pass  # the index is advisory; the entry itself landed
        if self.max_bytes is not None:
            self.evict(self.max_bytes, protect=key)

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Cache entry files, sorted for deterministic iteration."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.pkl"))

    def orphan_temps(self) -> list[Path]:
        """``*.tmp<pid>`` files left by processes killed mid-write."""
        if not self.directory.is_dir():
            return []
        return sorted(
            path for path in self.directory.glob("*.tmp*")
            if not path.name.endswith(".pkl")
        )

    def clear(self) -> int:
        """Delete every entry, orphaned temp file and usage/index sidecar.

        Returns the number of *entries* removed (orphans and sidecars are
        swept but not counted, matching what ``cache info`` reports).
        """
        removed = 0
        for path in self.entries():
            if self._discard(path):
                removed += 1
        for path in self.orphan_temps():
            self._discard(path)
        for name in (USAGE_NAME, USAGE_DELTAS_NAME, INDEX_NAME):
            self._discard(self.directory / name)
        return removed

    def index(self) -> dict[str, dict[str, Any]]:
        """Fold ``_index.jsonl`` against the directory: key -> metadata.

        Keys whose entry file has vanished (evicted, cleared, discarded
        as corrupt) are dropped; the newest record per key wins.
        """
        folded: dict[str, dict[str, Any]] = {}
        for record in _read_jsonl(self.directory / INDEX_NAME):
            key = record.get("key")
            if isinstance(key, str):
                folded[key] = {
                    "bytes": record.get("bytes"), "ts": record.get("ts")
                }
        return {
            key: meta for key, meta in folded.items()
            if self.contains(key)
        }

    def evict(
        self, max_bytes: int, protect: str | Iterable[str] | None = None
    ) -> list[str]:
        """Delete least-recently-used entries until the store fits.

        Recency is the entry file's mtime (refreshed by :meth:`get`
        hits).  ``protect`` names keys never evicted — :meth:`put`
        passes the key it just wrote, so a single oversized entry is
        stored rather than thrashed — and the instance-level
        ``protect_keys`` (e.g. a campaign's manifest keys) are honoured
        on top: a completed campaign unit stays present, because store
        presence is the campaign's done-authority.  Returns the evicted
        keys.
        """
        protected: set[str] = set()
        if isinstance(protect, str):
            protected.add(protect)
        elif protect is not None:
            protected.update(protect)
        protected.update(self._protected_keys())
        aged: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            aged.append((stat.st_mtime, stat.st_size, path))
        evicted: list[str] = []
        aged.sort(key=lambda item: (item[0], item[2].name))
        for mtime, size, path in aged:
            if total <= max_bytes:
                break
            key = path.name[: -len(".pkl")]
            if key in protected:
                continue
            if self._discard(path):
                total -= size
                evicted.append(key)
        return evicted

    def _protected_keys(self) -> Collection[str]:
        """Resolve ``protect_keys`` (callable or plain collection)."""
        if self.protect_keys is None:
            return ()
        if callable(self.protect_keys):
            return self.protect_keys()
        return self.protect_keys

    # ------------------------------------------------------------------
    def record_usage(self, hits: int = 0, misses: int = 0) -> None:
        """Append one batch's lookup outcome as a delta record.

        ``O_APPEND`` of a single line per batch means concurrent runners
        finishing batches at the same moment each land their own delta —
        no read-modify-write window to lose counts in.  Advisory only:
        any I/O failure is swallowed, because the sidecar must never be
        able to fail an actual campaign.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _append_jsonl(
                self.directory / USAGE_DELTAS_NAME,
                {"hits": hits, "misses": misses, "batches": 1},
            )
        except OSError:
            pass

    def usage_stats(self) -> dict[str, int]:
        """Lifetime lookup counters: ``hits``, ``misses``, ``batches``.

        Folds the delta sidecar on top of a legacy ``_usage.json`` base
        (caches written before deltas existed keep their history).
        """
        usage = {"hits": 0, "misses": 0, "batches": 0}
        try:
            raw = json.loads(
                (self.directory / USAGE_NAME).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            raw = None
        if isinstance(raw, dict):
            for key in usage:
                value = raw.get(key)
                if isinstance(value, int) and value >= 0:
                    usage[key] = value
        for delta in _read_jsonl(self.directory / USAGE_DELTAS_NAME):
            for key in usage:
                value = delta.get(key)
                if isinstance(value, int) and value >= 0:
                    usage[key] += value
        return usage

    def stats(self) -> CacheStats:
        """Entry count, total entry bytes, and orphaned temp files."""
        total = 0
        entries = self.entries()
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(len(entries), total, len(self.orphan_temps()))

    @staticmethod
    def _discard(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False
