"""Batch execution: parallel fan-out of simulations with an on-disk cache.

Every headline experiment of the paper — the Figure 1 latency sweep, the
Section III congestion study, the Table I design-space exploration — is an
embarrassingly parallel batch of independent :func:`repro.core.metrics.run_kernel`
invocations.  This package turns each invocation into a pure, picklable
:class:`Job`, fans batches out over a ``multiprocessing`` pool
(:class:`BatchRunner`), and memoizes completed jobs in a content-addressed
on-disk cache (:class:`ResultCache`) so repeated report iterations are
nearly free.

Three guarantees the drivers rely on:

* **Determinism.** Results are merged back by job key in submission
  order, never by completion order, so ``jobs=N`` output is byte-identical
  to ``jobs=1``.
* **Fidelity.** ``jobs=1`` executes in-process through the exact same
  code path as before, so opt-in observers (sanitizer, telemetry) keep
  working; the pool path is reserved for plain measurement runs.
* **Loud failure.** Worker crashes are retried a bounded number of
  times; whatever still fails surfaces as one
  :class:`repro.errors.RunnerError` summary instead of a half-finished
  report (completed results are already cached and survive the error).

Campaign observability is opt-in: an :class:`EventLog` appends one JSON
line per runner event (submit/start/finish with per-job wall time, cache
hit, retry, batch summaries with pool utilization) and a
:class:`ProgressLine` tickers long ``--jobs N`` sweeps on stderr; the
cache additionally keeps advisory hit/miss statistics readable through
``repro cache info``.

Sweeps too big for one process become *campaigns*
(:mod:`repro.runner.campaign`): a persistent manifest of content-
addressed work units that independent worker processes claim via atomic
claim files, execute through their own :class:`BatchRunner` into one
shared :class:`ResultCache`, and record in an append-only completion
ledger — killed campaigns resume from exactly what is done, and results
export byte-identically to a serial run.  ``repro campaign
run|status|resume`` is the CLI surface.
"""

from repro.runner.job import Job, code_version
from repro.runner.cache import CacheStats, ResultCache, default_cache_dir
from repro.runner.events import EventLog, ProgressLine
from repro.runner.pool import DEFAULT_RETRIES, BatchRunner, JobFailure, RunnerStats
from repro.runner.campaign import (
    CampaignManifest,
    CampaignStatus,
    CampaignWorker,
    WorkUnit,
    WorkerReport,
    campaign_results,
    campaign_status,
    render_status,
)

__all__ = [
    "Job",
    "code_version",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "BatchRunner",
    "EventLog",
    "JobFailure",
    "ProgressLine",
    "RunnerStats",
    "DEFAULT_RETRIES",
    "CampaignManifest",
    "CampaignStatus",
    "CampaignWorker",
    "WorkUnit",
    "WorkerReport",
    "campaign_results",
    "campaign_status",
    "render_status",
]
