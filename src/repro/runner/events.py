"""Structured campaign observability: JSONL event log + progress line.

:class:`EventLog` appends one JSON object per line to a file as a
campaign executes — job submission, start, finish (with per-job wall
time), cache hits, retries, failures, and batch-level summaries with
pool-utilization figures.  The log is append-only and flushed per event,
so a killed campaign leaves a complete record of everything that
happened before the kill; re-running appends a fresh batch to the same
file.  Event timestamps carry both a monotonic offset from log creation
(``t``, for intra-campaign intervals) and a wall-clock epoch (``ts``,
for correlating with the outside world).

:class:`ProgressLine` is the opt-in one-line ticker for ``--jobs N``
sweeps: it rewrites a single stderr line as jobs complete, so report
output on stdout stays byte-identical with or without it.

Both are strictly additive: a :class:`~repro.runner.pool.BatchRunner`
without them executes exactly the code it always did.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO


class EventLog:
    """Append-only JSONL event sink for runner campaigns.

    Parameters
    ----------
    path:
        File to append events to; parent directories are created.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path).expanduser()
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._t0 = time.monotonic()  # noqa: REP001 - host wall timing, not simulated time
        #: Events written through this log instance.
        self.events_written = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event record (flushed immediately)."""
        record: dict[str, Any] = {
            "t": round(time.monotonic() - self._t0, 6),  # noqa: REP001 - host wall timing, not simulated time
            "ts": round(time.time(), 3),  # noqa: REP001 - host wall timing, not simulated time
            "event": event,
        }
        record.update(fields)
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Close the underlying file (further emits would fail)."""
        self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ProgressLine:
    """Single rewritten stderr line tracking a batch's completion.

    The carriage-return rewrite trick only makes sense on a terminal;
    when the stream is not a tty (stderr redirected to a file, a CI log,
    a pipe) updates are emitted as plain newline-terminated lines
    instead, so logs never fill with ``\\r``-garbage.  ``tty`` overrides
    the autodetection (useful for tests).

    Plain (non-tty) mode is *throttled*: a large sweep completes
    thousands of jobs, and one log line per completion floods CI logs.
    A plain update is emitted only when it is the first, reaches the
    final count, reports a new failure, advances completion past the
    next ``percent_step`` boundary, or arrives at least
    ``min_interval`` seconds after the previous emitted line.  Tty
    rewrites are untouched — a terminal line costs nothing to redraw.
    """

    #: Minimum seconds between time-triggered plain-mode lines.
    DEFAULT_MIN_INTERVAL = 5.0

    #: Completion-percent granularity of plain-mode lines.
    DEFAULT_PERCENT_STEP = 10.0

    def __init__(
        self,
        stream: TextIO | None = None,
        tty: bool | None = None,
        min_interval: float = DEFAULT_MIN_INTERVAL,
        percent_step: float = DEFAULT_PERCENT_STEP,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if tty is None:
            try:
                tty = self._stream.isatty()
            except (AttributeError, ValueError, OSError):
                tty = False
        self._tty = tty
        self._width = 0
        self._active = False
        self._min_interval = max(0.0, min_interval)
        self._percent_step = max(0.0, percent_step)
        self._last_emit: float | None = None
        self._last_percent = 0.0
        self._last_failed = 0

    def _should_emit_plain(self, done: int, total: int, failed: int) -> bool:
        """Throttle decision for one non-tty update."""
        now = time.monotonic()  # noqa: REP001 - host log pacing, not simulated time
        percent = (100.0 * done / total) if total > 0 else 100.0
        emit = (
            self._last_emit is None
            or done >= total
            or failed != self._last_failed
            or percent - self._last_percent >= self._percent_step
            or now - self._last_emit >= self._min_interval
        )
        if emit:
            self._last_emit = now
            self._last_percent = percent
            self._last_failed = failed
        return emit

    def update(
        self,
        done: int,
        total: int,
        *,
        cached: int = 0,
        failed: int = 0,
        retried: int = 0,
    ) -> None:
        """Rewrite (tty) or append (non-tty, throttled) the counts."""
        if not self._tty and not self._should_emit_plain(done, total, failed):
            return
        parts = [f"{cached} cached"]
        if retried:
            parts.append(f"{retried} retried")
        if failed:
            parts.append(f"{failed} failed")
        line = f"[{done}/{total}] jobs done ({', '.join(parts)})"
        if self._tty:
            padding = " " * max(0, self._width - len(line))
            self._stream.write(f"\r{line}{padding}")
            self._active = True
        else:
            self._stream.write(f"{line}\n")
        self._stream.flush()
        self._width = len(line)

    def finish(self) -> None:
        """Terminate the rewritten line so later output starts cleanly."""
        if self._active:
            self._stream.write("\n")
            self._stream.flush()
            self._active = False
