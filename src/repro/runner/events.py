"""Structured campaign observability: JSONL event log + progress line.

:class:`EventLog` appends one JSON object per line to a file as a
campaign executes — job submission, start, finish (with per-job wall
time), cache hits, retries, failures, and batch-level summaries with
pool-utilization figures.  The log is append-only and flushed per event,
so a killed campaign leaves a complete record of everything that
happened before the kill; re-running appends a fresh batch to the same
file.  Event timestamps carry both a monotonic offset from log creation
(``t``, for intra-campaign intervals) and a wall-clock epoch (``ts``,
for correlating with the outside world).

:class:`ProgressLine` is the opt-in one-line ticker for ``--jobs N``
sweeps: it rewrites a single stderr line as jobs complete, so report
output on stdout stays byte-identical with or without it.

Both are strictly additive: a :class:`~repro.runner.pool.BatchRunner`
without them executes exactly the code it always did.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO


class EventLog:
    """Append-only JSONL event sink for runner campaigns.

    Parameters
    ----------
    path:
        File to append events to; parent directories are created.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path).expanduser()
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._t0 = time.monotonic()  # noqa: REP001 - host wall timing, not simulated time
        #: Events written through this log instance.
        self.events_written = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event record (flushed immediately)."""
        record: dict[str, Any] = {
            "t": round(time.monotonic() - self._t0, 6),  # noqa: REP001 - host wall timing, not simulated time
            "ts": round(time.time(), 3),  # noqa: REP001 - host wall timing, not simulated time
            "event": event,
        }
        record.update(fields)
        json.dump(record, self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Close the underlying file (further emits would fail)."""
        self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ProgressLine:
    """Single rewritten stderr line tracking a batch's completion.

    The carriage-return rewrite trick only makes sense on a terminal;
    when the stream is not a tty (stderr redirected to a file, a CI log,
    a pipe) each update is emitted as a plain newline-terminated line
    instead, so logs never fill with ``\\r``-garbage.  ``tty`` overrides
    the autodetection (useful for tests).
    """

    def __init__(
        self, stream: TextIO | None = None, tty: bool | None = None
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if tty is None:
            try:
                tty = self._stream.isatty()
            except (AttributeError, ValueError, OSError):
                tty = False
        self._tty = tty
        self._width = 0
        self._active = False

    def update(
        self,
        done: int,
        total: int,
        *,
        cached: int = 0,
        failed: int = 0,
        retried: int = 0,
    ) -> None:
        """Rewrite (tty) or append (non-tty) the latest counts."""
        parts = [f"{cached} cached"]
        if retried:
            parts.append(f"{retried} retried")
        if failed:
            parts.append(f"{failed} failed")
        line = f"[{done}/{total}] jobs done ({', '.join(parts)})"
        if self._tty:
            padding = " " * max(0, self._width - len(line))
            self._stream.write(f"\r{line}{padding}")
            self._active = True
        else:
            self._stream.write(f"{line}\n")
        self._stream.flush()
        self._width = len(line)

    def finish(self) -> None:
        """Terminate the rewritten line so later output starts cleanly."""
        if self._active:
            self._stream.write("\n")
            self._stream.flush()
            self._active = False
