"""Exception hierarchy for the repro package.

All exceptions raised deliberately by the simulator derive from
:class:`ReproError` so callers can catch simulator-specific failures with a
single ``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architectural configuration is inconsistent or out of range.

    Raised during config validation (e.g. a cache whose line size does not
    divide its capacity, a queue with non-positive depth, or a scaling
    request for an unknown design parameter).
    """


class SimulationError(ReproError):
    """The simulator reached an invalid dynamic state.

    Raised for protocol violations that indicate a bug rather than a
    modelled condition: popping an empty queue, filling a line with no
    matching MSHR entry, or exceeding the run's cycle limit.
    """


class CycleLimitExceeded(SimulationError):
    """A simulation failed to finish within its ``max_cycles`` budget."""

    def __init__(self, max_cycles: int, detail: str = "") -> None:
        message = f"simulation exceeded the cycle limit of {max_cycles}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.max_cycles = max_cycles


class WorkloadError(ReproError):
    """A workload description is malformed or references unknown entities."""


class UsageError(ReproError, ValueError):
    """An API was called with an invalid argument.

    Derives from :class:`ValueError` as well so call sites that guard with
    ``except ValueError`` keep working, while ``except ReproError`` still
    catches every deliberate failure of the package.
    """


class RunnerError(ReproError):
    """One or more jobs of a batch run failed after bounded retry.

    Raised by :class:`repro.runner.BatchRunner` once a whole batch has been
    attempted, so a single flaky or mis-configured job surfaces as one
    summary instead of a half-finished report.  ``failures`` carries one
    pre-rendered line per failed job; successful results are already in
    the on-disk cache, so a rerun only repeats the failed jobs.
    """

    def __init__(self, message: str, failures: tuple[str, ...] = ()) -> None:
        self.failures = tuple(failures)
        if self.failures:
            message = "\n".join([message, *self.failures])
        super().__init__(message)


class SanitizerError(SimulationError):
    """An invariant checked by :class:`repro.analysis.Sanitizer` was violated.

    Carries a structured diagnostic snapshot — the violated invariant, the
    cycle, the in-flight requests involved and the occupancy of every
    queue — and renders all of it into the exception message so a bare
    traceback is already actionable.
    """

    #: Cap on requests rendered into the message (the full tuple is kept).
    MAX_DUMPED_REQUESTS = 16

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        cycle: int | None = None,
        requests: tuple = (),
        queue_occupancies: tuple[tuple[str, int, int], ...] = (),
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.requests = tuple(requests)
        #: ``(queue name, occupancy, capacity)`` triples at violation time.
        self.queue_occupancies = tuple(queue_occupancies)
        super().__init__(self._render(message))

    def _render(self, message: str) -> str:
        lines = [message]
        if self.invariant:
            lines[0] = f"[{self.invariant}] {message}"
        if self.cycle is not None:
            lines[0] += f" (cycle {self.cycle})"
        if self.requests:
            shown = self.requests[: self.MAX_DUMPED_REQUESTS]
            lines.append(f"in-flight requests ({len(self.requests)} total):")
            lines.extend(f"  {request!r}" for request in shown)
            if len(self.requests) > len(shown):
                lines.append(f"  ... and {len(self.requests) - len(shown)} more")
        occupied = [
            (name, occ, cap) for name, occ, cap in self.queue_occupancies if occ
        ]
        if occupied:
            lines.append("queue occupancies (non-empty only):")
            lines.extend(
                f"  {name}: {occ}/{cap}" for name, occ, cap in occupied
            )
        return "\n".join(lines)
