"""Exception hierarchy for the repro package.

All exceptions raised deliberately by the simulator derive from
:class:`ReproError` so callers can catch simulator-specific failures with a
single ``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architectural configuration is inconsistent or out of range.

    Raised during config validation (e.g. a cache whose line size does not
    divide its capacity, a queue with non-positive depth, or a scaling
    request for an unknown design parameter).
    """


class SimulationError(ReproError):
    """The simulator reached an invalid dynamic state.

    Raised for protocol violations that indicate a bug rather than a
    modelled condition: popping an empty queue, filling a line with no
    matching MSHR entry, or exceeding the run's cycle limit.
    """


class CycleLimitExceeded(SimulationError):
    """A simulation failed to finish within its ``max_cycles`` budget."""

    def __init__(self, max_cycles: int, detail: str = "") -> None:
        message = f"simulation exceeded the cycle limit of {max_cycles}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.max_cycles = max_cycles


class WorkloadError(ReproError):
    """A workload description is malformed or references unknown entities."""
