"""SIMT cores: warps, warp schedulers, and streaming multiprocessors."""

from repro.cores.warp import Warp, WarpState
from repro.cores.scheduler import GTOScheduler, LRRScheduler, make_warp_scheduler
from repro.cores.sm import SM
from repro.cores.coalescer import Coalescer, CoalescingStats, coalesce

__all__ = [
    "Warp",
    "WarpState",
    "GTOScheduler",
    "LRRScheduler",
    "make_warp_scheduler",
    "SM",
    "Coalescer",
    "CoalescingStats",
    "coalesce",
]
