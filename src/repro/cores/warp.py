"""Warp state machine.

A warp executes a *program*: an iterator of instruction tuples produced by
the workload layer (:mod:`repro.workloads.program`).  The instruction set
is deliberately tiny — the paper's characterization depends only on the
interleaving of computation and memory transactions:

``("compute", n)``
    ``n`` single-cycle arithmetic instructions (they occupy ``n`` issue
    slots, which is how computation hides memory latency).
``("load", [line, ...])``
    One load instruction whose coalescer output is the given list of
    line-sized transactions.  The warp blocks when its number of
    incomplete load instructions reaches its MLP limit.
``("store", [line, ...])``
    One store instruction; stores are fire-and-forget (write-through L1).
``("membar",)``
    Blocks the warp until all its outstanding loads have completed.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import WorkloadError

Instruction = tuple

VALID_OPS = ("compute", "load", "store", "membar")


class WarpState(enum.Enum):
    READY = "ready"
    #: Blocked on memory (MLP limit or membar).
    BLOCKED = "blocked"
    #: Program exhausted and all loads returned.
    RETIRED = "retired"


@dataclass(slots=True)
class LoadInstr:
    """Tracks completion of one load instruction's transactions."""

    warp_id: int
    remaining: int


class Warp:
    """One warp's dynamic execution state."""

    __slots__ = (
        "warp_id",
        "_program",
        "mlp_limit",
        "state",
        "remaining_compute",
        "pending_instr",
        "outstanding_loads",
        "at_membar",
        "program_done",
        "instructions",
    )

    def __init__(
        self, warp_id: int, program: Iterator[Instruction], mlp_limit: int
    ) -> None:
        if mlp_limit < 1:
            raise WorkloadError("warp MLP limit must be >= 1")
        self.warp_id = warp_id
        self._program = program
        self.mlp_limit = mlp_limit
        self.state = WarpState.READY
        #: Single-cycle arithmetic instructions left in the current block.
        self.remaining_compute = 0
        #: Instruction fetched but not yet issued (structural stall).
        self.pending_instr: Instruction | None = None
        #: Incomplete load instructions.
        self.outstanding_loads = 0
        self.at_membar = False
        self.program_done = False
        #: Instructions issued by this warp (for per-warp statistics).
        self.instructions = 0

    # ------------------------------------------------------------------
    def fetch(self) -> Instruction | None:
        """Next instruction to issue, or None when the program is done.

        A previously fetched-but-stalled instruction is returned again
        until the SM reports it issued.
        """
        if self.pending_instr is not None:
            return self.pending_instr
        if self.program_done:
            return None
        try:
            instr = next(self._program)
        except StopIteration:
            self.program_done = True
            return None
        if not instr or instr[0] not in VALID_OPS:
            raise WorkloadError(f"warp {self.warp_id}: bad instruction {instr!r}")
        self.pending_instr = instr
        return instr

    def consume_pending(self) -> None:
        """Mark the pending instruction as issued."""
        self.pending_instr = None

    # ------------------------------------------------------------------
    @property
    def mlp_saturated(self) -> bool:
        return self.outstanding_loads >= self.mlp_limit

    def should_block(self) -> bool:
        """Whether the warp must leave the ready pool right now."""
        if self.at_membar:
            return self.outstanding_loads > 0
        return self.mlp_saturated

    def can_retire(self) -> bool:
        return (
            self.program_done
            and self.pending_instr is None
            and self.remaining_compute == 0
            and self.outstanding_loads == 0
        )

    def on_load_complete(self) -> None:
        """One load instruction fully returned."""
        self.outstanding_loads -= 1
        if self.outstanding_loads == 0:
            self.at_membar = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Warp({self.warp_id}, {self.state.value}, "
            f"loads={self.outstanding_loads})"
        )
