"""Streaming multiprocessor.

Per cycle the SM:

1. collects completed L1 transactions (hits and fills) and wakes warps
   whose load instructions finished;
2. drains its LD/ST queue into the L1 at up to ``mem_pipeline_width``
   transactions per cycle (Table I "Memory pipeline width"), stopping on
   the first L1 refusal — back-pressure from a congested L1/L2 therefore
   throttles the memory pipeline, the paper's point 3;
3. issues up to ``issue_width`` instructions from ready warps chosen by
   the warp scheduler.

IPC is ``instructions / cycles`` summed over SMs; warps block on their MLP
limit and on membars, so exposed memory latency directly suppresses issue.
"""

from __future__ import annotations

from collections import deque

from repro.cache.l1 import AccessResult, L1DCache
from repro.cores.scheduler import make_warp_scheduler
from repro.cores.warp import LoadInstr, Warp, WarpState
from repro.mem.request import AccessKind, MemoryRequest, RequestFactory
from repro.sim.component import Component
from repro.sim.config import GPUConfig

#: Outcomes of one issue attempt.
_ISSUED = 1
_NO_ISSUE = 0
_MEM_STALL = -1


class SM(Component):
    """One streaming multiprocessor plus its private L1D."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        warp_programs: list,
        mlp_limit: int,
        request_factory: RequestFactory,
    ) -> None:
        self.name = f"sm{sm_id}"
        self.sm_id = sm_id
        self._config = config
        self._factory = request_factory
        self.l1 = L1DCache(f"{self.name}.l1", config, sm_id)
        self.warps = [
            Warp(i, program, mlp_limit) for i, program in enumerate(warp_programs)
        ]
        self.scheduler = make_warp_scheduler(config.core.scheduler)
        limit = config.core.active_warp_limit
        active = self.warps if limit is None else self.warps[:limit]
        #: Warps waiting for an activation slot (TLP throttling).
        self._inactive_warps = deque(
            [] if limit is None else self.warps[limit:])
        for warp in active:
            self.scheduler.add(warp)
        self._ldst_queue: deque[MemoryRequest] = deque()
        self._ldst_capacity = config.core.ldst_queue_depth
        self._issue_width = config.core.issue_width
        self._mem_width = config.core.mem_pipeline_width
        #: rid -> LoadInstr for outstanding load transactions.
        self._txn_tracker: dict[int, LoadInstr] = {}
        self._retired = 0
        # --- statistics ---
        self.instructions = 0
        self.cycles = 0
        #: Cycles the memory pipeline was throttled by an L1 refusal.
        self.mem_pipeline_stall_cycles = 0
        self.stall_cycles_by_cause: dict[AccessResult, int] = {}
        #: Cycles with at least one ready warp but no instruction issued
        #: (structural: LD/ST queue full).
        self.issue_starved_cycles = 0
        #: Cycles with no ready warp at all (everything blocked on memory).
        self.no_ready_warp_cycles = 0
        #: Fast-path flag: all warps retired and all queues drained.
        self._quiesced = False
        #: (request id, L1 resource epoch) of the last stalled transaction;
        #: retried only when the epoch advances.
        self._stalled_rid = -1
        self._stalled_epoch = -1
        self._stalled_cause = None

    # ------------------------------------------------------------------
    # component protocol
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self.cycles += 1
        if self._quiesced:
            return
        self._process_completions(now)
        self._drain_ldst(now)
        self._issue(now)
        if self.done and not self._ldst_queue and self.l1.is_idle():
            self._quiesced = True

    def _process_completions(self, now: int) -> None:
        for request in self.l1.collect_completions(now):
            request.retired = True  # the request's journey ends at its SM
            tracker = self._txn_tracker.pop(request.rid, None)
            if tracker is None:
                continue
            tracker.remaining -= 1
            if tracker.remaining:
                continue
            warp = self.warps[tracker.warp_id]
            warp.on_load_complete()
            if warp.state is WarpState.BLOCKED and not warp.should_block():
                if warp.can_retire():
                    self._retire(warp)
                elif warp.program_done and warp.pending_instr is None:
                    pass  # waiting for remaining loads before retiring
                else:
                    warp.state = WarpState.READY
                    self.scheduler.add(warp)
            elif warp.can_retire():
                self._retire(warp)

    def _drain_ldst(self, now: int) -> None:
        queue = self._ldst_queue
        if not queue:
            return
        head = queue[0]
        if head.rid == self._stalled_rid:
            # The head stalled before; retry only once an L1 resource event
            # (fill, MSHR release, miss-queue pop) could have unblocked it.
            epoch = self.l1.resource_epoch()
            if epoch == self._stalled_epoch:
                self.mem_pipeline_stall_cycles += 1
                cause = self._stalled_cause
                self.stall_cycles_by_cause[cause] = (
                    self.stall_cycles_by_cause.get(cause, 0) + 1
                )
                return
            self._stalled_rid = -1
        sent = 0
        while queue and sent < self._mem_width:
            request = queue[0]
            result = self.l1.try_access(request, now)
            if result.is_stall:
                self.mem_pipeline_stall_cycles += 1
                self.stall_cycles_by_cause[result] = (
                    self.stall_cycles_by_cause.get(result, 0) + 1
                )
                self._stalled_rid = request.rid
                self._stalled_epoch = self.l1.resource_epoch()
                self._stalled_cause = result
                break
            queue.popleft()
            sent += 1

    def _issue(self, now: int) -> None:
        issued = 0
        candidates = self.scheduler.candidates()
        if not candidates:
            self.no_ready_warp_cycles += 1
            return
        mem_blocked = False
        for warp in candidates:
            if issued >= self._issue_width:
                break
            if mem_blocked and warp.remaining_compute == 0:
                pending = warp.pending_instr
                if pending is not None and pending[0] != "compute":
                    # In-order LD/ST dispatch: once one memory instruction
                    # stalled for queue space this cycle, later memory
                    # instructions cannot bypass it.
                    continue
            result = self._issue_one(warp, now)
            if result == _ISSUED:
                issued += 1
                self.scheduler.issued(warp)
            elif result == _MEM_STALL:
                mem_blocked = True
        if issued == 0:
            self.issue_starved_cycles += 1

    def _issue_one(self, warp: Warp, now: int) -> int:
        """Issue one instruction from ``warp``.

        Returns ``_ISSUED``, ``_NO_ISSUE`` (program exhausted) or
        ``_MEM_STALL`` (LD/ST queue lacked space for the transactions).
        """
        if warp.remaining_compute > 0:
            warp.remaining_compute -= 1
            self._count_issue(warp)
            return _ISSUED
        instr = warp.fetch()
        if instr is None:
            self._maybe_retire_exhausted(warp)
            return _NO_ISSUE
        op = instr[0]
        if op == "compute":
            warp.consume_pending()
            warp.remaining_compute = max(0, instr[1] - 1)
            self._count_issue(warp)
            return _ISSUED
        if op == "membar":
            warp.consume_pending()
            self._count_issue(warp)
            if warp.outstanding_loads > 0:
                warp.at_membar = True
                self._block(warp)
            return _ISSUED
        # Memory instruction: needs LD/ST queue space for all transactions.
        lines = instr[1]
        if len(self._ldst_queue) + len(lines) > self._ldst_capacity:
            return _MEM_STALL
        warp.consume_pending()
        self._count_issue(warp)
        if op == "load":
            tracker = LoadInstr(warp_id=warp.warp_id, remaining=len(lines))
            warp.outstanding_loads += 1
            for line in lines:
                request = self._factory.make(
                    AccessKind.LOAD, line, self.sm_id, warp.warp_id, now
                )
                self._txn_tracker[request.rid] = tracker
                self._ldst_queue.append(request)
            if warp.should_block():
                self._block(warp)
        else:  # store
            for line in lines:
                request = self._factory.make(
                    AccessKind.STORE, line, self.sm_id, warp.warp_id, now
                )
                self._ldst_queue.append(request)
        return _ISSUED

    # ------------------------------------------------------------------
    # warp lifecycle helpers
    # ------------------------------------------------------------------
    def _count_issue(self, warp: Warp) -> None:
        self.instructions += 1
        warp.instructions += 1

    def _block(self, warp: Warp) -> None:
        warp.state = WarpState.BLOCKED
        self.scheduler.remove(warp)

    def _maybe_retire_exhausted(self, warp: Warp) -> None:
        if warp.can_retire():
            self._retire(warp)
        else:
            # Program done but loads outstanding: leave the ready pool and
            # retire from _process_completions when the last load returns.
            warp.state = WarpState.BLOCKED
            self.scheduler.remove(warp)

    def _retire(self, warp: Warp) -> None:
        if warp.state is not WarpState.RETIRED:
            warp.state = WarpState.RETIRED
            self.scheduler.remove(warp)
            self._retired += 1
            if self._inactive_warps:
                self.scheduler.add(self._inactive_warps.popleft())

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """All warps retired (their loads necessarily completed)."""
        return self._retired == len(self.warps)

    def is_idle(self) -> bool:
        return self.done and not self._ldst_queue and self.l1.is_idle()

    def finalize(self, now: int) -> None:
        self.l1.finalize(now)

    # ------------------------------------------------------------------
    # sanitizer introspection
    # ------------------------------------------------------------------
    def inspect_queues(self):
        return (self.l1.miss_queue,)

    def inspect_mshrs(self):
        return (self.l1.mshr,)

    def inspect_inflight(self):
        yield from self._ldst_queue
        yield from self.l1.inflight_requests()

    # ------------------------------------------------------------------
    # telemetry sampling
    # ------------------------------------------------------------------
    def sample_queues(self):
        return (("l1_missq", self.l1.miss_queue),)

    def sample_mshrs(self):
        return (("l1_mshr", self.l1.mshr),)

    def sample_counters(self):
        return (
            ("instructions", self.instructions),
            ("mem_pipeline_stall_cycles", self.mem_pipeline_stall_cycles),
            ("l1_misses_issued", self.l1.misses_issued),
        )

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
