"""Streaming multiprocessor.

Per cycle the SM:

1. collects completed L1 transactions (hits and fills) and wakes warps
   whose load instructions finished;
2. drains its LD/ST queue into the L1 at up to ``mem_pipeline_width``
   transactions per cycle (Table I "Memory pipeline width"), stopping on
   the first L1 refusal — back-pressure from a congested L1/L2 therefore
   throttles the memory pipeline, the paper's point 3;
3. issues up to ``issue_width`` instructions from ready warps chosen by
   the warp scheduler.

IPC is ``instructions / cycles`` summed over SMs; warps block on their MLP
limit and on membars, so exposed memory latency directly suppresses issue.
"""

from __future__ import annotations

from collections import deque

from repro.cache.l1 import AccessResult, L1DCache
from repro.cores.scheduler import LRRScheduler, make_warp_scheduler
from repro.cores.warp import LoadInstr, Warp, WarpState
from repro.mem.request import AccessKind, MemoryRequest, RequestFactory
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import GPUConfig

#: Outcomes of one issue attempt.
_ISSUED = 1
_NO_ISSUE = 0
_MEM_STALL = -1


class SM(Component):
    """One streaming multiprocessor plus its private L1D."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        warp_programs: list,
        mlp_limit: int,
        request_factory: RequestFactory,
    ) -> None:
        self.name = f"sm{sm_id}"
        self.sm_id = sm_id
        self._config = config
        self._factory = request_factory
        self.l1 = L1DCache(f"{self.name}.l1", config, sm_id)
        self.warps = [
            Warp(i, program, mlp_limit) for i, program in enumerate(warp_programs)
        ]
        self.scheduler = make_warp_scheduler(config.core.scheduler)
        limit = config.core.active_warp_limit
        active = self.warps if limit is None else self.warps[:limit]
        #: Warps waiting for an activation slot (TLP throttling).
        self._inactive_warps = deque(
            [] if limit is None else self.warps[limit:])
        for warp in active:
            self.scheduler.add(warp)
        self._ldst_queue: deque[MemoryRequest] = deque()
        self._ldst_capacity = config.core.ldst_queue_depth
        self._issue_width = config.core.issue_width
        self._mem_width = config.core.mem_pipeline_width
        # Heap aliases for the completion-readiness test on the per-cycle
        # path (heapq mutates the lists in place, so the aliases stay
        # valid); see step().
        self._hit_heap = self.l1._hit_pipe._heap
        self._fill_heap = self.l1._fill_pipe._heap
        #: Alias of the L1's pending-writeback list (mutated in place), one
        #: attribute hop instead of two on the per-cycle wake checks.
        self._l1_writebacks = self.l1._pending_writebacks
        #: The LRR ready deque (None for other policies): burst batching
        #: (see _burst_horizon) needs the exact issue rotation, which is
        #: only modelled for loose round robin.
        self._lrr_queue = (
            self.scheduler._queue
            if isinstance(self.scheduler, LRRScheduler)
            else None
        )
        #: rid -> LoadInstr for outstanding load transactions.
        self._txn_tracker: dict[int, LoadInstr] = {}
        self._retired = 0
        # --- statistics ---
        self.instructions = 0
        self.cycles = 0
        #: Cycles the memory pipeline was throttled by an L1 refusal.
        self.mem_pipeline_stall_cycles = 0
        self.stall_cycles_by_cause: dict[AccessResult, int] = {}
        #: Cycles that issued at least one instruction.
        self.issue_cycles = 0
        #: Cycles with at least one ready warp but no instruction issued
        #: (structural: LD/ST queue full).
        self.issue_starved_cycles = 0
        #: Cycles with no ready warp at all (everything blocked on memory).
        self.no_ready_warp_cycles = 0
        #: Cycles stepped after the SM quiesced (kernel drained here while
        #: other SMs still run).  Together with the three counters above
        #: this partitions ``cycles`` exactly — the conservation invariant
        #: behind :meth:`inspect_cycle_classes`.
        self.drained_cycles = 0
        #: Fast-path flag: all warps retired and all queues drained.
        self._quiesced = False
        #: (request id, L1 resource epoch) of the last stalled transaction;
        #: retried only when the epoch advances.
        self._stalled_rid = -1
        self._stalled_epoch = -1
        self._stalled_cause = None
        #: True when the last issue pass proved futile: every ready warp
        #: holds a fetched memory instruction that cannot fit in the LD/ST
        #: queue, and nothing issued.  Until an L1 event frees queue space
        #: or wakes a warp, re-running issue is pointless — the SM may
        #: sleep despite having ready warps.
        self._issue_frozen = False
        #: Component-local burst window (see step()): cycles strictly
        #: before ``_skip_until`` are pure round-robin compute issue and
        #: are skipped, then replayed lazily; ``_skipped`` counts how many
        #: are pending replay.  Only armed in fast mode.
        self._fast_mode = False
        self._skip_until = 0
        self._skipped = 0
        #: Post-step horizon memo: True when the last step computed a zero
        #: burst horizon (a front warp must fetch next cycle), letting
        #: next_wake veto without rescanning the ready queue.
        self._fetch_due = False
        #: Fill-heap length when the current window opened; a mismatch
        #: during a skipped cycle means an external fill arrived.
        self._fill_len = 0
        #: All warps retired (their loads necessarily completed).  A plain
        #: attribute maintained by :meth:`_retire`; read every cycle by
        #: ``GPU.done``.
        self.done = self._retired == len(self.warps)

    # ------------------------------------------------------------------
    # component protocol
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        fill_heap = self._fill_heap
        hit_heap = self._hit_heap
        if now < self._skip_until:
            # Inside a local burst window: unless an external event (a fill
            # arriving from the response network) cuts it short, this cycle
            # is deterministic — defer it for batched replay.  Writebacks
            # and the hit pipe only change in our own steps and the window
            # was clamped to their due times when it opened, so the fill
            # heap is the one live wake source; a length change is the
            # only way it gains work while we sleep.
            if len(fill_heap) == self._fill_len:
                self._skipped += 1
                return
            # New fill(s) landed mid-window: shrink the window to their
            # earliest ready time; only a fill due now forces a real step.
            self._fill_len = len(fill_heap)
            head = fill_heap[0][0]
            if head > now:
                if head < self._skip_until:
                    self._skip_until = head
                self._skipped += 1
                return
        if self._skipped:
            # Real step inside/after a window: materialize the deferred
            # cycles first, then close the window (a real step mutates the
            # ready pool, invalidating the horizon it was opened under).
            skipped = self._skipped
            self._skipped = 0
            self._replay(skipped)
        self._skip_until = 0
        self.cycles += 1
        if self._quiesced:
            self.drained_cycles += 1
            return
        if (
            self._l1_writebacks
            or (fill_heap and fill_heap[0][0] <= now)
            or (hit_heap and hit_heap[0][0] <= now)
        ):
            self._process_completions(now)
        if self._ldst_queue:
            self._drain_ldst(now)
        self._issue(now)
        self._fetch_due = False
        if self.done and not self._ldst_queue and self.l1.is_idle():
            self._quiesced = True
        elif (
            self._fast_mode
            and not self._ldst_queue
            and not self._l1_writebacks
        ):
            # Open the next local window: from the post-step state, the
            # next `window` cycles are deterministic regardless of what
            # the rest of the machine does (fill arrivals are checked per
            # skipped cycle above).  Two shapes qualify: a pure compute
            # burst (replayed as round-robin issue), and a fully blocked
            # SM waiting on loads (replayed as no-ready cycles, woken by
            # the fill-heap guard).  The window is clamped to the earliest
            # event already sitting in the completion heaps, so the
            # skip-cycle guard only has to watch for *new* fills.
            until = 0
            if len(self.scheduler):
                if self._lrr_queue is not None:
                    window = self._burst_horizon()
                    if window:
                        until = now + window + 1
                    else:
                        self._fetch_due = True
            elif not self.done:
                until = WAKE_NEVER
            if until:
                if fill_heap:
                    head = fill_heap[0][0]
                    if head < until:
                        until = head
                if hit_heap and hit_heap[0][0] < until:
                    until = hit_heap[0][0]
                self._fill_len = len(fill_heap)
                self._skip_until = until

    def set_fast_mode(self, enabled: bool) -> None:
        super().set_fast_mode(enabled)
        self._fast_mode = enabled

    def next_wake(self, now: int) -> int:
        if self._quiesced:
            return WAKE_NEVER
        burst_wake = WAKE_NEVER
        if len(self.scheduler):
            if not self._issue_frozen:
                if self._fetch_due:
                    return now  # a warp fetches (or starve-counts) this cycle
                until = self._skip_until
                if until > now:
                    # Local window open: its end IS the burst horizon
                    # (fast_forward flushes the deferred cycles before any
                    # global replay, so the two compose).
                    burst_wake = until
                elif self._skipped:
                    return now  # window just expired; flush in a real step
                else:
                    # Every ready warp mid compute burst: issue itself is
                    # deterministic for `window` cycles and replayable by
                    # fast_forward (still subject to the wake sources below).
                    window = self._burst_horizon()
                    if not window:
                        return now
                    burst_wake = now + window
        elif self.done and not self._ldst_queue and self.l1.is_idle():
            return now  # let a real step latch _quiesced
        l1 = self.l1
        if self._ldst_queue:
            head = self._ldst_queue[0]
            if head.rid != self._stalled_rid or (
                l1.fills_installed + l1.mshr.releases + l1.miss_queue.pops
            ) != self._stalled_epoch:
                return now  # fresh head, or a resource event cleared the stall
        if self._l1_writebacks:
            return now
        wake = burst_wake
        if self._fill_heap and self._fill_heap[0][0] < wake:
            wake = self._fill_heap[0][0]
        if self._hit_heap and self._hit_heap[0][0] < wake:
            wake = self._hit_heap[0][0]
        return wake if wake > now else now

    def fast_forward(self, cycles: int) -> None:
        # A global jump granted while a local window is open: the deferred
        # local cycles come first (they precede the jumped window), then
        # the jump itself — both replay on the live queue in order.
        if self._skipped:
            skipped = self._skipped
            self._skipped = 0
            self._skip_until = 0
            self._replay(skipped)
        self._replay(cycles)

    def _replay(self, cycles: int) -> None:
        # Replays exactly what the skipped steps would have counted: the
        # jump only happens with no ready warp (or a frozen issue stage),
        # with the LD/ST head (if any) stalled on an unchanged L1 resource
        # epoch, or through a compute-burst horizon.
        self.cycles += cycles
        if self._quiesced:
            self.drained_cycles += cycles
            return
        if self._ldst_queue:
            self.mem_pipeline_stall_cycles += cycles
            cause = self._stalled_cause
            self.stall_cycles_by_cause[cause] = (
                self.stall_cycles_by_cause.get(cause, 0) + cycles
            )
        if len(self.scheduler):
            if self._issue_frozen:
                # Frozen issue stage: ready warps exist but none can issue
                # (_issue would count a starved cycle, not no-ready).
                self.issue_starved_cycles += cycles
            else:
                # Jump granted through a compute-burst horizon: replay the
                # round-robin issue the skipped cycles would have done.
                # Every cycle inside the horizon issues >= 1 instruction.
                self.issue_cycles += cycles
                self._replay_burst(cycles)
        else:
            self.no_ready_warp_cycles += cycles

    def _burst_horizon(self) -> int:
        """Cycles over which issue is a pure, replayable compute burst.

        Non-zero only when every ready warp is mid compute burst
        (``remaining_compute > 0``) under the LRR scheduler: then each
        cycle issues ``min(issue_width, ready)`` compute instructions
        round-robin with no other state change, so the whole window can
        be replayed arithmetically by :meth:`_replay_burst`.  The window
        ends strictly before any warp would need to fetch.  Returns 0
        when the next cycle must step normally.  (Assumes the SM ticks on
        the core clock, as :class:`repro.gpu.GPU` registers it.)
        """
        queue = self._lrr_queue
        if queue is None:
            return 0
        width = self._issue_width
        k = len(queue)
        if k <= width:
            # Every ready warp issues once per cycle; the window ends when
            # the shortest burst empties (its next issue would fetch).
            best = WAKE_NEVER
            for warp in queue:
                remaining = warp.remaining_compute
                if remaining <= 0:
                    return 0
                if remaining < best:
                    best = remaining
            return best
        # width issues per cycle rotate through the k ready warps, so the
        # warp at queue position p receives global issue indices
        # p, p + k, p + 2k, ...; its first post-burst issue (the fetch)
        # lands at index p + remaining * k, i.e. cycle (p + r*k) // width.
        # A warp already at remaining == 0 just bounds the window to the
        # cycle of its next turn (p // width) — it issues nothing before.
        best = WAKE_NEVER
        p = 0
        for warp in queue:
            t = (p + warp.remaining_compute * k) // width
            if t < best:
                if not t:
                    return 0
                best = t
            p += 1
        return best

    def _replay_burst(self, cycles: int) -> None:
        """Apply ``cycles`` skipped cycles of round-robin compute issue.

        Exact counterpart of what :meth:`_issue`'s compute fast path would
        have done cycle by cycle (valid for any window within
        :meth:`_burst_horizon`): per-warp issue counts, instruction
        counters and the LRR rotation.
        """
        queue = self._lrr_queue
        width = self._issue_width
        k = len(queue)
        if k <= width:
            for warp in queue:
                warp.remaining_compute -= cycles
                warp.instructions += cycles
            self.instructions += k * cycles
            return
        issues = width * cycles
        base, extra = divmod(issues, k)
        p = 0
        for warp in queue:
            count = base + 1 if p < extra else base
            if count:
                warp.remaining_compute -= count
                warp.instructions += count
            p += 1
        self.instructions += issues
        if extra:
            queue.rotate(-extra)

    def _process_completions(self, now: int) -> None:
        for request in self.l1.collect_completions(now):
            request.retired = True  # the request's journey ends at its SM
            tracker = self._txn_tracker.pop(request.rid, None)
            if tracker is None:
                continue
            tracker.remaining -= 1
            if tracker.remaining:
                continue
            warp = self.warps[tracker.warp_id]
            warp.on_load_complete()
            if warp.state is WarpState.BLOCKED and not warp.should_block():
                if warp.can_retire():
                    self._retire(warp)
                elif warp.program_done and warp.pending_instr is None:
                    pass  # waiting for remaining loads before retiring
                else:
                    warp.state = WarpState.READY
                    self.scheduler.add(warp)
            elif warp.can_retire():
                self._retire(warp)

    def _drain_ldst(self, now: int) -> None:
        queue = self._ldst_queue
        if not queue:
            return
        head = queue[0]
        l1 = self.l1
        if head.rid == self._stalled_rid:
            # The head stalled before; retry only once an L1 resource event
            # (fill, MSHR release, miss-queue pop) could have unblocked it.
            # (Inlined l1.resource_epoch(): per-cycle path.)
            epoch = l1.fills_installed + l1.mshr.releases + l1.miss_queue.pops
            if epoch == self._stalled_epoch:
                self.mem_pipeline_stall_cycles += 1
                cause = self._stalled_cause
                self.stall_cycles_by_cause[cause] = (
                    self.stall_cycles_by_cause.get(cause, 0) + 1
                )
                return
            self._stalled_rid = -1
        sent = 0
        while queue and sent < self._mem_width:
            request = queue[0]
            result = l1.try_access(request, now)
            if result.is_stall:
                self.mem_pipeline_stall_cycles += 1
                self.stall_cycles_by_cause[result] = (
                    self.stall_cycles_by_cause.get(result, 0) + 1
                )
                self._stalled_rid = request.rid
                self._stalled_epoch = (
                    l1.fills_installed + l1.mshr.releases + l1.miss_queue.pops
                )
                self._stalled_cause = result
                break
            queue.popleft()
            sent += 1

    def _issue(self, now: int) -> None:
        issued = 0
        width = self._issue_width
        queue = self._lrr_queue
        if queue is not None:
            # LRR fast path: drain compute bursts straight off the ready
            # rotation without snapshotting it (``issued()`` for the head
            # warp is exactly a rotate).  Falls back to the general loop
            # for fetches, with the already-issued warps — now rotated to
            # the back — sliced off the snapshot so every warp is still
            # visited at most once per cycle.
            qlen = len(queue)
            if not qlen:
                self.no_ready_warp_cycles += 1
                return
            limit = width if width <= qlen else qlen
            while issued < limit:
                warp = queue[0]
                remaining = warp.remaining_compute
                if remaining <= 0:
                    break
                warp.remaining_compute = remaining - 1
                self.instructions += 1
                warp.instructions += 1
                issued += 1
                queue.rotate(-1)
            if issued >= limit:
                self._issue_frozen = False
                self.issue_cycles += 1
                return
            candidates = list(queue)
            if issued:
                del candidates[qlen - issued:]
        else:
            candidates = self.scheduler.candidates()
            if not candidates:
                self.no_ready_warp_cycles += 1
                return
        scheduler = self.scheduler
        mem_blocked = False
        churned = False
        for warp in candidates:
            if issued >= width:
                break
            remaining = warp.remaining_compute
            if remaining > 0:
                # Fast path for the common case (draining a compute burst);
                # equivalent to _issue_one's compute branch.
                warp.remaining_compute = remaining - 1
                self.instructions += 1
                warp.instructions += 1
                issued += 1
                scheduler.issued(warp)
                continue
            if mem_blocked:
                pending = warp.pending_instr
                if pending is not None and pending[0] != "compute":
                    # In-order LD/ST dispatch: once one memory instruction
                    # stalled for queue space this cycle, later memory
                    # instructions cannot bypass it.
                    continue
            result = self._issue_one(warp, now)
            if result == _ISSUED:
                issued += 1
                scheduler.issued(warp)
            elif result == _MEM_STALL:
                mem_blocked = True
            else:
                # _NO_ISSUE: the warp left the ready pool and a throttled
                # warp may have activated in its place — the pool changed,
                # so this cycle cannot prove the next one futile.
                churned = True
        if issued == 0:
            self.issue_starved_cycles += 1
            # A pass that stalled on LD/ST space, issued nothing and left
            # the ready pool untouched will repeat verbatim every cycle
            # until an L1 resource event; next_wake may sleep through it.
            self._issue_frozen = mem_blocked and not churned
        else:
            self._issue_frozen = False
            self.issue_cycles += 1

    def _issue_one(self, warp: Warp, now: int) -> int:
        """Issue one instruction from ``warp``.

        Returns ``_ISSUED``, ``_NO_ISSUE`` (program exhausted) or
        ``_MEM_STALL`` (LD/ST queue lacked space for the transactions).
        """
        if warp.remaining_compute > 0:
            warp.remaining_compute -= 1
            self._count_issue(warp)
            return _ISSUED
        instr = warp.fetch()
        if instr is None:
            self._maybe_retire_exhausted(warp)
            return _NO_ISSUE
        op = instr[0]
        if op == "compute":
            warp.consume_pending()
            warp.remaining_compute = max(0, instr[1] - 1)
            self._count_issue(warp)
            return _ISSUED
        if op == "membar":
            warp.consume_pending()
            self._count_issue(warp)
            if warp.outstanding_loads > 0:
                warp.at_membar = True
                self._block(warp)
            return _ISSUED
        # Memory instruction: needs LD/ST queue space for all transactions.
        lines = instr[1]
        if len(self._ldst_queue) + len(lines) > self._ldst_capacity:
            return _MEM_STALL
        warp.consume_pending()
        self._count_issue(warp)
        if op == "load":
            tracker = LoadInstr(warp_id=warp.warp_id, remaining=len(lines))
            warp.outstanding_loads += 1
            for line in lines:
                request = self._factory.make(
                    AccessKind.LOAD, line, self.sm_id, warp.warp_id, now
                )
                self._txn_tracker[request.rid] = tracker
                self._ldst_queue.append(request)
            if warp.should_block():
                self._block(warp)
        else:  # store
            for line in lines:
                request = self._factory.make(
                    AccessKind.STORE, line, self.sm_id, warp.warp_id, now
                )
                self._ldst_queue.append(request)
        return _ISSUED

    # ------------------------------------------------------------------
    # warp lifecycle helpers
    # ------------------------------------------------------------------
    def _count_issue(self, warp: Warp) -> None:
        self.instructions += 1
        warp.instructions += 1

    def _block(self, warp: Warp) -> None:
        warp.state = WarpState.BLOCKED
        self.scheduler.remove(warp)

    def _maybe_retire_exhausted(self, warp: Warp) -> None:
        if warp.can_retire():
            self._retire(warp)
        else:
            # Program done but loads outstanding: leave the ready pool and
            # retire from _process_completions when the last load returns.
            warp.state = WarpState.BLOCKED
            self.scheduler.remove(warp)

    def _retire(self, warp: Warp) -> None:
        if warp.state is not WarpState.RETIRED:
            warp.state = WarpState.RETIRED
            self.scheduler.remove(warp)
            self._retired += 1
            if self._inactive_warps:
                self.scheduler.add(self._inactive_warps.popleft())
            elif self._retired == len(self.warps):
                self.done = True

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return self.done and not self._ldst_queue and self.l1.is_idle()

    def finalize(self, now: int) -> None:
        if self._skipped:
            # A run truncated mid-window: materialize the deferred cycles
            # so counters match the naive loop at the cut-off.
            skipped = self._skipped
            self._skipped = 0
            self._skip_until = 0
            self._replay(skipped)
        self.l1.finalize(now)

    # ------------------------------------------------------------------
    # sanitizer introspection
    # ------------------------------------------------------------------
    def inspect_queues(self):
        return (self.l1.miss_queue,)

    def inspect_mshrs(self):
        return (self.l1.mshr,)

    def inspect_inflight(self):
        yield from self._ldst_queue
        yield from self.l1.inflight_requests()

    # ------------------------------------------------------------------
    # telemetry sampling
    # ------------------------------------------------------------------
    def sample_queues(self):
        return (("l1_missq", self.l1.miss_queue),)

    def sample_mshrs(self):
        return (("l1_mshr", self.l1.mshr),)

    def sample_counters(self):
        return (
            ("instructions", self.instructions),
            ("mem_pipeline_stall_cycles", self.mem_pipeline_stall_cycles),
            ("l1_misses_issued", self.l1.misses_issued),
        )

    def sample_stalls(self):
        return tuple(
            (cause.value, cycles)
            for cause, cycles in self.stall_cycles_by_cause.items()
        )

    def inspect_cycle_classes(self):
        return {
            "cycles": self.cycles,
            "issue": self.issue_cycles,
            "issue_starved": self.issue_starved_cycles,
            "no_ready_warp": self.no_ready_warp_cycles,
            "drained": self.drained_cycles,
        }

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
