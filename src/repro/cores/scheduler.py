"""Warp schedulers.

Two policies mirror GPGPU-Sim's standard options:

* **LRR** (loose round robin) — ready warps rotate; spreads issue slots
  evenly, which interleaves many warps' working sets (thrash-prone but
  latency-tolerant).
* **GTO** (greedy-then-oldest) — keep issuing the current warp until it
  blocks, then fall back to the oldest ready warp; concentrates locality.

The scheduler only *orders* candidates; the SM remains responsible for
structural checks (LD/ST queue space) and may skip a candidate that cannot
issue this cycle.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.cores.warp import Warp


class WarpScheduler:
    """Maintains the ready pool and yields issue candidates."""

    name = "base"

    def __init__(self) -> None:
        self._ready_set: set[int] = set()

    # -- pool maintenance ------------------------------------------------
    def add(self, warp: Warp) -> None:
        """Insert a warp into the ready pool (idempotent)."""
        if warp.warp_id in self._ready_set:
            return
        self._ready_set.add(warp.warp_id)
        self._insert(warp)

    def remove(self, warp: Warp) -> None:
        """Drop a warp (blocked or retired) from the ready pool."""
        if warp.warp_id not in self._ready_set:
            return
        self._ready_set.discard(warp.warp_id)
        self._evict(warp)

    def contains(self, warp: Warp) -> bool:
        return warp.warp_id in self._ready_set

    def __len__(self) -> int:
        return len(self._ready_set)

    # -- candidate iteration ----------------------------------------------
    def candidates(self) -> list[Warp]:
        """Ready warps in issue-priority order (highest first)."""
        raise NotImplementedError

    def issued(self, warp: Warp) -> None:
        """Notification that ``warp`` issued an instruction this cycle."""

    def _insert(self, warp: Warp) -> None:
        raise NotImplementedError

    def _evict(self, warp: Warp) -> None:
        raise NotImplementedError


class LRRScheduler(WarpScheduler):
    """Loose round robin over the ready pool."""

    name = "lrr"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Warp] = deque()

    def _insert(self, warp: Warp) -> None:
        self._queue.append(warp)

    def _evict(self, warp: Warp) -> None:
        try:
            self._queue.remove(warp)
        except ValueError:  # pragma: no cover - guarded by _ready_set
            pass

    def candidates(self) -> list[Warp]:
        return list(self._queue)

    def issued(self, warp: Warp) -> None:
        # Rotate the issuing warp to the back.
        if self._queue and self._queue[0] is warp:
            self._queue.rotate(-1)
        elif warp.warp_id in self._ready_set:
            try:
                self._queue.remove(warp)
                self._queue.append(warp)
            except ValueError:  # pragma: no cover
                pass


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest."""

    name = "gto"

    def __init__(self) -> None:
        super().__init__()
        self._pool: dict[int, Warp] = {}
        self._current: Warp | None = None

    def _insert(self, warp: Warp) -> None:
        self._pool[warp.warp_id] = warp

    def _evict(self, warp: Warp) -> None:
        self._pool.pop(warp.warp_id, None)
        if self._current is warp:
            self._current = None

    def candidates(self) -> list[Warp]:
        if not self._pool:
            return []
        ordered = sorted(self._pool.values(), key=lambda w: w.warp_id)
        if self._current is not None and self._current.warp_id in self._pool:
            ordered.remove(self._current)
            ordered.insert(0, self._current)
        return ordered

    def issued(self, warp: Warp) -> None:
        self._current = warp


_SCHEDULERS = {"lrr": LRRScheduler, "gto": GTOScheduler}


def make_warp_scheduler(name: str) -> WarpScheduler:
    """Instantiate a warp scheduler by name ("lrr" or "gto")."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ConfigError(f"unknown warp scheduler {name!r}") from None
