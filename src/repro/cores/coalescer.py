"""Memory access coalescing.

Fermi-style coalescing: the 32 lanes of a warp each produce a byte
address; the coalescer merges them into the minimal set of line-sized
transactions.  A fully coalesced access (consecutive 4-byte words) becomes
one transaction; a strided or scattered access becomes up to 32.

The synthetic suite pre-coalesces (its specs state transactions per load
directly), but lane-level workloads — traces replayed from
:mod:`repro.workloads.trace`, or kernels written against
:func:`coalesce` — use this model, and it quantifies the coalescing
degree statistics the characterization reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Lanes per warp on the modelled architecture.
WARP_SIZE = 32


def coalesce(addresses: Iterable[int | None], line_bytes: int) -> list[int]:
    """Merge per-lane byte addresses into line transactions.

    ``None`` entries model inactive lanes (divergence mask).  Returns the
    distinct line indices in first-touch order — the order requests are
    generated, matching hardware that scans the lane mask.
    """
    if line_bytes < 1 or line_bytes & (line_bytes - 1):
        raise ConfigError(f"line size must be a power of two, got {line_bytes}")
    shift = line_bytes.bit_length() - 1
    seen: dict[int, None] = {}
    for address in addresses:
        if address is None:
            continue
        if address < 0:
            raise ConfigError(f"negative address {address}")
        seen.setdefault(address >> shift, None)
    return list(seen)


@dataclass(slots=True)
class CoalescingStats:
    """Aggregate coalescing behaviour over a kernel."""

    #: histogram: transactions-per-access -> count of warp accesses.
    histogram: Counter = field(default_factory=Counter)

    def record(self, n_transactions: int) -> None:
        self.histogram[n_transactions] += 1

    @property
    def accesses(self) -> int:
        return sum(self.histogram.values())

    @property
    def transactions(self) -> int:
        return sum(n * c for n, c in self.histogram.items())

    @property
    def mean_transactions_per_access(self) -> float:
        """1.0 = perfectly coalesced; 32.0 = fully divergent."""
        return self.transactions / self.accesses if self.accesses else 0.0

    @property
    def fully_coalesced_fraction(self) -> float:
        return self.histogram[1] / self.accesses if self.accesses else 0.0


class Coalescer:
    """Stateful helper: coalesce accesses and accumulate statistics."""

    def __init__(self, line_bytes: int) -> None:
        self.line_bytes = line_bytes
        self.stats = CoalescingStats()

    def access(self, addresses: Sequence[int | None]) -> list[int]:
        """Coalesce one warp access and record its degree."""
        if len(addresses) > WARP_SIZE:
            raise ConfigError(
                f"warp access has {len(addresses)} lanes (max {WARP_SIZE})")
        lines = coalesce(addresses, self.line_bytes)
        if lines:
            self.stats.record(len(lines))
        return lines


# ----------------------------------------------------------------------
# common lane-address generators (for writing lane-level kernels)
# ----------------------------------------------------------------------
def unit_stride_lanes(base: int, element_bytes: int = 4) -> list[int]:
    """lane i -> base + i * element_bytes: the fully coalesced pattern."""
    return [base + lane * element_bytes for lane in range(WARP_SIZE)]


def strided_lanes(base: int, stride_bytes: int) -> list[int]:
    """lane i -> base + i * stride: strided (possibly divergent) access."""
    return [base + lane * stride_bytes for lane in range(WARP_SIZE)]


def masked_lanes(
    addresses: Sequence[int], active_mask: int
) -> list[int | None]:
    """Apply a 32-bit activity mask (bit i set = lane i active)."""
    return [
        address if active_mask & (1 << lane) else None
        for lane, address in enumerate(addresses)
    ]
