"""The long-lived simulation daemon behind ``repro serve``.

:class:`ReproDaemon` turns the batch/campaign substrate into a job
service: clients submit sweep specs, get a content-addressed submission
id back, poll status or read the submission's event log, and fetch
merged results that are byte-identical to running the same sweep locally
(both sides render through :func:`repro.core.export.runs_to_text`).

Design points, in the order they matter:

* **Coalescing.**  A submission's id is a hash of its unique job keys
  (:func:`~repro.service.protocol.submission_id`).  While a submission
  is queued or running, an identical submit from any client returns the
  *same* id instead of enqueueing a second copy — many concurrent
  clients requesting the paper's full design space cost exactly one
  simulation pass.  A re-submit after completion also returns the same
  id; its results are served instantly from the store.
* **Backpressure.**  The submission queue is bounded
  (``queue_depth``); a submit that would overflow it is rejected with
  the typed ``queue-full`` error rather than queued into unbounded
  memory.  Clients back off and retry — the daemon never does silent
  load shedding.
* **Worker pool.**  ``workers`` daemon threads drain the queue; each
  executes its submission through a :class:`~repro.runner.BatchRunner`
  (process-pool fan-out, bounded retry, shared-store writes) in chunks,
  checking the cancel flag between chunks so ``cancel`` takes effect
  mid-submission without killing workers.
* **Done-authority.**  Results live in the daemon's shared
  :class:`~repro.runner.ResultCache`; the store's eviction guard
  (``protect_keys``) covers every live submission's keys, mirroring the
  campaign-layer invariant that store presence is the done-authority.
* **Graceful drain.**  :meth:`drain` stops intake (submits fail with
  ``draining``) while queued and running submissions finish;
  :meth:`stop` drains, waits for the queue to empty and joins the
  workers.  ``repro serve`` wires SIGTERM/SIGINT to exactly this path.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from pathlib import Path
from typing import Any

from repro.core.export import runs_to_text
from repro.core.metrics import RunMetrics
from repro.errors import RunnerError
from repro.runner.cache import ResultCache, _read_jsonl
from repro.runner.events import EventLog
from repro.runner.job import Job
from repro.runner.pool import DEFAULT_RETRIES, BatchRunner
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    build_jobs,
    check_spec_types,
    submission_id,
)

#: Default bound on queued (not yet running) submissions.
DEFAULT_QUEUE_DEPTH = 16

#: Directory names under the daemon's state directory.
STORE_DIR = "store"
EVENTS_DIR = "events"

#: Submission lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a submission never leaves.
TERMINAL = (DONE, FAILED, CANCELLED)


@dataclasses.dataclass
class Submission:
    """One coalesced unit of client demand: a unique-job work list."""

    id: str
    jobs: list[Job]
    keys: list[str]
    state: str = QUEUED
    error: str = ""
    #: How many submits coalesced onto this submission.
    clients: int = 1
    created: float = 0.0
    finished: float = 0.0
    events_path: Path | None = None
    cancel_requested: bool = False

    def snapshot(self, store: ResultCache) -> dict[str, Any]:
        """Status payload: lifecycle state plus store-backed progress."""
        done = sum(1 for key in self.keys if store.contains(key))
        return {
            "id": self.id,
            "state": self.state,
            "total": len(self.keys),
            "done": done,
            "clients": self.clients,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }


class ReproDaemon:
    """Coalescing job service over the batch-runner substrate."""

    def __init__(
        self,
        state_dir: str | Path,
        cache: ResultCache | None = None,
        workers: int = 1,
        jobs: int | None = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        if workers < 1:
            raise ServiceError("bad-request", "daemon needs >= 1 worker")
        if queue_depth < 1:
            raise ServiceError("bad-request", "queue depth must be >= 1")
        self.state_dir = Path(state_dir).expanduser()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / EVENTS_DIR).mkdir(exist_ok=True)
        if cache is None:
            cache = ResultCache(self.state_dir / STORE_DIR)
        self.cache = cache
        # Live submissions' keys are never evicted out from under a
        # client: store presence is the service's done-authority too.
        if self.cache.protect_keys is None:
            self.cache.protect_keys = self._live_keys
        self.workers = workers
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.retries = retries
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: collections.deque[Submission] = collections.deque()
        self._submissions: dict[str, Submission] = {}
        self._running: set[str] = set()
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()

    def drain(self) -> None:
        """Stop intake; queued and running submissions keep going."""
        with self._wake:
            self._draining = True
            self._wake.notify_all()

    def stop(self, timeout: float | None = None) -> bool:
        """Drain, let the queue empty, and join the workers.

        Returns True when every worker exited within ``timeout``.
        """
        self.drain()
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        return clean

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no submission is queued or running."""
        deadline = (
            None if timeout is None
            else time.monotonic() + timeout  # noqa: REP001 - host scheduling, not simulated time
        )
        with self._wake:
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()  # noqa: REP001 - host scheduling, not simulated time
                    if remaining <= 0:
                        return False
                self._wake.wait(remaining if remaining is not None else 0.5)
        return True

    def _live_keys(self) -> set[str]:
        """Union of every tracked submission's job keys (evict guard)."""
        with self._lock:
            keys: set[str] = set()
            for submission in self._submissions.values():
                keys.update(submission.keys)
            return keys

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Register a submission spec; coalesce onto an identical one.

        Job construction happens outside the lock (it hashes configs),
        the queue/coalesce decision inside it.
        """
        check_spec_types(spec)
        jobs = build_jobs(spec)
        unique: dict[str, Job] = {}
        for job in jobs:
            unique.setdefault(job.key(), job)
        keys = list(unique)
        sub_id = submission_id(keys)
        with self._wake:
            existing = self._submissions.get(sub_id)
            if existing is not None and existing.state not in (FAILED, CANCELLED):
                # Queued, running or done: one simulation pass serves
                # every identical client.
                existing.clients += 1
                payload = existing.snapshot(self.cache)
                payload.update({"ok": True, "coalesced": True})
                return payload
            if self._draining:
                raise ServiceError(
                    "draining", "daemon is draining; not accepting submissions"
                )
            if len(self._queue) >= self.queue_depth:
                raise ServiceError(
                    "queue-full",
                    f"submission queue is full ({self.queue_depth} deep); "
                    "retry after in-flight work completes",
                )
            if existing is not None:
                # Failed or cancelled earlier: re-attempt under the same
                # id with a fresh lifecycle.
                submission = existing
                submission.state = QUEUED
                submission.error = ""
                submission.cancel_requested = False
                submission.clients += 1
            else:
                submission = Submission(
                    id=sub_id,
                    jobs=list(unique.values()),
                    keys=keys,
                    created=time.time(),  # noqa: REP001 - service bookkeeping, not simulated time
                    events_path=self.state_dir / EVENTS_DIR / f"{sub_id}.jsonl",
                )
                self._submissions[sub_id] = submission
            self._queue.append(submission)
            self._wake.notify_all()
            payload = submission.snapshot(self.cache)
            payload.update({"ok": True, "coalesced": False})
            return payload

    def _get(self, sub_id: Any) -> Submission:
        if not isinstance(sub_id, str) or not sub_id:
            raise ServiceError("bad-request", "missing submission id")
        with self._lock:
            submission = self._submissions.get(sub_id)
        if submission is None:
            raise ServiceError("unknown-job", f"no submission {sub_id!r}")
        return submission

    def status(self, sub_id: Any) -> dict[str, Any]:
        submission = self._get(sub_id)
        payload = submission.snapshot(self.cache)
        payload["ok"] = True
        return payload

    def events(self, sub_id: Any, since: int = 0) -> dict[str, Any]:
        """Event records of one submission from offset ``since``."""
        submission = self._get(sub_id)
        if not isinstance(since, int) or since < 0:
            raise ServiceError("bad-request", "'since' must be an int >= 0")
        records: list[dict[str, Any]] = []
        if submission.events_path is not None:
            records = _read_jsonl(submission.events_path)
        return {
            "ok": True,
            "id": submission.id,
            "state": submission.state,
            "events": records[since:],
            "next": len(records),
        }

    def results(self, sub_id: Any, fmt: str = "csv") -> dict[str, Any]:
        """Merged results of a completed submission, as export text."""
        submission = self._get(sub_id)
        if submission.state != DONE:
            raise ServiceError(
                "not-done",
                f"submission {submission.id} is {submission.state}; "
                "results need state 'done'"
                + (f" ({submission.error})" if submission.error else ""),
            )
        runs: list[RunMetrics] = []
        missing = 0
        for key in submission.keys:
            metrics = self.cache.get(key)
            if metrics is None:
                missing += 1
            else:
                runs.append(metrics)
        if missing:
            raise ServiceError(
                "incomplete",
                f"{missing} of {len(submission.keys)} stored result(s) "
                "vanished from the store; resubmit to re-simulate",
            )
        return {
            "ok": True,
            "id": submission.id,
            "format": fmt,
            "text": runs_to_text(runs, fmt),
        }

    def cancel(self, sub_id: Any) -> dict[str, Any]:
        """Cancel a submission; running work stops at a chunk boundary."""
        submission = self._get(sub_id)
        with self._wake:
            if submission.state == QUEUED:
                try:
                    self._queue.remove(submission)
                except ValueError:
                    pass  # a worker grabbed it between checks
                else:
                    submission.state = CANCELLED
                    self._wake.notify_all()
            if submission.state in (QUEUED, RUNNING):
                submission.cancel_requested = True
        payload = submission.snapshot(self.cache)
        payload["ok"] = True
        return payload

    def ping(self) -> dict[str, Any]:
        with self._lock:
            states = sorted(
                sub.state for sub in self._submissions.values()
            )
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "queued": states.count(QUEUED),
            "running": states.count(RUNNING),
            "submissions": len(states),
        }

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request to the matching operation."""
        op = request.get("op")
        if op == "submit":
            return self.submit(request.get("spec", {}))
        if op == "status":
            return self.status(request.get("id"))
        if op == "events":
            return self.events(request.get("id"), request.get("since", 0))
        if op == "results":
            return self.results(request.get("id"), request.get("format", "csv"))
        if op == "cancel":
            return self.cancel(request.get("id"))
        if op == "ping":
            return self.ping()
        raise ServiceError("bad-request", f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _next_submission(self) -> Submission | None:
        """Block until a submission is available or the daemon stops."""
        with self._wake:
            while True:
                if self._queue:
                    submission = self._queue.popleft()
                    submission.state = RUNNING
                    self._running.add(submission.id)
                    return submission
                if self._stopping:
                    return None
                self._wake.wait(0.5)

    def _worker_loop(self) -> None:
        while True:
            submission = self._next_submission()
            if submission is None:
                return
            try:
                self._execute(submission)
            finally:
                with self._wake:
                    self._running.discard(submission.id)
                    self._wake.notify_all()

    def _chunks(self, submission: Submission) -> list[list[Job]]:
        """Cancel-granularity slices of the submission's unique jobs."""
        width = max(1, self.jobs or (len(submission.jobs)))
        return [
            submission.jobs[start:start + width]
            for start in range(0, len(submission.jobs), width)
        ]

    def _execute(self, submission: Submission) -> None:
        """Run one submission through the batch runner, chunk by chunk."""
        events = (
            EventLog(submission.events_path)
            if submission.events_path is not None else None
        )
        runner = BatchRunner(
            jobs=self.jobs,
            cache=self.cache,
            retries=self.retries,
            events=events,
        )
        if events is not None:
            events.emit(
                "submission_start", id=submission.id,
                units=len(submission.keys), clients=submission.clients,
            )
        error = ""
        cancelled = False
        try:
            for chunk in self._chunks(submission):
                if submission.cancel_requested:
                    cancelled = True
                    break
                try:
                    runner.run(chunk)
                except RunnerError as exc:
                    error = str(exc).splitlines()[0]
                    break
        except Exception as exc:  # worker threads must never die silently
            error = f"{type(exc).__name__}: {exc}"
        with self._wake:
            if cancelled:
                submission.state = CANCELLED
            elif error:
                submission.state = FAILED
                submission.error = error
            else:
                submission.state = DONE
            submission.finished = time.time()  # noqa: REP001 - service bookkeeping, not simulated time
            self._wake.notify_all()
        if events is not None:
            events.emit(
                "submission_end", id=submission.id,
                state=submission.state, error=error,
            )
            events.close()


__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL",
    "ReproDaemon",
    "Submission",
]
