"""Wire protocol of the simulation service: line-JSON requests and specs.

One request is one JSON object on one line; one response is one JSON
object on one line (the ``events`` operation with ``follow`` streams
several).  The same protocol runs unchanged over a unix stream socket
(``repro serve --socket PATH``) or a loopback TCP socket (``--port N``),
so the client and tests never care which transport the daemon chose.

Three things live here, shared by daemon, server and client:

* **Submission specs.**  :func:`build_jobs` turns a client's JSON spec
  into concrete :class:`~repro.runner.Job`\\ s.  A spec is either a
  *sweep* (``{"sweep": {...}}`` — Section IV config labels x benchmarks
  x seeds, the same matrix ``repro campaign run`` shards) or an explicit
  job list (``{"jobs": [...]}``, each entry carrying a full config dict
  rebuilt through :func:`~repro.sim.config.config_from_dict`).
* **Submission identity.**  :func:`submission_id` hashes the submission's
  unique :meth:`Job.key` sequence, so byte-identical sweeps submitted by
  concurrent clients share one id — the daemon coalesces them onto one
  running campaign instead of simulating twice.
* **Typed errors.**  :class:`ServiceError` carries a machine-readable
  ``code`` (``queue-full``, ``draining``, ``unknown-job``, ...) that
  survives the wire round trip, so clients can distinguish backpressure
  from a genuine failure without parsing prose.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.profile import config_for_label
from repro.errors import ReproError
from repro.runner.job import Job
from repro.sim.config import (
    GPUConfig,
    config_from_dict,
    fermi_gtx480,
    small_gpu,
    tiny_gpu,
)
from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.workloads.suite import PAPER_SUITE

#: Bumped when the request/response layout changes.
PROTOCOL_VERSION = 1

#: Named architecture configurations a sweep spec may reference.
NAMED_CONFIGS = {
    "small": small_gpu,
    "fermi": fermi_gtx480,
    "tiny": tiny_gpu,
}

#: Machine-readable error codes a response may carry.
ERROR_CODES = (
    "bad-request",    # malformed request or submission spec
    "queue-full",     # bounded submission queue rejected the submit
    "draining",       # daemon is draining: no new submissions
    "unknown-job",    # no submission with that id
    "not-done",       # results requested before the submission settled
    "incomplete",     # stored results vanished (store cleared externally)
    "internal",       # unexpected server-side failure
)


class ServiceError(ReproError):
    """A typed service failure that survives the wire round trip."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            code = "internal"
        self.code = code
        super().__init__(message)

    def to_payload(self) -> dict[str, Any]:
        return {"ok": False, "error": {"code": self.code, "message": str(self)}}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ServiceError":
        error = payload.get("error")
        if not isinstance(error, dict):
            return cls("internal", "malformed error response")
        return cls(
            str(error.get("code", "internal")),
            str(error.get("message", "service request failed")),
        )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol message: compact JSON plus the line terminator."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol message; raises ``bad-request`` on junk."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ServiceError("bad-request", f"malformed JSON request: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError("bad-request", "request must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# submission specs
# ----------------------------------------------------------------------

def submission_id(keys: list[str]) -> str:
    """Content id of a submission: a hash of its unique job keys.

    Job keys already cover config, kernel, seed, scale, cycle budget and
    code digest, so two submissions share an id iff they describe the
    same simulations — the invariant the daemon's coalescing rides on.
    """
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()[:24]


def _base_config(raw: Any) -> GPUConfig:
    if raw is None:
        return NAMED_CONFIGS["small"]()
    if isinstance(raw, str):
        try:
            return NAMED_CONFIGS[raw]()
        except KeyError:
            raise ServiceError(
                "bad-request",
                f"unknown named config {raw!r}; choose from "
                + ", ".join(sorted(NAMED_CONFIGS)),
            ) from None
    if isinstance(raw, dict):
        try:
            return config_from_dict(raw)
        except ReproError as exc:
            raise ServiceError("bad-request", f"bad config dict: {exc}") from exc
    raise ServiceError("bad-request", "sweep config must be a name or a dict")


def _sweep_jobs(sweep: dict[str, Any]) -> list[Job]:
    """The sweep matrix: Section IV config labels x benchmarks x seeds."""
    base = _base_config(sweep.get("config"))
    labels = sweep.get("configs", ["baseline"])
    benchmarks = sweep.get("benchmarks", list(PAPER_SUITE))
    seeds = sweep.get("seeds", [1])
    scale = sweep.get("scale", 1.0)
    max_cycles = sweep.get("max_cycles", DEFAULT_MAX_CYCLES)
    for name, value in (
        ("configs", labels), ("benchmarks", benchmarks), ("seeds", seeds)
    ):
        if not isinstance(value, list) or not value:
            raise ServiceError(
                "bad-request", f"sweep {name!r} must be a non-empty list"
            )
    try:
        return [
            Job(
                config_for_label(base, label),
                benchmark,
                seed=seed,
                iteration_scale=scale,
                max_cycles=max_cycles,
            )
            for label in labels
            for benchmark in benchmarks
            for seed in seeds
        ]
    except ReproError as exc:
        raise ServiceError("bad-request", str(exc)) from exc


def _explicit_jobs(raw_jobs: list[Any]) -> list[Job]:
    jobs: list[Job] = []
    for index, raw in enumerate(raw_jobs):
        if not isinstance(raw, dict):
            raise ServiceError(
                "bad-request", f"jobs[{index}] must be an object"
            )
        try:
            jobs.append(
                Job(
                    config_from_dict(raw.get("config", {})),
                    raw.get("kernel", ""),
                    seed=raw.get("seed", 1),
                    iteration_scale=raw.get("iteration_scale", 1.0),
                    max_cycles=raw.get("max_cycles", DEFAULT_MAX_CYCLES),
                )
            )
        except (ReproError, TypeError) as exc:
            raise ServiceError(
                "bad-request", f"jobs[{index}] is malformed: {exc}"
            ) from exc
    return jobs


def build_jobs(spec: dict[str, Any]) -> list[Job]:
    """Concrete jobs of one submission spec (sweep or explicit list)."""
    sweep = spec.get("sweep")
    raw_jobs = spec.get("jobs")
    if (sweep is None) == (raw_jobs is None):
        raise ServiceError(
            "bad-request",
            "a submission carries exactly one of 'sweep' or 'jobs'",
        )
    if sweep is not None:
        if not isinstance(sweep, dict):
            raise ServiceError("bad-request", "'sweep' must be an object")
        jobs = _sweep_jobs(sweep)
    else:
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ServiceError(
                "bad-request", "'jobs' must be a non-empty list"
            )
        jobs = _explicit_jobs(raw_jobs)
    if not jobs:
        raise ServiceError("bad-request", "submission describes no jobs")
    return jobs


def sweep_spec(
    config: str = "small",
    configs: list[str] | None = None,
    benchmarks: list[str] | None = None,
    seeds: list[int] | None = None,
    scale: float = 1.0,
    max_cycles: int | None = None,
) -> dict[str, Any]:
    """Convenience builder for the CLI: a sweep spec as the wire dict."""
    sweep: dict[str, Any] = {
        "config": config,
        "configs": list(configs) if configs else ["baseline"],
        "benchmarks": list(benchmarks) if benchmarks else list(PAPER_SUITE),
        "seeds": list(seeds) if seeds else [1],
        "scale": scale,
    }
    if max_cycles is not None:
        sweep["max_cycles"] = max_cycles
    return {"sweep": sweep}


def check_spec_types(spec: dict[str, Any]) -> None:
    """Early scalar validation shared by client and daemon."""
    if not isinstance(spec, dict):
        raise ServiceError("bad-request", "submission spec must be an object")
    sweep = spec.get("sweep")
    if isinstance(sweep, dict):
        scale = sweep.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise ServiceError("bad-request", "sweep scale must be > 0")


__all__ = [
    "ERROR_CODES",
    "NAMED_CONFIGS",
    "PROTOCOL_VERSION",
    "ServiceError",
    "build_jobs",
    "check_spec_types",
    "decode_line",
    "encode_line",
    "submission_id",
    "sweep_spec",
]
