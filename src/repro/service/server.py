"""Socket front-end of the simulation daemon.

:class:`ServiceServer` listens on a unix stream socket (``--socket
PATH``) or a loopback TCP port (``--port N``) and speaks the line-JSON
protocol of :mod:`repro.service.protocol`: each connection carries one
request line and receives one response line — except ``events`` with
``follow``, which streams one line per event until the submission
settles, then a final ``{"done": true}`` line.

The accept loop runs with a short timeout so :meth:`request_stop` (wired
to SIGTERM/SIGINT by ``repro serve``) is honoured promptly; connection
handlers run in daemon threads, and every failure is answered with a
typed error payload rather than a dropped connection.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError, UsageError
from repro.service.daemon import TERMINAL, ReproDaemon
from repro.service.protocol import ServiceError, decode_line, encode_line

#: Seconds between accept-timeout checks of the stop flag.
ACCEPT_POLL = 0.2

#: Seconds between event-file polls while streaming with ``follow``.
FOLLOW_POLL = 0.1


class ServiceServer:
    """Line-JSON listener in front of a :class:`ReproDaemon`."""

    def __init__(
        self,
        daemon: ReproDaemon,
        socket_path: str | Path | None = None,
        port: int | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        if (socket_path is None) == (port is None):
            raise UsageError(
                "serve needs exactly one of --socket PATH or --port N"
            )
        self.daemon = daemon
        self.socket_path = Path(socket_path).expanduser() if socket_path else None
        self.host = host
        self._stop = threading.Event()
        if self.socket_path is not None:
            # A previous daemon that died uncleanly leaves the socket
            # file behind; binding requires the path to be free.
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(str(self.socket_path))
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host, int(port or 0)))
        self._sock.listen(16)
        self._sock.settimeout(ACCEPT_POLL)
        self.port = (
            None if self.socket_path is not None else self._sock.getsockname()[1]
        )

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the accept loop to exit (signal-handler safe)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Accept connections until :meth:`request_stop`, then clean up."""
        self.daemon.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listening socket closed under us
                thread = threading.Thread(
                    target=self._handle, args=(conn,), daemon=True
                )
                thread.start()
        finally:
            self.close()

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self.socket_path is not None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _handle(self, conn: socket.socket) -> None:
        with conn:
            reader = conn.makefile("rb")
            try:
                line = reader.readline(1024 * 1024)
            except OSError:
                return
            if not line:
                return
            try:
                request = decode_line(line)
                if (
                    request.get("op") == "events"
                    and request.get("follow")
                ):
                    self._stream_events(conn, request)
                    return
                response = self.daemon.handle(request)
            except ServiceError as exc:
                response = exc.to_payload()
            except ReproError as exc:
                response = ServiceError("bad-request", str(exc)).to_payload()
            except Exception as exc:  # handler threads must answer, not die
                response = ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"
                ).to_payload()
            self._send(conn, response)

    def _send(self, conn: socket.socket, payload: dict[str, Any]) -> bool:
        try:
            conn.sendall(encode_line(payload))
            return True
        except OSError:
            return False  # client went away; nothing to salvage

    def _stream_events(
        self, conn: socket.socket, request: dict[str, Any]
    ) -> None:
        """Stream event lines until the submission reaches a terminal state."""
        sub_id = request.get("id")
        since = request.get("since", 0)
        if not isinstance(since, int) or since < 0:
            self._send(
                conn,
                ServiceError(
                    "bad-request", "'since' must be an int >= 0"
                ).to_payload(),
            )
            return
        while True:
            try:
                batch = self.daemon.events(sub_id, since)
            except ServiceError as exc:
                self._send(conn, exc.to_payload())
                return
            for record in batch["events"]:
                if not self._send(conn, {"ok": True, "event": record}):
                    return
            since = batch["next"]
            if batch["state"] in TERMINAL:
                self._send(
                    conn,
                    {"ok": True, "done": True, "state": batch["state"],
                     "next": since},
                )
                return
            if self._stop.is_set():
                self._send(
                    conn,
                    {"ok": True, "done": False, "state": batch["state"],
                     "next": since},
                )
                return
            time.sleep(FOLLOW_POLL)  # noqa: REP001 - host polling, not simulated time


def serve(
    daemon: ReproDaemon,
    socket_path: str | Path | None = None,
    port: int | None = None,
    host: str = "127.0.0.1",
    install_signals: bool = True,
) -> ServiceServer:
    """Run a server until SIGTERM/SIGINT, then drain gracefully.

    The signal path is the daemon's whole graceful story: stop
    accepting connections, let queued and running submissions finish
    through :meth:`ReproDaemon.stop`, then return.
    """
    server = ServiceServer(daemon, socket_path=socket_path, port=port, host=host)
    if install_signals and threading.current_thread() is threading.main_thread():
        import signal

        def _drain(signum: int, frame: Any) -> None:
            server.request_stop()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    finally:
        daemon.stop()
    return server


__all__ = ["ACCEPT_POLL", "FOLLOW_POLL", "ServiceServer", "serve"]
