"""Client plumbing for the simulation service.

:class:`ServiceClient` opens one connection per request (the protocol is
single-exchange), raises the daemon's typed
:class:`~repro.service.protocol.ServiceError` on error payloads, and
offers the small set of verbs the CLI commands (``repro
submit|status|results|cancel``) and tests compose: ``submit``,
``status``, ``events``, ``stream_events``, ``results``, ``cancel``,
``ping`` and ``wait_done``.
"""

from __future__ import annotations

import socket
import time
from collections.abc import Iterator
from pathlib import Path
from typing import Any

from repro.errors import UsageError
from repro.service.daemon import TERMINAL
from repro.service.protocol import ServiceError, decode_line, encode_line

#: Default seconds between ``wait_done`` status polls.
DEFAULT_POLL = 0.2

#: Default per-request socket timeout in seconds.
DEFAULT_TIMEOUT = 30.0


class ServiceClient:
    """One daemon address plus the request verbs against it."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        port: int | None = None,
        host: str = "127.0.0.1",
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise UsageError(
                "client needs exactly one of socket path or port"
            )
        self.socket_path = Path(socket_path).expanduser() if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                conn.settimeout(self.timeout)
                conn.connect(str(self.socket_path))
            else:
                conn = socket.create_connection(
                    (self.host, int(self.port or 0)), timeout=self.timeout
                )
            return conn
        except OSError as exc:
            raise ServiceError(
                "internal",
                f"cannot reach daemon at {self.address}: {exc} "
                "(is `repro serve` running?)",
            ) from exc

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange; typed errors re-raise here."""
        with self._connect() as conn:
            try:
                conn.sendall(encode_line(payload))
                line = conn.makefile("rb").readline(16 * 1024 * 1024)
            except OSError as exc:
                raise ServiceError(
                    "internal", f"connection to {self.address} failed: {exc}"
                ) from exc
        if not line:
            raise ServiceError(
                "internal", f"daemon at {self.address} closed the connection"
            )
        response = decode_line(line)
        if not response.get("ok", False):
            raise ServiceError.from_payload(response)
        return response

    # ------------------------------------------------------------------
    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        return self.request({"op": "submit", "spec": spec})

    def status(self, sub_id: str) -> dict[str, Any]:
        return self.request({"op": "status", "id": sub_id})

    def events(self, sub_id: str, since: int = 0) -> dict[str, Any]:
        return self.request({"op": "events", "id": sub_id, "since": since})

    def results(self, sub_id: str, fmt: str = "csv") -> dict[str, Any]:
        return self.request({"op": "results", "id": sub_id, "format": fmt})

    def cancel(self, sub_id: str) -> dict[str, Any]:
        return self.request({"op": "cancel", "id": sub_id})

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def wait_done(
        self,
        sub_id: str,
        poll: float = DEFAULT_POLL,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Poll until the submission reaches a terminal state."""
        deadline = (
            None if timeout is None
            else time.monotonic() + timeout  # noqa: REP001 - host polling, not simulated time
        )
        while True:
            status = self.status(sub_id)
            if status["state"] in TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:  # noqa: REP001 - host polling, not simulated time
                raise ServiceError(
                    "internal",
                    f"submission {sub_id} still {status['state']} after "
                    f"{timeout}s",
                )
            time.sleep(poll)  # noqa: REP001 - host polling, not simulated time

    def stream_events(
        self, sub_id: str, since: int = 0
    ) -> Iterator[dict[str, Any]]:
        """Yield event records as the daemon streams them (``follow``).

        The stream ends when the submission settles (or the daemon
        stops); the final control line is yielded too, distinguishable
        by its ``done`` field.
        """
        with self._connect() as conn:
            conn.settimeout(None)  # a quiet sweep can idle between events
            try:
                conn.sendall(encode_line(
                    {"op": "events", "id": sub_id, "since": since,
                     "follow": True}
                ))
                reader = conn.makefile("rb")
                for line in reader:
                    response = decode_line(line)
                    if not response.get("ok", False):
                        raise ServiceError.from_payload(response)
                    yield response
                    if "done" in response:
                        return
            except OSError as exc:
                raise ServiceError(
                    "internal", f"event stream from {self.address} broke: {exc}"
                ) from exc


__all__ = ["DEFAULT_POLL", "DEFAULT_TIMEOUT", "ServiceClient"]
