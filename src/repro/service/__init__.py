"""Simulation as a service: a daemon in front of the batch runner.

The campaign substrate (content-addressed jobs, shared result store,
batch runner) makes simulations *pure lookups*: a job's key determines
its result.  This package serves that property to many concurrent
clients as a long-lived daemon:

* :class:`ReproDaemon` — bounded submission queue with typed
  backpressure, coalescing of identical in-flight submissions (one
  simulation pass, any number of clients), a worker-thread pool over
  :class:`~repro.runner.BatchRunner`, per-submission event logs and
  graceful drain.
* :class:`ServiceServer` / :func:`serve` — line-JSON protocol over a
  unix socket or loopback TCP, SIGTERM wired to drain.
* :class:`ServiceClient` — the verbs the CLI commands (``repro
  submit|status|results|cancel``) compose.
* :mod:`~repro.service.protocol` — submission specs, content-hashed
  submission ids, typed :class:`ServiceError` codes.

Results fetched from the daemon are byte-identical to a local ``repro
export`` of the same sweep: both render through
:func:`repro.core.export.runs_to_text`, and the simulations themselves
are deterministic.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import (
    DEFAULT_QUEUE_DEPTH,
    ReproDaemon,
    Submission,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    build_jobs,
    submission_id,
    sweep_spec,
)
from repro.service.server import ServiceServer, serve

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "PROTOCOL_VERSION",
    "ReproDaemon",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Submission",
    "build_jobs",
    "serve",
    "submission_id",
    "sweep_spec",
]
