"""Cycle-windowed time series over the memory hierarchy.

:class:`TimeSeriesProbe` is a :class:`~repro.sim.engine.Simulator`
observer (attached via ``Simulator.attach_observer``, like the
:mod:`repro.analysis` sanitizer) that chops the run into fixed-cycle
windows and records, per window:

* **IPC** — instructions issued in the window / window length;
* **queue congestion** per Table I family (L1 miss queues, L2 access /
  miss / response queues, DRAM scheduler and return queues): the full and
  busy fractions *within the window* plus the instantaneous depth at the
  window boundary;
* **MSHR occupancy** for the L1 and L2 tables (fraction of entries held
  at the boundary);
* **DRAM bus utilization** — data-bus busy cycles in the window / window
  cycles, averaged over channels;
* raw **counter deltas** for every ``sample_counters`` source, so derived
  series (crossbar flits, L2 fills, ...) need no probe changes.

The probe is event-light: ``on_cycle`` is a modulo test except at window
boundaries, where it snapshots the cumulative counters the components
already maintain (the :class:`~repro.utils.stats.IntervalTracker` totals
behind the Section III metrics) and stores the *deltas*.  Nothing is
sampled per cycle, and attaching the probe never changes simulated
behaviour.

Windows land in a ring buffer (``max_windows`` deep); beyond that the
oldest windows are dropped and counted in :attr:`TimeSeriesProbe.dropped`,
so arbitrarily long runs hold O(max_windows) memory.  Because windows
store cycle *deltas*, the retained windows always reconcile exactly with
the difference of the cumulative aggregates at their two edges — the
property the telemetry tests pin down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import UsageError

#: Default window length in core cycles.
DEFAULT_WINDOW = 2_000
#: Default ring-buffer capacity, in windows.
DEFAULT_MAX_WINDOWS = 512


@dataclass(frozen=True)
class WindowSample:
    """Telemetry for one ``[start, end)`` cycle window."""

    index: int
    start: int
    end: int
    #: Instructions issued in the window / window length (whole GPU).
    ipc: float
    #: family -> cycles the family's queues were full inside the window
    #: (summed over instances).
    queue_full_cycles: dict[str, int] = field(default_factory=dict)
    #: family -> cycles the family's queues held >= 1 entry (summed).
    queue_busy_cycles: dict[str, int] = field(default_factory=dict)
    #: family -> full cycles / busy cycles within the window (the windowed
    #: Section III metric; 0.0 for an idle window).
    queue_full_fraction: dict[str, float] = field(default_factory=dict)
    #: family -> busy cycles / (window length * instances).
    queue_busy_fraction: dict[str, float] = field(default_factory=dict)
    #: family -> mean instantaneous fill level (0..1) at the window edge.
    queue_depth: dict[str, float] = field(default_factory=dict)
    #: family -> pushes refused inside the window.
    queue_rejections: dict[str, int] = field(default_factory=dict)
    #: family -> successful pushes inside the window.
    queue_pushes: dict[str, int] = field(default_factory=dict)
    #: family -> fraction of MSHR entries held at the window edge.
    mshr_occupancy: dict[str, float] = field(default_factory=dict)
    #: Data-bus busy cycles / window cycles, averaged over DRAM channels.
    dram_bus_utilization: float = 0.0
    #: name -> windowed delta of every ``sample_counters`` source.
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready rendition (used by ``RunMetrics.extras``)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "ipc": self.ipc,
            "queue_full_cycles": dict(self.queue_full_cycles),
            "queue_busy_cycles": dict(self.queue_busy_cycles),
            "queue_full_fraction": dict(self.queue_full_fraction),
            "queue_busy_fraction": dict(self.queue_busy_fraction),
            "queue_depth": dict(self.queue_depth),
            "queue_rejections": dict(self.queue_rejections),
            "queue_pushes": dict(self.queue_pushes),
            "mshr_occupancy": dict(self.mshr_occupancy),
            "dram_bus_utilization": self.dram_bus_utilization,
            "counters": dict(self.counters),
        }


class TimeSeriesProbe:
    """Samples windowed telemetry at cycle boundaries.

    Parameters
    ----------
    sim:
        The simulator whose components are sampled (through the
        ``sample_*`` hooks of :class:`~repro.sim.component.Component`).
    window:
        Window length in core cycles.
    max_windows:
        Ring-buffer depth; when exceeded, the oldest window is dropped
        and counted in :attr:`dropped`.
    """

    def __init__(
        self,
        sim,
        *,
        window: int = DEFAULT_WINDOW,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if window < 1:
            raise UsageError(f"telemetry window must be >= 1, got {window}")
        if max_windows < 1:
            raise UsageError(
                f"telemetry max_windows must be >= 1, got {max_windows}"
            )
        self._sim = sim
        self.window = window
        self.max_windows = max_windows
        self._windows: deque[WindowSample] = deque(maxlen=max_windows)
        #: Windows evicted from the ring buffer (oldest first).
        self.dropped = 0
        self._window_start = 0
        self._index = 0
        self._finalized = False
        self._scanned = False
        #: family -> [StatQueue, ...] discovered through sample_queues.
        self._queues: dict[str, list] = {}
        #: family -> [MSHRTable, ...] discovered through sample_mshrs.
        self._mshrs: dict[str, list] = {}
        #: counter name -> number of components publishing it.
        self._counter_sources: dict[str, int] = {}
        # Cumulative snapshots at the previous window boundary.
        self._prev_queue: dict[str, tuple[int, int, int, int]] = {}
        self._prev_counters: dict[str, float] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        gpu,
        *,
        window: int = DEFAULT_WINDOW,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> "TimeSeriesProbe":
        """Attach a new probe to a built (not yet run) GPU model."""
        probe = cls(gpu.sim, window=window, max_windows=max_windows)
        gpu.sim.attach_observer(probe)
        return probe

    def _scan(self) -> None:
        """Discover instruments through the components' sample hooks."""
        for component in self._sim.components:
            for family, queue in component.sample_queues():
                self._queues.setdefault(family, []).append(queue)
            for family, table in component.sample_mshrs():
                self._mshrs.setdefault(family, []).append(table)
            for name, _value in component.sample_counters():
                self._counter_sources[name] = (
                    self._counter_sources.get(name, 0) + 1
                )
        self._scanned = True

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        """Engine hook: capture a window at each boundary."""
        boundary = now + 1  # the engine has already advanced past ``now``
        if boundary % self.window:
            return
        self._capture(boundary)

    def on_finalize(self, now: int) -> None:
        """Engine hook: close the final (possibly partial) window."""
        if self._finalized:
            return
        self._finalized = True
        self._capture(now)

    # ------------------------------------------------------------------
    # the capture itself
    # ------------------------------------------------------------------
    def _read_counters(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for component in self._sim.components:
            for name, value in component.sample_counters():
                totals[name] = totals.get(name, 0) + value
        return totals

    def _capture(self, boundary: int) -> None:
        if not self._scanned:
            self._scan()
        length = boundary - self._window_start
        if length <= 0:
            return

        full_cycles: dict[str, int] = {}
        busy_cycles: dict[str, int] = {}
        full_fraction: dict[str, float] = {}
        busy_fraction: dict[str, float] = {}
        depth: dict[str, float] = {}
        rejections: dict[str, int] = {}
        pushes: dict[str, int] = {}
        for family, queues in self._queues.items():
            full = sum(q.full_cycles(boundary) for q in queues)
            busy = sum(q.busy_cycles(boundary) for q in queues)
            rej = sum(q.rejections for q in queues)
            psh = sum(q.pushes for q in queues)
            p_full, p_busy, p_rej, p_psh = self._prev_queue.get(
                family, (0, 0, 0, 0)
            )
            d_full = full - p_full
            d_busy = busy - p_busy
            full_cycles[family] = d_full
            busy_cycles[family] = d_busy
            full_fraction[family] = d_full / d_busy if d_busy else 0.0
            busy_fraction[family] = d_busy / (length * len(queues))
            depth[family] = sum(
                len(q) / q.capacity for q in queues
            ) / len(queues)
            rejections[family] = rej - p_rej
            pushes[family] = psh - p_psh
            self._prev_queue[family] = (full, busy, rej, psh)

        mshr_occupancy = {
            family: sum(len(t) / t.capacity for t in tables) / len(tables)
            for family, tables in self._mshrs.items()
        }

        totals = self._read_counters()
        deltas = {
            name: value - self._prev_counters.get(name, 0)
            for name, value in totals.items()
        }
        self._prev_counters = totals

        n_channels = self._counter_sources.get("dram_bus_busy_cycles", 0)
        bus_util = (
            deltas.get("dram_bus_busy_cycles", 0) / (length * n_channels)
            if n_channels
            else 0.0
        )

        if len(self._windows) == self.max_windows:
            self.dropped += 1  # deque evicts the oldest on append
        self._windows.append(
            WindowSample(
                index=self._index,
                start=self._window_start,
                end=boundary,
                ipc=deltas.get("instructions", 0) / length,
                queue_full_cycles=full_cycles,
                queue_busy_cycles=busy_cycles,
                queue_full_fraction=full_fraction,
                queue_busy_fraction=busy_fraction,
                queue_depth=depth,
                queue_rejections=rejections,
                queue_pushes=pushes,
                mshr_occupancy=mshr_occupancy,
                dram_bus_utilization=bus_util,
                counters=deltas,
            )
        )
        self._index += 1
        self._window_start = boundary

    # ------------------------------------------------------------------
    # reading the series
    # ------------------------------------------------------------------
    @property
    def windows(self) -> list[WindowSample]:
        """Retained windows, oldest first."""
        return list(self._windows)

    @property
    def queue_families(self) -> list[str]:
        """Family labels in component-registration order."""
        return list(self._queues)

    def series(self, key: str, family: str | None = None) -> list[tuple[int, float]]:
        """``(window end cycle, value)`` points for one metric.

        ``key`` is a :class:`WindowSample` field name; dict-valued fields
        (``queue_full_fraction``, ``mshr_occupancy``, ``counters``, ...)
        additionally need ``family`` to pick the entry.
        """
        points = []
        for sample in self._windows:
            try:
                value = getattr(sample, key)
            except AttributeError:
                raise UsageError(
                    f"unknown telemetry series {key!r}"
                ) from None
            if isinstance(value, dict):
                if family is None:
                    raise UsageError(
                        f"series {key!r} is per-family; pass family="
                    )
                value = value.get(family, 0.0)
            points.append((sample.end, value))
        return points

    def total_queue_cycles(self, family: str) -> tuple[int, int]:
        """Summed (full, busy) cycles over the *retained* windows.

        With no windows dropped this equals the end-of-run aggregate of
        the family's queues — the reconciliation the tests assert.
        """
        full = sum(w.queue_full_cycles.get(family, 0) for w in self._windows)
        busy = sum(w.queue_busy_cycles.get(family, 0) for w in self._windows)
        return full, busy

    def summary(self) -> dict:
        """JSON-ready structure for ``RunMetrics.extras['timeline']``."""
        return {
            "window": self.window,
            "max_windows": self.max_windows,
            "dropped": self.dropped,
            "queue_families": self.queue_families,
            "windows": [w.to_dict() for w in self._windows],
        }
