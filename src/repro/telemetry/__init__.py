"""Observability layer for the simulator: time series and request traces.

The paper's central claims are *temporal* — queues are full for given
fractions of their usage lifetime, congestion latency dominates the L1
miss round trip — yet :class:`~repro.core.metrics.RunMetrics` only shows
end-of-run aggregates.  This package turns the reproduction into an
instrument:

* :class:`TimeSeriesProbe` — a :class:`~repro.sim.engine.Simulator`
  observer that folds the run into fixed-cycle windows: per-window IPC,
  full/busy fractions and depths for every Table I queue family, L1/L2
  MSHR occupancy and DRAM bus utilization.  A ring-buffer cap keeps long
  runs O(1) in memory.
* :class:`RequestTracer` — deterministic stride sampling of
  factory-issued requests; converts their per-hop ``timestamps`` into
  Chrome trace-event JSON (one track per component, loadable in
  chrome://tracing or https://ui.perfetto.dev) and a per-hop latency
  histogram registry.
* :class:`AttributionProbe` — top-down cycle accounting (every SM cycle
  classified issue / issue-starved / no-ready-warp / drained with exact
  conservation) plus per-window blame chains that walk downstream
  occupancy evidence and charge each memory-pipeline stall cycle to the
  deepest congested stage (DRAM, L2, interconnect, L1 or raw latency);
  the measurement behind ``repro profile``.

All are strictly opt-in: with nothing attached the simulator executes
exactly the same code it always did (the observer list is empty and the
request factory keeps its original listener), so results are bit-identical
to an uninstrumented run.
"""

from repro.telemetry.attribution import (
    BLAME_STAGES,
    DEFAULT_BLAME_THRESHOLD,
    AttributionProbe,
    AttributionWindow,
)
from repro.telemetry.timeseries import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW,
    TimeSeriesProbe,
    WindowSample,
)
from repro.telemetry.tracer import (
    DEFAULT_TRACE_LIMIT,
    DEFAULT_TRACE_STRIDE,
    RequestTracer,
    hop_track,
)

__all__ = [
    "BLAME_STAGES",
    "DEFAULT_BLAME_THRESHOLD",
    "DEFAULT_MAX_WINDOWS",
    "DEFAULT_TRACE_LIMIT",
    "DEFAULT_TRACE_STRIDE",
    "DEFAULT_WINDOW",
    "AttributionProbe",
    "AttributionWindow",
    "RequestTracer",
    "TimeSeriesProbe",
    "WindowSample",
    "hop_track",
]
