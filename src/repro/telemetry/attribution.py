"""Top-down cycle accounting and bottleneck blame attribution.

The paper's argument is attributional: baseline latency is dominated by
*congestion* (Sec. III measures the L2 access queue full 46% and the DRAM
scheduler queue full 39% of their usage lifetime), so mitigation only
pays when applied where the blame actually lies.  This module turns that
methodology into an instrument with two cooperating parts:

**Cycle accounting** — every SM cycle is classified into exactly one of
four classes via :meth:`~repro.sim.component.Component.inspect_cycle_classes`:

* ``issue`` — at least one instruction issued;
* ``issue_starved`` — ready warps existed but nothing issued (the LD/ST
  queue was full: memory back-pressure reached the issue stage);
* ``no_ready_warp`` — every warp blocked on outstanding memory;
* ``drained`` — the SM finished while the rest of the GPU still ran.

The classes partition total cycles *exactly* (conservation is enforced by
the sanitizer's ``cycle_accounting_violations`` check and by the
attribution tests, and survives fast-forward byte-identically because the
SM replays skipped cycles into the same counters).

**Blame chains** — memory-pipeline stalls (``stall_mshr_full`` /
``stall_merge_full`` / ``stall_missq_full`` from
:meth:`~repro.sim.component.Component.sample_stalls`) say *that* the SM
was throttled, not *who* is responsible.  Per window the probe walks the
downstream occupancy evidence deepest-first and assigns each stalled
cycle to the deepest congested stage:

* ``dram`` — the DRAM scheduler queue (or the L2 miss queue feeding it)
  was full for at least ``blame_threshold`` of the window;
* ``l2`` — the L2 access queue was that congested;
* ``icnt`` — the request crossbar spent that fraction of port-cycles
  with a delivered tail flit blocked by its sink;
* ``l1`` — an L1 miss queue filled with no congested stage below it
  (the L1's own miss bandwidth is the limit);
* ``mem_latency`` — MSHR/merge capacity ran out with nothing congested
  downstream: raw fill latency, not queueing (the magic-memory case).

Like :class:`~repro.telemetry.timeseries.TimeSeriesProbe`, the probe is a
:class:`~repro.sim.engine.Simulator` observer that only works at window
boundaries, keeps a bounded ring of windows, and accumulates exact
run-level totals separately so dropped windows never skew the final
blame vector.  Attaching it never changes simulated behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import UsageError
from repro.telemetry.timeseries import DEFAULT_MAX_WINDOWS, DEFAULT_WINDOW

#: Downstream-congestion fraction above which a stage takes the blame.
DEFAULT_BLAME_THRESHOLD = 0.25

#: Blame stages, deepest (furthest from the SM) first.
BLAME_STAGES = ("dram", "l2", "icnt", "l1", "mem_latency")

#: Stall causes that mean "the L1 could not push a miss downstream".
_QUEUE_CAUSES = frozenset({"stall_missq_full"})


@dataclass(frozen=True)
class AttributionWindow:
    """Cycle accounting and blame for one ``[start, end)`` window."""

    index: int
    start: int
    end: int
    #: Total SM-cycles stepped in the window (summed over SMs); the
    #: ``classes`` partition it exactly.
    sm_cycles: int = 0
    #: class -> SM-cycles in the window (summed over SMs).
    classes: dict[str, int] = field(default_factory=dict)
    #: stall cause -> memory-pipeline stall cycles in the window.
    stalls: dict[str, int] = field(default_factory=dict)
    #: stage -> windowed congestion evidence in [0, 1].
    signals: dict[str, float] = field(default_factory=dict)
    #: stage -> stall cycles blamed on it (sums to the window's stalls).
    blame: dict[str, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready rendition (used by ``RunMetrics.extras``)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "sm_cycles": self.sm_cycles,
            "classes": dict(self.classes),
            "stalls": dict(self.stalls),
            "signals": dict(self.signals),
            "blame": dict(self.blame),
        }


class AttributionProbe:
    """Windowed cycle accounting + blame chains over a simulator.

    Parameters
    ----------
    sim:
        The simulator whose components are read (through
        ``inspect_cycle_classes`` / ``sample_stalls`` / ``sample_queues``
        / ``sample_counters``).
    window:
        Window length in core cycles.
    max_windows:
        Ring-buffer depth for retained windows; run-level totals are
        accumulated separately and stay exact when windows are dropped.
    blame_threshold:
        Minimum windowed congestion fraction for a stage to take blame.
    """

    def __init__(
        self,
        sim,
        *,
        window: int = DEFAULT_WINDOW,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        blame_threshold: float = DEFAULT_BLAME_THRESHOLD,
    ) -> None:
        if window < 1:
            raise UsageError(f"attribution window must be >= 1, got {window}")
        if max_windows < 1:
            raise UsageError(
                f"attribution max_windows must be >= 1, got {max_windows}"
            )
        if not 0.0 < blame_threshold <= 1.0:
            raise UsageError(
                "blame_threshold must be in (0, 1], got "
                f"{blame_threshold}"
            )
        self._sim = sim
        self.window = window
        self.max_windows = max_windows
        self.blame_threshold = blame_threshold
        self._windows: deque[AttributionWindow] = deque(maxlen=max_windows)
        #: Windows evicted from the ring buffer (oldest first).
        self.dropped = 0
        self._window_start = 0
        self._index = 0
        self._finalized = False
        self._scanned = False
        #: Components exposing a cycle-class partition (the SMs).
        self._accounted: list = []
        #: Components exposing per-cause stall counters.
        self._stall_sources: list = []
        #: family -> [StatQueue, ...] for the blame-chain evidence.
        self._queues: dict[str, list] = {}
        # Cumulative snapshots at the previous window boundary.
        self._prev_classes: dict[str, int] = {}
        self._prev_stalls: dict[str, int] = {}
        self._prev_queue_full: dict[str, int] = {}
        self._prev_blocked = 0
        # Exact run-level totals (independent of the window ring).
        self._class_totals: dict[str, int] = {}
        self._stall_totals: dict[str, int] = {}
        self._blame_totals: dict[str, int] = {stage: 0 for stage in BLAME_STAGES}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        gpu,
        *,
        window: int = DEFAULT_WINDOW,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        blame_threshold: float = DEFAULT_BLAME_THRESHOLD,
    ) -> "AttributionProbe":
        """Attach a new probe to a built (not yet run) GPU model."""
        probe = cls(
            gpu.sim,
            window=window,
            max_windows=max_windows,
            blame_threshold=blame_threshold,
        )
        gpu.sim.attach_observer(probe)
        return probe

    def _scan(self) -> None:
        """Discover instrumented components through the hooks."""
        for component in self._sim.components:
            if component.inspect_cycle_classes():
                self._accounted.append(component)
            for _cause, _cycles in component.sample_stalls():
                self._stall_sources.append(component)
                break
            for family, queue in component.sample_queues():
                self._queues.setdefault(family, []).append(queue)
        self._scanned = True

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        """Engine hook: capture a window at each boundary."""
        boundary = now + 1  # the engine has already advanced past ``now``
        if boundary % self.window:
            return
        self._capture(boundary)

    def on_finalize(self, now: int) -> None:
        """Engine hook: close the final (possibly partial) window."""
        if self._finalized:
            return
        self._finalized = True
        self._capture(now)

    # ------------------------------------------------------------------
    # the capture itself
    # ------------------------------------------------------------------
    def _read_classes(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for component in self._accounted:
            for name, count in component.inspect_cycle_classes().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def _read_stalls(self) -> dict[str, int]:
        # All SMs step every cycle, so every stall source is rediscovered
        # here even if it had no stalls at scan time.
        totals: dict[str, int] = {}
        for component in self._sim.components:
            for cause, cycles in component.sample_stalls():
                totals[cause] = totals.get(cause, 0) + cycles
        return totals

    def _read_blocked(self) -> int:
        """Cumulative request-path delivery-blocked port-cycles."""
        total = 0
        for component in self._sim.components:
            for name, value in component.sample_counters():
                if name == "req_xbar_delivery_blocked_cycles":
                    total += int(value)
        return total

    def _queue_full_share(
        self, family: str, length: int, boundary: int
    ) -> float:
        """Fraction of the window the family's queues spent full."""
        queues = self._queues.get(family)
        if not queues:
            return 0.0
        full = sum(q.full_cycles(boundary) for q in queues)
        prev = self._prev_queue_full.get(family, 0)
        self._prev_queue_full[family] = full
        return (full - prev) / (length * len(queues))

    def _capture(self, boundary: int) -> None:
        if not self._scanned:
            self._scan()
        length = boundary - self._window_start
        if length <= 0:
            return

        # --- cycle-class deltas -----------------------------------------
        class_now = self._read_classes()
        classes = {
            name: count - self._prev_classes.get(name, 0)
            for name, count in class_now.items()
        }
        self._prev_classes = class_now
        self._class_totals = class_now
        sm_cycles = classes.pop("cycles", 0)

        # --- stall-cause deltas -----------------------------------------
        stall_now = self._read_stalls()
        stalls = {
            cause: cycles - self._prev_stalls.get(cause, 0)
            for cause, cycles in stall_now.items()
        }
        self._prev_stalls = stall_now
        self._stall_totals = stall_now

        # --- downstream congestion evidence -----------------------------
        blocked_now = self._read_blocked()
        blocked = blocked_now - self._prev_blocked
        self._prev_blocked = blocked_now
        signals = {
            "dram": max(
                self._queue_full_share("dram_schedq", length, boundary),
                self._queue_full_share("l2_missq", length, boundary),
            ),
            "l2": self._queue_full_share("l2_accessq", length, boundary),
            "icnt": min(1.0, blocked / length),
            "l1": self._queue_full_share("l1_missq", length, boundary),
        }

        # --- winner-take-all blame, deepest congested stage first -------
        blame = {stage: 0 for stage in BLAME_STAGES}
        threshold = self.blame_threshold
        for cause, stalled in stalls.items():
            if stalled <= 0:
                continue
            if signals["dram"] >= threshold:
                stage = "dram"
            elif signals["l2"] >= threshold:
                stage = "l2"
            elif signals["icnt"] >= threshold:
                stage = "icnt"
            elif cause in _QUEUE_CAUSES:
                stage = "l1"
            else:
                stage = "mem_latency"
            blame[stage] += stalled
        for stage, stalled in blame.items():
            self._blame_totals[stage] += stalled

        if len(self._windows) == self.max_windows:
            self.dropped += 1  # deque evicts the oldest on append
        self._windows.append(
            AttributionWindow(
                index=self._index,
                start=self._window_start,
                end=boundary,
                sm_cycles=sm_cycles,
                classes=classes,
                stalls=stalls,
                signals=signals,
                blame=blame,
            )
        )
        self._index += 1
        self._window_start = boundary

    # ------------------------------------------------------------------
    # reading the results
    # ------------------------------------------------------------------
    @property
    def windows(self) -> list[AttributionWindow]:
        """Retained windows, oldest first."""
        return list(self._windows)

    def class_totals(self) -> dict[str, int]:
        """Run-level class counts (``"cycles"`` plus the partition)."""
        return dict(self._class_totals)

    def stall_totals(self) -> dict[str, int]:
        """Run-level memory-pipeline stall cycles by cause."""
        return dict(self._stall_totals)

    def blame_totals(self) -> dict[str, int]:
        """Run-level blame vector (stall cycles per stage)."""
        return dict(self._blame_totals)

    def conserved(self) -> bool:
        """True when the accounting classes sum exactly to total cycles."""
        classes = dict(self._class_totals)
        total = classes.pop("cycles", 0)
        return sum(classes.values()) == total

    def summary(self) -> dict:
        """JSON-ready structure for ``RunMetrics.extras['attribution']``."""
        classes = dict(self._class_totals)
        sm_cycles = classes.pop("cycles", 0)
        return {
            "window": self.window,
            "max_windows": self.max_windows,
            "dropped": self.dropped,
            "blame_threshold": self.blame_threshold,
            "sm_cycles": sm_cycles,
            "classes": classes,
            "stalls": self.stall_totals(),
            "blame": self.blame_totals(),
            "conserved": self.conserved(),
            "windows": [w.to_dict() for w in self._windows],
        }
