"""Per-request tracing: Chrome trace events and hop-latency histograms.

Every :class:`~repro.mem.request.MemoryRequest` already records per-hop
``timestamps`` as it travels L1 → crossbar → L2 → DRAM and back.  The
:class:`RequestTracer` samples requests at creation time with a
deterministic stride (no RNG: request *k* is kept iff ``k % stride == 0``,
in factory order, which is itself deterministic for a given seed) and,
after the run, converts each sampled request's itinerary into:

* **Chrome trace-event JSON** — one complete-event ("ph": "X") span per
  consecutive hop pair, placed on the track of the component where the
  span *starts* (one track per component: ``sm0.l1``, ``icnt.request``,
  ``l2_p1``, ``dram_p0``, ...).  One simulated cycle maps to one
  microsecond of trace time.  Load the file in chrome://tracing or
  https://ui.perfetto.dev.
* a **hop-latency histogram registry** — a
  :class:`~repro.utils.stats.Histogram` per hop pair, for latency-tail
  questions ("how long do requests sit between ``l2_miss`` and
  ``dram_in``?") that per-run means cannot answer.

The tracer chains onto the request factory's existing creation listener
(so it composes with the :mod:`repro.analysis` sanitizer) and holds at
most ``limit`` requests; past the cap it only counts, so memory stays
bounded on long runs.
"""

from __future__ import annotations

import json

from repro.errors import UsageError
from repro.utils.stats import Histogram

#: Default stride between sampled requests (1 = trace everything).
DEFAULT_TRACE_STRIDE = 16
#: Default cap on retained requests.
DEFAULT_TRACE_LIMIT = 4_096


def hop_track(hop: str, request, mapper=None) -> str:
    """Component track name for ``hop`` of ``request``.

    The hop vocabulary is owned by the components that stamp it
    (``l1_*`` by the L1, ``icnt_req_*`` / ``icnt_resp_*`` by the
    networks, ``l2_*`` by the slice, ``dram_*`` by the channel); this maps
    each prefix back to the concrete instance using the request's SM id
    and, when an :class:`~repro.mem.address.AddressMapper` is given, its
    line's partition.
    """
    if hop.startswith("icnt_req"):
        return "icnt.request"
    if hop.startswith("icnt_resp"):
        return "icnt.response"
    if hop.startswith("l1"):
        if request.sm_id < 0:
            return "l1"
        return f"sm{request.sm_id}.l1"
    partition = mapper.partition(request.line) if mapper is not None else None
    suffix = "" if partition is None else f"_p{partition}"
    if hop.startswith("l2"):
        return f"l2{suffix}"
    if hop.startswith("dram"):
        return f"dram{suffix}"
    return "other"


class RequestTracer:
    """Stride-samples requests and renders their journeys.

    Parameters
    ----------
    mapper:
        Optional :class:`~repro.mem.address.AddressMapper`; with it, L2
        and DRAM spans land on per-partition tracks.
    stride:
        Keep every ``stride``-th factory-created request.
    limit:
        Hard cap on retained requests (later samples are counted but not
        stored).
    """

    def __init__(
        self,
        mapper=None,
        *,
        stride: int = DEFAULT_TRACE_STRIDE,
        limit: int = DEFAULT_TRACE_LIMIT,
    ) -> None:
        if stride < 1:
            raise UsageError(f"trace stride must be >= 1, got {stride}")
        if limit < 1:
            raise UsageError(f"trace limit must be >= 1, got {limit}")
        self._mapper = mapper
        self.stride = stride
        self.limit = limit
        self._traced: list = []
        #: Factory-created requests observed (sampled or not).
        self.created = 0
        #: Samples skipped because the retention cap was hit.
        self.overflowed = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        gpu,
        *,
        stride: int = DEFAULT_TRACE_STRIDE,
        limit: int = DEFAULT_TRACE_LIMIT,
    ) -> "RequestTracer":
        """Attach to a built GPU, chaining any existing factory listener."""
        tracer = cls(gpu.mapper, stride=stride, limit=limit)
        previous = gpu.factory.listener

        def listener(request):
            if previous is not None:
                previous(request)
            tracer.on_create(request)

        gpu.factory.listener = listener
        return tracer

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def on_create(self, request) -> None:
        """Factory listener: stride-sample one created request."""
        index = self.created
        self.created += 1
        if index % self.stride:
            return
        if len(self._traced) >= self.limit:
            self.overflowed += 1
            return
        self._traced.append(request)

    @property
    def sampled(self) -> int:
        return len(self._traced)

    @property
    def requests(self) -> list:
        """The sampled requests (live objects; timestamps final post-run)."""
        return list(self._traced)

    # ------------------------------------------------------------------
    # Chrome trace rendering
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Render the sampled journeys as a Chrome trace-event object.

        Spans are complete events whose ``ts``/``dur`` are in
        microseconds with one cycle == 1 us; every recorded hop of every
        sampled request appears as a span boundary (``args.begin_hop`` /
        ``args.end_hop``).
        """
        events: list[dict] = []
        tracks: dict[str, int] = {}

        def tid(track: str) -> int:
            if track not in tracks:
                tracks[track] = len(tracks) + 1
            return tracks[track]

        for request in self._traced:
            hops = request.hops()
            if not hops:
                continue
            common = {
                "rid": request.rid,
                "kind": request.kind.value,
                "line": request.line,
                "sm": request.sm_id,
                "warp": request.warp_id,
            }
            if len(hops) == 1:
                hop, cycle = hops[0]
                events.append({
                    "name": hop,
                    "cat": "request",
                    "ph": "X",
                    "ts": cycle,
                    "dur": 0,
                    "pid": 0,
                    "tid": tid(hop_track(hop, request, self._mapper)),
                    "args": {**common, "begin_hop": hop, "end_hop": hop},
                })
                continue
            for (begin, t0), (end, t1) in zip(hops, hops[1:]):
                events.append({
                    "name": f"{begin}->{end}",
                    "cat": "request",
                    "ph": "X",
                    "ts": t0,
                    "dur": t1 - t0,
                    "pid": 0,
                    "tid": tid(hop_track(begin, request, self._mapper)),
                    "args": {**common, "begin_hop": begin, "end_hop": end},
                })

        metadata: list[dict] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro memory hierarchy"},
        }]
        for track, track_id in tracks.items():
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track_id,
                "args": {"name": track},
            })
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro.telemetry.RequestTracer",
                "cycles_per_us": 1,
                "requests_created": self.created,
                "requests_sampled": self.sampled,
                "stride": self.stride,
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        """The Chrome trace as JSON text (compact by default)."""
        return json.dumps(
            self.to_chrome_trace(),
            indent=indent,
            separators=None if indent else (",", ":"),
        )

    # ------------------------------------------------------------------
    # hop-latency histograms
    # ------------------------------------------------------------------
    def hop_histograms(self, bucket_width: int = 8) -> dict[str, Histogram]:
        """``"begin->end" -> Histogram`` over the sampled requests.

        Keys appear in first-traversal order, so the registry reads
        roughly in request-path order.
        """
        registry: dict[str, Histogram] = {}
        for request in self._traced:
            hops = request.hops()
            for (begin, t0), (end, t1) in zip(hops, hops[1:]):
                key = f"{begin}->{end}"
                hist = registry.get(key)
                if hist is None:
                    hist = registry[key] = Histogram(key, bucket_width)
                hist.add(t1 - t0)
        return registry

    def hop_summary(self) -> list[dict]:
        """Per-hop latency digest (count / mean / p50 / p95), JSON-ready."""
        return [
            {
                "hop": key,
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
            }
            for key, hist in self.hop_histograms().items()
        ]
