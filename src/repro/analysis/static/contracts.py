"""REP006-REP008: the Component wake-hint and hook contracts, statically.

The engine's event-horizon fast-forward (PR 4) is only sound when every
:class:`~repro.sim.component.Component` honors three contracts that no
runtime test can exhaustively cover — a subclass added later silently
opts the whole simulation out (a ``None``-returning ``next_wake``) or,
worse, diverges (a float horizon, an unchained ``set_fast_mode``).  This
pass resolves every Component subclass across the scanned tree through
the import graph — no code is executed — and checks:

REP006
    ``next_wake`` overrides keep the base signature ``(self, now)`` and
    every ``return`` yields an allowed form: ``None``, ``WAKE_NEVER``, or
    an integer cycle expression.  Expressions that are provably not
    integers (string/float/bool constants, comparisons, boolean
    operators, f-strings, containers, true division) are flagged;
    anything unprovable is conservatively allowed.

REP007
    ``set_fast_mode`` overrides call ``super().set_fast_mode(...)``
    somewhere in their body, so mode propagation composes down arbitrary
    subclass chains even as the base implementation evolves.

REP008
    Introspection/telemetry hook overrides (``inspect_queues``,
    ``inspect_mshrs``, ``inspect_inflight``, ``sample_queues``,
    ``sample_mshrs``, ``sample_counters``, plus ``step``, ``finalize``,
    ``fast_forward``, ``is_idle``) keep the base-class arity: the
    sanitizer and telemetry probe call them polymorphically, so an extra
    required parameter is a guaranteed runtime ``TypeError`` on an
    opt-in diagnostic path that default test runs never execute.
"""

from __future__ import annotations

import ast

from repro.analysis.static.finding import Finding
from repro.analysis.static.modgraph import ClassInfo, ModuleInfo

#: Fully-qualified name of the contract's root class.
COMPONENT_QUALNAME = "repro.sim.component.Component"

#: Hook name -> required parameter names after ``self`` (REP008).
_HOOK_SIGNATURES: dict[str, tuple[str, ...]] = {
    "inspect_queues": (),
    "inspect_mshrs": (),
    "inspect_inflight": (),
    "sample_queues": (),
    "sample_mshrs": (),
    "sample_counters": (),
    "sample_stalls": (),
    "inspect_cycle_classes": (),
    "is_idle": (),
    "step": ("now",),
    "finalize": ("now",),
    "fast_forward": ("cycles",),
}


def component_subclasses(modules: list[ModuleInfo]) -> list[tuple[ModuleInfo, ClassInfo]]:
    """Every scanned class whose base chain reaches the Component root."""
    by_qualname: dict[str, ClassInfo] = {}
    owners: dict[str, ModuleInfo] = {}
    for module in modules:
        for cls in module.classes:
            by_qualname[cls.qualname] = cls
            owners[cls.qualname] = module

    memo: dict[str, bool] = {COMPONENT_QUALNAME: True}

    def reaches_root(qualname: str, trail: frozenset[str]) -> bool:
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        if qualname in trail:
            return False  # inheritance cycle in broken code; not our rule
        cls = by_qualname.get(qualname)
        if cls is None:
            memo[qualname] = False
            return False
        result = any(
            reaches_root(base, trail | {qualname}) for base in cls.bases
        )
        memo[qualname] = result
        return result

    found: list[tuple[ModuleInfo, ClassInfo]] = []
    for module in modules:
        for cls in module.classes:
            if cls.qualname == COMPONENT_QUALNAME:
                continue
            if reaches_root(cls.qualname, frozenset()):
                found.append((module, cls))
    return found


def _positional_params(node: ast.FunctionDef) -> list[str]:
    args = node.args
    return [arg.arg for arg in args.posonlyargs + args.args]


def _has_star_args(node: ast.FunctionDef) -> bool:
    return node.args.vararg is not None or node.args.kwarg is not None


def _signature_problem(
    node: ast.FunctionDef, expected_after_self: tuple[str, ...]
) -> str | None:
    """Human-readable arity mismatch, or None when the override conforms."""
    if _has_star_args(node):
        return None  # *args/**kwargs forwards anything; always callable
    params = _positional_params(node)
    required = [
        param
        for index, param in enumerate(params)
        if index < len(params) - len(node.args.defaults)
    ]
    base_arity = 1 + len(expected_after_self)  # self + contract params
    if len(required) > base_arity:
        extra = ", ".join(required[base_arity:])
        return (
            f"takes extra required parameter(s) {extra}; base signature is "
            f"(self{''.join(', ' + p for p in expected_after_self)})"
        )
    if len(params) < base_arity:
        want = ", ".join(("self", *expected_after_self))
        return f"takes too few parameters; base signature is ({want})"
    return None


class _NextWakeReturns(ast.NodeVisitor):
    """Collects disallowed return expressions inside one next_wake body."""

    def __init__(self) -> None:
        self.bad: list[tuple[ast.AST, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs have their own, unrelated returns

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._check(node.value)

    def _check(self, expr: ast.expr) -> None:
        verdict = _classify_wake_expr(expr)
        if verdict is not None:
            self.bad.append((expr, verdict))


def _classify_wake_expr(expr: ast.expr) -> str | None:
    """Why ``expr`` is not an allowed next_wake value; None when allowed."""
    if isinstance(expr, ast.Constant):
        value = expr.value
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            return f"returns non-integer constant {value!r}"
        return None
    if isinstance(expr, ast.IfExp):
        return _classify_wake_expr(expr.body) or _classify_wake_expr(expr.orelse)
    if isinstance(expr, (ast.Compare, ast.BoolOp)):
        return "returns a boolean expression, not a cycle number"
    if isinstance(expr, ast.JoinedStr):
        return "returns an f-string, not a cycle number"
    if isinstance(expr, (ast.List, ast.Tuple, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return "returns a container, not a cycle number"
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Div):
            return (
                "returns a true-division result (float); use // for "
                "integer cycle arithmetic"
            )
        return _classify_wake_expr(expr.left) or _classify_wake_expr(expr.right)
    # Names, attributes, calls, subscripts, unary ops: unprovable — allow.
    return None


def check_contracts(modules: list[ModuleInfo]) -> list[Finding]:
    """Run REP006-REP008 over every Component subclass in ``modules``."""
    findings: list[Finding] = []

    def flag(module: ModuleInfo, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(module.source_lines):
            snippet = module.source_lines[line - 1].strip()
        findings.append(
            Finding(rule, module.path, line, col, message, snippet)
        )

    for module, cls in component_subclasses(modules):
        for item in cls.node.body:
            if not isinstance(item, ast.FunctionDef):
                if isinstance(item, ast.AsyncFunctionDef) and (
                    item.name == "next_wake"
                    or item.name == "set_fast_mode"
                    or item.name in _HOOK_SIGNATURES
                ):
                    flag(
                        module, item, "REP008",
                        f"{cls.name}.{item.name} is async; Component hooks "
                        "are called synchronously by the engine",
                    )
                continue
            if item.name == "next_wake":
                problem = _signature_problem(item, ("now",))
                if problem is not None:
                    flag(
                        module, item, "REP006",
                        f"{cls.name}.next_wake {problem}",
                    )
                returns = _NextWakeReturns()
                for statement in item.body:
                    returns.visit(statement)
                for expr, why in returns.bad:
                    flag(
                        module, expr, "REP006",
                        f"{cls.name}.next_wake {why}; allowed forms are "
                        "None, WAKE_NEVER, or an integer cycle expression",
                    )
            elif item.name == "set_fast_mode":
                problem = _signature_problem(item, ("enabled",))
                if problem is not None:
                    flag(
                        module, item, "REP007",
                        f"{cls.name}.set_fast_mode {problem}",
                    )
                if not _calls_super(item, "set_fast_mode"):
                    flag(
                        module, item, "REP007",
                        f"{cls.name}.set_fast_mode never calls "
                        "super().set_fast_mode(...); mode propagation must "
                        "compose down subclass chains",
                    )
            elif item.name in _HOOK_SIGNATURES:
                problem = _signature_problem(item, _HOOK_SIGNATURES[item.name])
                if problem is not None:
                    flag(
                        module, item, "REP008",
                        f"{cls.name}.{item.name} {problem}",
                    )
    return findings


def _calls_super(func: ast.FunctionDef, method: str) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False
