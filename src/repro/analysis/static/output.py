"""Report rendering for the static verifier: text, JSON and SARIF 2.1.0.

The SARIF output is the CI integration surface: GitHub code scanning,
VS Code SARIF viewers and most review tooling ingest it directly.  The
emitter keeps to the stable core of the 2.1.0 schema — tool driver with a
rule table, one ``result`` per finding with a physical location and a
``partialFingerprints`` entry carrying the same content-addressed
fingerprint the baseline uses, so external tooling and the in-repo
baseline agree on finding identity.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.static.baseline import BaselineEntry
from repro.analysis.static.finding import RULES, Finding

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "repro-static"
_TOOL_URI = "https://github.com/repro/repro"  # project docs anchor
_FINGERPRINT_KEY = "reproFingerprint/v1"


def render_text(
    active: list[Finding],
    acknowledged: list[Finding],
    stale: list[BaselineEntry],
) -> str:
    """Human-readable report: one line per active finding, then a summary."""
    lines = [finding.render() for finding in active]
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.fingerprint}: {entry.rule} "
            f"{entry.path} no longer matches any finding — remove it "
            "(or run --update-baseline)"
        )
    summary: list[str] = []
    if active:
        summary.append(f"{len(active)} violation(s)")
    if acknowledged:
        summary.append(f"{len(acknowledged)} baselined")
    if stale:
        summary.append(f"{len(stale)} stale baseline entr(y/ies)")
    if summary:
        lines.append(", ".join(summary))
    return "\n".join(lines)


def _finding_to_dict(finding: Finding) -> dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
    }


def render_json(
    active: list[Finding],
    acknowledged: list[Finding],
    stale: list[BaselineEntry],
) -> str:
    """Machine-readable report with a stable top-level schema."""
    payload: dict[str, Any] = {
        "version": 1,
        "tool": _TOOL_NAME,
        "findings": [_finding_to_dict(f) for f in active],
        "baselined": [_finding_to_dict(f) for f in acknowledged],
        "stale_baseline": [
            {
                "fingerprint": entry.fingerprint,
                "rule": entry.rule,
                "path": entry.path,
                "justification": entry.justification,
            }
            for entry in stale
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(
    active: list[Finding],
    acknowledged: list[Finding],
    stale: list[BaselineEntry],
) -> str:
    """SARIF 2.1.0 log; baselined findings ride along as suppressed results."""
    rules = [
        {
            "id": rule.code,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": rule.severity},
        }
        for rule in sorted(RULES.values(), key=lambda r: r.code)
    ]

    def result(finding: Finding, suppressed: bool) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 0) + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {_FINGERPRINT_KEY: finding.fingerprint},
        }
        if suppressed:
            entry["suppressions"] = [
                {"kind": "external", "justification": "baselined"}
            ]
        return entry

    log: dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": [
                    *(result(f, suppressed=False) for f in active),
                    *(result(f, suppressed=True) for f in acknowledged),
                ],
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"
