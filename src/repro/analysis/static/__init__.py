"""Whole-program static verifier (REP001-REP012).

Extends the classic per-file AST lint into a multi-pass verifier with
cross-file resolution, inline suppressions, a checked-in baseline and
JSON/SARIF reporting.  Pass families:

* **Component contracts** (REP006-008,
  :mod:`repro.analysis.static.contracts`) — every
  :class:`~repro.sim.component.Component` subclass honors the wake-hint
  protocol the engine's fast-forward depends on.
* **Determinism** (REP009-011,
  :mod:`repro.analysis.static.determinism`) — no unordered iteration,
  ``id()`` keys or order-sensitive float reductions feeding metrics or
  dispatch.
* **Layering** (REP012, :mod:`repro.analysis.static.layering`) — the
  module import graph respects the architecture tower and is acyclic.

Entry points: ``repro lint --static`` and ``scripts/lint.py --static``;
programmatic use via :func:`analyze_paths` / :func:`run_static`.
"""

from repro.analysis.static.baseline import Baseline, BaselineEntry
from repro.analysis.static.finding import RULES, Finding, Rule
from repro.analysis.static.runner import StaticReport, analyze_paths, run_static

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "RULES",
    "Rule",
    "StaticReport",
    "analyze_paths",
    "run_static",
]
