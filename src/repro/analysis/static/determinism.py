"""REP009-REP011: the determinism pass.

The runner's ``--jobs N`` byte-identity guarantee (PR 3) and the result
cache's content-addressed keys both assume a stronger property than "same
seed, same metrics": *every* observable ordering — report rows, dispatch
order, accumulated floats — must be reproducible across processes and
interpreter runs.  Three bug classes silently break it:

REP009
    Iterating a ``set``/``frozenset`` expression (literal, constructor
    call, comprehension, or set-algebra result).  Set iteration order
    depends on element hashes and insertion history; under hash
    randomization or across processes it varies, so any metric, report
    line or dispatch decision fed by it diverges.  Wrap the iterable in
    ``sorted(...)`` — the fix the checker recognizes.

REP010
    ``id()``-keyed containers and membership tests.  CPython ids are
    addresses: stable within one process, different in every worker of a
    ``--jobs N`` pool, so an id that reaches a key, an ordering or an
    output is unreproducible by construction.

REP011
    Float reductions (``sum``, ``math.fsum``, ``statistics.mean`` /
    ``fmean``) over unordered iterables in the hot-path packages.  Float
    addition is not associative; summing a set accumulates in arbitrary
    order and the low bits of the result — which the byte-identity tests
    compare — differ run to run.

The pass runs per module; a simple single-assignment local-name analysis
lets it track ``s = set(...)`` followed by ``for x in s`` within one
function body.
"""

from __future__ import annotations

import ast

from repro.analysis.lint import HOT_PACKAGES
from repro.analysis.static.finding import Finding
from repro.analysis.static.modgraph import ModuleInfo

_SET_CONSTRUCTORS = {"set", "frozenset"}
_ORDERING_CALLS = {"sorted"}
_REDUCTIONS = {"sum", "fsum", "mean", "fmean"}
_KEYED_METHODS = {"add", "get", "setdefault", "pop", "discard", "remove",
                  "append"}
#: Consumers whose result does not depend on iteration order; a generator
#: feeding one of these is exempt from REP009 (float ``sum`` order
#: sensitivity is REP011's concern, scoped to the hot-path packages).
_ORDER_INSENSITIVE = {"any", "all", "min", "max", "len", "set", "frozenset",
                      "sorted", "sum", "fsum", "mean", "fmean"}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


class _FunctionScope:
    """Names bound exactly once to a set expression in one function body."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.reassigned: set[str] = set()

    def note_binding(self, name: str, is_set: bool) -> None:
        if name in self.set_names or name in self.reassigned:
            self.set_names.discard(name)
            self.reassigned.add(name)
        elif is_set:
            self.set_names.add(name)
        else:
            self.reassigned.add(name)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo, hot: bool) -> None:
        self.module = module
        self.hot = hot
        self.findings: list[Finding] = []
        self._scopes: list[_FunctionScope] = []
        #: (line, col) of generator expressions feeding order-insensitive
        #: consumers; exempt from REP009.
        self._order_free: set[tuple[int, int]] = set()

    # -- plumbing ------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.module.source_lines):
            snippet = self.module.source_lines[line - 1].strip()
        self.findings.append(
            Finding(rule, self.module.path, line, col, message, snippet)
        )

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference")
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name) and self._scopes:
            return node.id in self._scopes[-1].set_names
        return False

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(_FunctionScope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.append(_FunctionScope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scopes:
            is_set = self._is_set_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].note_binding(target.id, is_set)
        self._check_id_keys_in_dict(node.value)
        self.generic_visit(node)

    # -- REP009: unordered iteration -----------------------------------
    def _check_iteration(self, iterable: ast.expr) -> None:
        node = iterable
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _ORDERING_CALLS:
                return  # sorted(...) fixes the order by definition
            if name in ("enumerate", "list", "tuple", "reversed") and node.args:
                self._check_iteration(node.args[0])
                return
        if self._is_set_expr(node):
            self._flag(
                node, "REP009",
                "iteration over an unordered set expression; wrap it in "
                "sorted(...) so downstream metrics and dispatch order are "
                "deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_generators(
        self, generators: list[ast.comprehension]
    ) -> None:
        for comp in generators:
            self._check_iteration(comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if (node.lineno, node.col_offset) not in self._order_free:
            self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # Building a set FROM a set is order-insensitive; don't descend into
    # the generators of a SetComp for REP009 purposes, but keep walking
    # for nested constructs.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    # -- REP010: id()-keyed containers ---------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_id_call(node.slice):
            self._flag(
                node, "REP010",
                "id() used as a container key; object addresses differ "
                "across worker processes and break byte-identical output",
            )
        self.generic_visit(node)

    def _check_id_keys_in_dict(self, node: ast.expr) -> None:
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and _is_id_call(key):
                    self._flag(
                        key, "REP010",
                        "id() used as a dict-literal key; object addresses "
                        "differ across worker processes",
                    )

    def visit_Dict(self, node: ast.Dict) -> None:
        self._check_id_keys_in_dict(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            if _is_id_call(node.left):
                self._flag(
                    node, "REP010",
                    "id()-based membership test; object addresses differ "
                    "across worker processes",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = _call_name(node)
        if callee in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._order_free.add((arg.lineno, arg.col_offset))
        if isinstance(func, ast.Attribute) and func.attr in _KEYED_METHODS:
            for arg in node.args:
                if _is_id_call(arg):
                    self._flag(
                        node, "REP010",
                        f"id() passed to .{func.attr}(); address-keyed "
                        "bookkeeping breaks cross-process determinism",
                    )
                    break
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._flag(
                    node, "REP010",
                    "sort key=id orders by object address; order differs "
                    "across worker processes",
                )
        # REP011: float reductions over unordered iterables (hot paths).
        if self.hot:
            name = _call_name(node)
            if name in _REDUCTIONS and node.args:
                target = node.args[0]
                if isinstance(target, ast.GeneratorExp):
                    if any(
                        self._is_set_expr(comp.iter)
                        for comp in target.generators
                    ):
                        self._flag(
                            node, "REP011",
                            f"{name}() over a generator driven by a set; "
                            "float accumulation order is arbitrary — sort "
                            "the iterable first",
                        )
                elif self._is_set_expr(target):
                    self._flag(
                        node, "REP011",
                        f"{name}() over an unordered set; float "
                        "accumulation order is arbitrary — sort the "
                        "iterable first",
                    )
        self.generic_visit(node)


def check_determinism(module: ModuleInfo) -> list[Finding]:
    """Run REP009-REP011 over one parsed module."""
    from pathlib import Path

    parts = Path(module.path).parts
    hot = "repro" in parts and any(pkg in parts for pkg in HOT_PACKAGES)
    visitor = _DeterminismVisitor(module, hot)
    visitor.visit(module.tree)
    return visitor.findings
