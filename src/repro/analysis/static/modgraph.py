"""Module parsing and import-graph construction for the whole-program passes.

The verifier's cross-file passes (component contracts, layering) need two
things no per-file AST walk provides: a *module identity* for every file
(``src/repro/cache/l1.py`` is ``repro.cache.l1``) and the *module-level
import edges* between them.  This module parses each file once, derives
its dotted name from the last ``repro`` directory on its path (so fixture
trees shaped like ``.../repro/<pkg>/bad.py`` resolve exactly like the real
package), and records:

* every module-level import edge, with the source line — function-local
  imports are deliberate lazy deferrals and create no import-time
  dependency, and imports under ``if TYPE_CHECKING:`` are erased at
  runtime, so neither contributes an edge;
* every top-level class definition, with its base-class names resolved
  through the module's import aliases to fully-qualified dotted names, so
  the contract checker can walk subclass chains across files without
  executing anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import UsageError


@dataclass(slots=True)
class ImportEdge:
    """One module-level import: ``module`` imports ``target``.

    For ``from X import a, b`` statements, ``names`` carries the imported
    names so the layering pass can refine the edge: ``from repro import
    errors`` is an import *of the errors submodule*, not of the root
    package — the distinction between attribute and submodule imports is
    resolved against the scanned module set (falling back to the layer
    table for modules outside the scan).
    """

    target: str
    line: int
    names: tuple[str, ...] = ()


@dataclass(slots=True)
class ClassInfo:
    """One top-level class definition with resolved base names."""

    qualname: str  # e.g. ``repro.cores.sm.SM``
    name: str
    line: int
    #: Fully-qualified base names where resolvable, raw dotted names
    #: otherwise (builtins, stdlib bases).
    bases: tuple[str, ...]
    node: ast.ClassDef


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source file."""

    path: str
    name: str | None  # dotted module name; None outside any ``repro`` tree
    tree: ast.Module
    source_lines: list[str]
    imports: list[ImportEdge] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    #: local name -> fully-qualified dotted name, from import statements.
    aliases: dict[str, str] = field(default_factory=dict)


def module_name_for(path: str) -> str | None:
    """Dotted module name for ``path``, anchored at its ``repro`` directory.

    ``src/repro/cache/l1.py`` -> ``repro.cache.l1``;
    ``tests/fixtures/static/repro/cache/bad.py`` -> ``repro.cache.bad``;
    a path containing no ``repro`` directory has no module identity.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    anchor = -1
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor < 0:
        return None
    dotted = parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether ``test`` is the conventional ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: str | None, level: int, base: str | None) -> str | None:
    """Absolute dotted target of a ``from . import x``-style statement."""
    if module is None:
        return None
    package_parts = module.split(".")[:-1]  # the module's own package
    if level - 1 > len(package_parts):
        return None
    anchor = package_parts[: len(package_parts) - (level - 1)]
    if base:
        anchor = anchor + base.split(".")
    return ".".join(anchor) if anchor else None


class _ModuleScanner:
    """Collects imports, aliases and classes from one module's AST."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    def scan(self) -> None:
        self._scan_body(self.info.tree.body)
        for statement in self.info.tree.body:
            if isinstance(statement, ast.ClassDef):
                self._record_class(statement)

    # -- module-level imports ------------------------------------------
    def _scan_body(self, body: list[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, ast.Import):
                self._record_import(statement)
            elif isinstance(statement, ast.ImportFrom):
                self._record_import_from(statement)
            elif isinstance(statement, ast.If):
                if _is_type_checking_test(statement.test):
                    # Erased at runtime: aliases still resolve names used
                    # in annotations, but no import edge is recorded.
                    self._collect_aliases_only(statement.body)
                    self._scan_body(statement.orelse)
                else:
                    self._scan_body(statement.body)
                    self._scan_body(statement.orelse)
            elif isinstance(statement, ast.Try):
                self._scan_body(statement.body)
                for handler in statement.handlers:
                    self._scan_body(handler.body)
                self._scan_body(statement.orelse)
                self._scan_body(statement.finalbody)

    def _collect_aliases_only(self, body: list[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, ast.Import):
                self._record_import(statement, edge=False)
            elif isinstance(statement, ast.ImportFrom):
                self._record_import_from(statement, edge=False)

    def _record_import(self, node: ast.Import, *, edge: bool = True) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.info.aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.info.aliases[alias.asname] = alias.name
            if edge and alias.name.split(".")[0] == "repro":
                self.info.imports.append(ImportEdge(alias.name, node.lineno))

    def _record_import_from(
        self, node: ast.ImportFrom, *, edge: bool = True
    ) -> None:
        if node.level:
            target = _resolve_relative(self.info.name, node.level, node.module)
        else:
            target = node.module
        if target is None:
            return
        names: list[str] = []
        for alias in node.names:
            if alias.name == "*":
                continue
            names.append(alias.name)
            local = alias.asname or alias.name
            self.info.aliases[local] = f"{target}.{alias.name}"
        if edge and target.split(".")[0] == "repro":
            self.info.imports.append(
                ImportEdge(target, node.lineno, tuple(names))
            )

    # -- classes -------------------------------------------------------
    def _record_class(self, node: ast.ClassDef) -> None:
        bases: list[str] = []
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is None:
                continue
            bases.append(self._qualify(dotted))
        qualname = (
            f"{self.info.name}.{node.name}"
            if self.info.name
            else f"{self.info.path}::{node.name}"
        )
        self.info.classes.append(
            ClassInfo(qualname, node.name, node.lineno, tuple(bases), node)
        )
        # Locally-defined classes are referencable as bases further down.
        self.info.aliases.setdefault(node.name, qualname)

    def _qualify(self, dotted: str) -> str:
        head, _, tail = dotted.partition(".")
        resolved = self.info.aliases.get(head)
        if resolved is None:
            return dotted
        return f"{resolved}.{tail}" if tail else resolved


def _dotted_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def parse_module(path: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises UsageError on bad syntax)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise UsageError(
            f"{path}: cannot analyze, syntax error: {exc}"
        ) from exc
    info = ModuleInfo(
        path=str(path),
        name=module_name_for(str(path)),
        tree=tree,
        source_lines=source.splitlines(),
    )
    _ModuleScanner(info).scan()
    return info


def build_modules(files: list[Path]) -> list[ModuleInfo]:
    """Parse every file once, in deterministic path order."""
    return [parse_module(path) for path in sorted(files)]
