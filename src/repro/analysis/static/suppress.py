"""Inline suppression comments for the static verifier.

A finding is silenced by a comment on its physical line, in either of two
spellings:

* ``# repro: noqa[REP006]`` — the verifier's own syntax; several codes
  separated by commas (``# repro: noqa[REP006,REP009]``), or bare
  ``# repro: noqa`` to silence every rule on the line.
* ``# noqa: REP006`` — the classic AST-lint syntax, honoured here too so
  one spelling works across both halves of the tooling.

Suppressions are parsed from raw source lines (not the AST) so they work
on any line a pass can flag, including import statements and decorators.
"""

from __future__ import annotations

import re

#: Sentinel meaning "every rule suppressed on this line".
ALL_CODES = "*"

_REPRO_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<codes>[A-Z0-9,\s]*)\])?", re.IGNORECASE
)
_CLASSIC_NOQA = re.compile(
    r"#\s*noqa(?::?\s*(?P<codes>[A-Z0-9,\[\]\s]+))?", re.IGNORECASE
)


def codes_suppressed_on(line_text: str) -> frozenset[str]:
    """Rule codes suppressed by comments on one physical source line.

    Returns the matched codes upper-cased; a bare suppression (no code
    list) yields ``{ALL_CODES}``.
    """
    suppressed: set[str] = set()
    match = _REPRO_NOQA.search(line_text)
    if match is None:
        match = _CLASSIC_NOQA.search(line_text)
    if match is None:
        return frozenset()
    codes = match.group("codes")
    if codes is None:
        return frozenset((ALL_CODES,))
    tokens = [
        token
        for token in re.split(r"[,\s\[\]]+", codes.upper())
        if token
    ]
    if not tokens:
        return frozenset((ALL_CODES,))
    suppressed.update(tokens)
    return frozenset(suppressed)


def is_suppressed(source_lines: list[str], line: int, code: str) -> bool:
    """Whether rule ``code`` is silenced on 1-based ``line``."""
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    if "noqa" not in text and "NOQA" not in text:
        return False
    codes = codes_suppressed_on(text)
    return ALL_CODES in codes or code in codes
