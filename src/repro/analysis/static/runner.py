"""Orchestration for the whole-program static verifier.

One invocation parses every target file once, then runs:

1. the classic per-file AST rules (REP001-005, via
   :func:`repro.analysis.lint.lint_source`) — wrapped into
   :class:`~repro.analysis.static.finding.Finding` objects so one
   baseline, one SARIF log and one exit code cover the whole surface;
2. the component-contract checker (REP006-008) over every Component
   subclass resolved through the import graph;
3. the determinism pass (REP009-011) per module;
4. the architecture-layering pass (REP012) over the module graph.

Inline suppressions (``# repro: noqa[REPxxx]``) are honoured for the
whole-program rules; the classic rules keep applying their own ``noqa``
handling inside ``lint_source`` (which also understands the bracketed
spelling).  Findings surviving suppression are then partitioned against
the baseline; only *active* findings fail the run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint import lint_source
from repro.analysis.static.baseline import (
    Baseline,
    BaselineEntry,
    load_default,
)
from repro.analysis.static.contracts import check_contracts
from repro.analysis.static.determinism import check_determinism
from repro.analysis.static.finding import Finding
from repro.analysis.static.layering import check_layering
from repro.analysis.static.modgraph import ModuleInfo, build_modules
from repro.analysis.static.output import render_json, render_sarif, render_text
from repro.analysis.static.suppress import is_suppressed
from repro.errors import UsageError


@dataclass(slots=True)
class StaticReport:
    """Everything one verifier run produced."""

    active: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(self.active, self.baselined, self.stale)
        if fmt == "sarif":
            return render_sarif(self.active, self.baselined, self.stale)
        return render_text(self.active, self.baselined, self.stale)


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise UsageError(f"{raw}: not a python file or directory")
    return files


def _classic_findings(module: ModuleInfo) -> list[Finding]:
    source = "\n".join(module.source_lines)
    return [
        Finding(
            rule=violation.code,
            path=module.path,
            line=violation.line,
            col=violation.col,
            message=violation.message,
            snippet=(
                module.source_lines[violation.line - 1].strip()
                if 1 <= violation.line <= len(module.source_lines)
                else ""
            ),
        )
        for violation in lint_source(source, module.path)
    ]


def analyze_paths(
    paths: list[str], *, baseline: Baseline | None = None
) -> StaticReport:
    """Run every pass over ``paths`` and partition against ``baseline``."""
    modules = build_modules(_collect_files(paths))
    raw: list[Finding] = []
    for module in modules:
        raw.extend(_classic_findings(module))
        raw.extend(check_determinism(module))
    raw.extend(check_contracts(modules))
    raw.extend(check_layering(modules))

    # Inline suppressions for the whole-program rules (classic rules are
    # already filtered inside lint_source).
    lines_by_path = {m.path: m.source_lines for m in modules}
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        source_lines = lines_by_path.get(finding.path, [])
        if finding.rule > "REP005" and is_suppressed(
            source_lines, finding.line, finding.rule
        ):
            suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    report = StaticReport(suppressed=suppressed, files_scanned=len(modules))
    if baseline is None:
        baseline = Baseline.empty()
    report.active, report.baselined, report.stale = baseline.split(kept)
    return report


def run_static(
    paths: list[str],
    *,
    fmt: str = "text",
    output: str | None = None,
    baseline_path: str | None = None,
    update_baseline: bool = False,
    no_baseline: bool = False,
) -> int:
    """CLI body for ``repro lint --static``; returns the process exit code."""
    if not paths:
        paths = ["src"]
    baseline = Baseline.empty() if no_baseline else load_default(baseline_path)
    report = analyze_paths(paths, baseline=baseline)

    if update_baseline:
        target = baseline.path or Path(
            baseline_path or ".repro-static-baseline.json"
        )
        count = baseline.save(
            target, report.active + report.baselined
        )
        print(f"baseline: wrote {count} entr(y/ies) to {target}")
        return 0

    rendered = report.render(fmt)
    if output is not None:
        Path(output).write_text(rendered, encoding="utf-8")
        summary = render_text(report.active, report.baselined, report.stale)
        if summary:
            print(summary)
        print(f"wrote {fmt} report to {output}")
    elif rendered:
        print(rendered)
    if report.exit_code == 0 and fmt == "text" and output is None:
        print(
            f"static verifier: {report.files_scanned} file(s) clean "
            f"({len(report.baselined)} baselined, "
            f"{report.suppressed} suppressed inline)",
            file=sys.stderr,
        )
    return report.exit_code
