"""REP012: architecture layering over the module import graph.

The simulator's packages form a strict tower — each layer may import only
itself and the layers beneath it:

.. code-block:: text

    cli, __main__                  (entry points)
      service                      (daemon, socket server, client)
        core, runner               (experiments, batch execution)
          telemetry, analysis      (observability, verification)
            gpu                    (system assembly)
              workloads            (kernels, traces)
                cores              (SM, warps, coalescer)
                  cache, dram, icnt  (memory-system components)
                    mem            (requests, queues, pipes, addressing)
                      sim          (engine, clocks, Component, config)
                        utils      (stats, tables, export helpers)
                          errors   (exception hierarchy)

``core`` and ``runner`` share a layer deliberately: experiment drivers
fan out through the runner while the runner's jobs execute experiment
kernels, a mutual *package* relationship that stays acyclic at module
granularity — which is exactly what this pass checks.  Only module-level
imports count (function-local imports are deliberate lazy deferrals;
``TYPE_CHECKING`` imports are erased at runtime); the pass rejects any
upward import and any module-level import cycle.
"""

from __future__ import annotations

from repro.analysis.static.finding import Finding
from repro.analysis.static.modgraph import ModuleInfo

#: Layer tower, lowest first.  An entry is the first dotted component
#: after ``repro`` (``""`` is the package root itself, an entry point:
#: its ``__init__`` re-exports the public API from every layer).
LAYERS: tuple[tuple[str, ...], ...] = (
    ("errors",),
    ("utils",),
    ("sim",),
    ("mem",),
    ("cache", "dram", "icnt"),
    ("cores",),
    ("workloads",),
    ("gpu",),
    ("telemetry", "analysis"),
    ("core", "runner"),
    ("service",),
    ("cli", "__main__", ""),
)

_LAYER_OF: dict[str, int] = {
    package: rank
    for rank, packages in enumerate(LAYERS)
    for package in packages
}


def layer_of(module_name: str) -> int | None:
    """Layer rank of a dotted ``repro.*`` module name (None if unknown)."""
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    package = parts[1] if len(parts) > 1 else ""
    return _LAYER_OF.get(package)


def _layer_label(rank: int) -> str:
    return "/".join(name or "repro" for name in LAYERS[rank])


def _refined_targets(
    target: str, names: tuple[str, ...], known: set[str]
) -> list[str]:
    """Concrete module targets of one import edge.

    ``from repro import errors`` depends on ``repro.errors``, not on the
    root package; a name is treated as a submodule when the dotted
    candidate is in the scanned set or names a known layer package, and
    as a plain attribute of ``target`` otherwise.
    """
    if not names:
        return [target]
    refined: list[str] = []
    for name in names:
        candidate = f"{target}.{name}"
        if candidate in known or layer_of(candidate) is not None:
            refined.append(candidate)
        else:
            refined.append(target)
    return refined


def check_layering(modules: list[ModuleInfo]) -> list[Finding]:
    """Run REP012: upward-import and cycle detection over ``modules``."""
    findings: list[Finding] = []
    by_name = {m.name: m for m in modules if m.name is not None}

    def flag(module: ModuleInfo, line: int, message: str) -> None:
        snippet = ""
        if 1 <= line <= len(module.source_lines):
            snippet = module.source_lines[line - 1].strip()
        findings.append(
            Finding("REP012", module.path, line, 0, message, snippet)
        )

    # -- upward imports ------------------------------------------------
    for module in modules:
        if module.name is None:
            continue
        own_layer = layer_of(module.name)
        if own_layer is None:
            continue  # unknown package: not part of the tower (fixtures)
        for edge in module.imports:
            for target in _refined_targets(
                edge.target, edge.names, set(by_name)
            ):
                target_layer = layer_of(target)
                if target_layer is None:
                    continue
                if target_layer > own_layer:
                    flag(
                        module, edge.line,
                        f"{module.name} (layer {_layer_label(own_layer)!r}) "
                        f"imports {target} (layer "
                        f"{_layer_label(target_layer)!r}); imports must "
                        "point downward in the architecture tower",
                    )

    # -- module-level import cycles ------------------------------------
    # Edges restricted to modules present in this scan; an imported
    # *package* name resolves to its __init__ module when scanned.
    graph: dict[str, list[tuple[str, int]]] = {}
    for module in modules:
        if module.name is None:
            continue
        edges: list[tuple[str, int]] = []
        for edge in module.imports:
            for target in _refined_targets(
                edge.target, edge.names, set(by_name)
            ):
                while target and target not in by_name:
                    target = target.rpartition(".")[0]
                if target and target != module.name:
                    edges.append((target, edge.line))
        graph[module.name] = edges

    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {name: WHITE for name in graph}
    reported: set[frozenset[str]] = set()

    def dfs(name: str, stack: list[tuple[str, int]]) -> None:
        color[name] = GRAY
        for target, line in graph.get(name, ()):
            if color.get(target, BLACK) == GRAY:
                members = [n for n, _ in stack]
                start = members.index(target) if target in members else 0
                cycle = members[start:] + [target]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    module = by_name[name]
                    flag(
                        module, line,
                        "module-level import cycle: " + " -> ".join(cycle),
                    )
            elif color.get(target, BLACK) == WHITE:
                dfs(target, stack + [(target, line)])
        color[name] = BLACK

    for name in sorted(graph):
        if color[name] == WHITE:
            dfs(name, [(name, 1)])

    return findings
