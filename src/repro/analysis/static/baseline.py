"""The checked-in findings baseline: incremental adoption without decay.

A baseline entry acknowledges one existing finding by fingerprint so the
verifier can gate *new* violations immediately while the acknowledged
ones are fixed (or kept, with a recorded justification).  Mechanics:

* a finding whose fingerprint appears in the baseline is demoted from
  the failing set and reported only in the summary count;
* a baseline entry matching *no* current finding is **stale** — the
  violation was fixed or the code deleted — and is reported so the file
  shrinks monotonically; ``--update-baseline`` rewrites the file from
  the current findings, dropping stale entries and preserving the
  justifications of the ones that remain.

Fingerprints hash rule id + root-independent path + flagged line text
(see :mod:`repro.analysis.static.finding`), so line-number drift does not
invalidate entries but any edit to the flagged line itself does — a
changed line is a changed violation and must be re-acknowledged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.static.finding import Finding
from repro.errors import UsageError

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE_NAME = ".repro-static-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One acknowledged finding."""

    fingerprint: str
    rule: str
    path: str
    message: str
    justification: str = ""


@dataclass(slots=True)
class Baseline:
    """The parsed baseline file."""

    entries: dict[str, BaselineEntry]
    path: Path | None = None

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise UsageError(
                f"{path}: baseline is not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, dict) or raw.get("version") != _FORMAT_VERSION:
            raise UsageError(
                f"{path}: unsupported baseline format "
                f"(want version {_FORMAT_VERSION})"
            )
        entries: dict[str, BaselineEntry] = {}
        for item in raw.get("entries", []):
            entry = BaselineEntry(
                fingerprint=str(item["fingerprint"]),
                rule=str(item.get("rule", "")),
                path=str(item.get("path", "")),
                message=str(item.get("message", "")),
                justification=str(item.get("justification", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries, path=path)

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition ``findings`` against the baseline.

        Returns ``(active, acknowledged, stale)``: findings not in the
        baseline, findings silenced by it, and entries matching nothing.
        """
        active: list[Finding] = []
        acknowledged: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in self.entries:
                matched.add(fingerprint)
                acknowledged.append(finding)
            else:
                active.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in matched
        ]
        return active, acknowledged, stale

    def save(self, path: Path, findings: list[Finding]) -> int:
        """Rewrite the baseline from ``findings``; returns the entry count.

        Justifications of entries that still match are preserved; brand
        new entries get a placeholder demanding a written rationale.
        """
        entries = []
        seen: set[str] = set()
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            fingerprint = finding.fingerprint
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            previous = self.entries.get(fingerprint)
            entries.append({
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "justification": (
                    previous.justification
                    if previous is not None and previous.justification
                    else "TODO: justify or fix"
                ),
            })
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return len(entries)


def load_default(explicit: str | None) -> Baseline:
    """Load the baseline for a run.

    ``explicit`` names a file that must exist; otherwise the default
    baseline file is used when present and an empty baseline when not.
    """
    if explicit is not None:
        path = Path(explicit)
        if not path.is_file():
            raise UsageError(f"{explicit}: baseline file not found")
        return Baseline.load(path)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file():
        return Baseline.load(default)
    return Baseline.empty()
