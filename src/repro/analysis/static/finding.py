"""The :class:`Finding` model and the rule registry for the static verifier.

A finding is one rule violation at one source location, plus the metadata
the reporting layer needs: a severity (mapped onto SARIF levels), and a
*fingerprint* — a content-addressed identity that survives line-number
drift so the checked-in baseline keeps matching a finding after unrelated
edits above it.

The registry (:data:`RULES`) is the single source of truth for rule ids,
one-line summaries and default severities; the SARIF emitter, the CLI help
and the docs table all derive from it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import PurePosixPath

#: Severity levels, in increasing order of gravity.  These map 1:1 onto
#: SARIF ``level`` values ("note" / "warning" / "error").
SEVERITIES = ("note", "warning", "error")


@dataclass(frozen=True, slots=True)
class Rule:
    """Metadata for one rule id."""

    code: str
    summary: str
    severity: str = "error"


#: Every rule the verifier can emit, classic AST lint included (the static
#: runner wraps REP001-005 so one invocation covers the whole contract
#: surface with one baseline and one SARIF report).
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule("REP001", "no unseeded global RNG or wall-clock reads"),
        Rule("REP002", "no assert for protocol violations (stripped by -O)"),
        Rule("REP003", "raised exceptions derive from ReproError"),
        Rule("REP004", "hot-path dataclasses declare slots=True"),
        Rule("REP005", "no attribute assignment through a frozen config"),
        Rule(
            "REP006",
            "Component.next_wake overrides return only None, WAKE_NEVER "
            "or integer cycle expressions, with the base signature",
        ),
        Rule(
            "REP007",
            "Component.set_fast_mode overrides chain to super()",
        ),
        Rule(
            "REP008",
            "Component inspect_*/sample_* hook overrides match the base "
            "class signatures",
        ),
        Rule(
            "REP009",
            "no iteration over unordered set expressions (arbitrary order "
            "feeds metrics or dispatch decisions)",
            severity="warning",
        ),
        Rule(
            "REP010",
            "no id()-keyed containers or membership tests (addresses vary "
            "across processes and break byte-identical output)",
            severity="warning",
        ),
        Rule(
            "REP011",
            "no float reductions (sum/fsum/mean) over unordered iterables "
            "in hot-path packages (accumulation order varies)",
            severity="warning",
        ),
        Rule(
            "REP012",
            "module imports respect the architecture layering and form no "
            "cycles",
        ),
    )
}


def _fingerprint_path(path: str) -> str:
    """Root-independent rendition of ``path`` for fingerprinting.

    The suffix starting at the last ``repro`` directory (``src/repro/x.py``
    and ``repro/x.py`` fingerprint identically); falls back to the file
    name so scans launched from different roots still match the baseline.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1] if parts else path


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stripped text of the flagged physical line; the stable ingredient
    #: of the fingerprint (line *numbers* drift, line *content* rarely).
    snippet: str = ""

    @property
    def severity(self) -> str:
        rule = RULES.get(self.rule)
        return rule.severity if rule is not None else "error"

    @property
    def fingerprint(self) -> str:
        """Content-addressed identity used by the baseline.

        Built from the rule id, the root-independent path and the flagged
        line's stripped text — not the line number — so a baseline entry
        keeps matching while unrelated lines are added or removed above
        the finding.
        """
        payload = "\x1f".join(
            (self.rule, _fingerprint_path(self.path), self.snippet)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
