"""Pure invariant predicates over simulator bookkeeping structures.

Each function inspects one kind of structure and returns a list of
human-readable problem descriptions (empty when the invariant holds).  The
:class:`~repro.analysis.sanitizer.Sanitizer` aggregates these into a
:class:`~repro.errors.SanitizerError`; keeping the predicates free of
engine state makes them directly unit-testable against hand-built
structures.

Checked contracts
-----------------
* **Queue bounds** — a :class:`~repro.mem.queue.StatQueue` never exceeds
  its capacity, and its push/pop counters account exactly for its current
  occupancy (``pushes - pops == len``).
* **Timestamp monotonicity** — the per-hop timestamps a request collects
  are non-decreasing in stamp order and never lie in the future.  A
  decreasing pair means two components disagreed about time; a future
  stamp means a component stamped with the wrong cycle argument.
* **MSHR integrity** — a table holds at most ``capacity`` entries, its
  allocation/release counters account for the live entry count, every
  entry carries between 1 and ``max_merge`` requests all targeting the
  entry's line, and no entry outlives its requests (an entry whose
  requests have all retired is a *leak*: the fill that should have
  released it was lost).
* **Cycle-accounting conservation** — a component exposing
  ``inspect_cycle_classes`` partitions its stepped cycles exhaustively:
  the class counts sum exactly to its total cycles, the invariant the
  :mod:`repro.telemetry.attribution` layer is built on.
"""

from __future__ import annotations

from typing import Any


def queue_bound_violations(queues: Any) -> list[str]:
    """Capacity and conservation-of-occupancy checks for bounded queues."""
    problems: list[str] = []
    for queue in queues:
        occupancy = len(queue)
        if occupancy > queue.capacity:
            problems.append(
                f"queue {queue.name!r} holds {occupancy} items, over its "
                f"capacity of {queue.capacity}"
            )
        if queue.pushes - queue.pops != occupancy:
            problems.append(
                f"queue {queue.name!r} accounting broken: "
                f"{queue.pushes} pushes - {queue.pops} pops != "
                f"{occupancy} resident items"
            )
    return problems


def timestamp_violations(request: Any, now: int) -> list[str]:
    """Per-hop timestamp sanity for one request.

    Timestamps are stored in stamp order (dict insertion order); a request
    only moves forward in time, so the sequence must be non-decreasing and
    bounded by the current cycle.
    """
    problems: list[str] = []
    prev_hop: str | None = None
    prev_time: int | None = None
    for hop, stamped in request.timestamps.items():
        if stamped < 0 or stamped > now:
            problems.append(
                f"request #{request.rid}: hop {hop!r} stamped at cycle "
                f"{stamped}, outside [0, {now}]"
            )
        if prev_time is not None and stamped < prev_time:
            problems.append(
                f"request #{request.rid}: hop {hop!r} at cycle {stamped} "
                f"precedes earlier hop {prev_hop!r} at cycle {prev_time}"
            )
        prev_hop, prev_time = hop, stamped
    return problems


def mshr_violations(table: Any) -> list[str]:
    """Structural and leak checks for one MSHR table."""
    problems: list[str] = []
    live = len(table)
    if live > table.capacity:
        problems.append(
            f"MSHR {table.name!r} holds {live} entries, over its capacity "
            f"of {table.capacity}"
        )
    if table.allocations - table.releases != live:
        problems.append(
            f"MSHR {table.name!r} accounting broken: {table.allocations} "
            f"allocations - {table.releases} releases != {live} live entries"
        )
    for entry in table.entries():
        if not entry.requests:
            problems.append(
                f"MSHR {table.name!r}: entry for line {entry.line:#x} has "
                "no requests"
            )
            continue
        if len(entry.requests) > table.max_merge:
            problems.append(
                f"MSHR {table.name!r}: entry for line {entry.line:#x} "
                f"holds {len(entry.requests)} requests, over max_merge "
                f"{table.max_merge}"
            )
        for request in entry.requests:
            if request.line != entry.line:
                problems.append(
                    f"MSHR {table.name!r}: request #{request.rid} for line "
                    f"{request.line:#x} filed under entry {entry.line:#x}"
                )
        if all(request.retired for request in entry.requests):
            problems.append(
                f"MSHR {table.name!r}: leaked entry for line "
                f"{entry.line:#x} (all {len(entry.requests)} merged "
                "requests already retired, entry never released)"
            )
    return problems


def cycle_accounting_violations(component: Any) -> list[str]:
    """Exact conservation of the cycle-accounting partition.

    A component that implements ``inspect_cycle_classes`` promises that
    its accounting classes partition its total cycles: every stepped cycle
    lands in exactly one class, so the class counts sum to ``cycles`` at
    every cycle boundary.  A shortfall means a cycle escaped
    classification; an excess means a cycle was double-counted — either
    way the attribution built on top of the partition would silently lie.
    """
    classes = dict(component.inspect_cycle_classes())
    if not classes:
        return []
    problems: list[str] = []
    total = classes.pop("cycles", None)
    if total is None:
        problems.append(
            f"{component.name}: inspect_cycle_classes() returned classes "
            "without the mandatory 'cycles' total"
        )
        return problems
    if any(count < 0 for count in classes.values()):
        problems.append(
            f"{component.name}: negative cycle-class count in {classes}"
        )
    accounted = sum(classes.values())
    if accounted != total:
        problems.append(
            f"{component.name}: cycle accounting broken: classes sum to "
            f"{accounted} but {total} cycles elapsed ({classes})"
        )
    return problems
