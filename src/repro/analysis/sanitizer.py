"""Opt-in dynamic sanitizer for the cycle-driven simulator.

A :class:`Sanitizer` registers as an observer on a
:class:`~repro.sim.engine.Simulator` (see ``Simulator.attach_observer``)
and as the creation listener of the run's
:class:`~repro.mem.request.RequestFactory`.  At the quiescent point after
every ``interval``-th cycle it walks the registered components through the
``inspect_*`` hooks of :class:`~repro.sim.component.Component` and proves:

* **request conservation** — every factory-created request is, at all
  times until it retires, present in exactly the containers the protocol
  allows: at most one *transit* container (a bounded queue, a pipeline
  register, a crossbar FIFO, a pending-response buffer) plus any number of
  MSHR *residences*; and present in at least one of them (a request found
  in neither was silently dropped).  A request marked retired may never
  reappear, and no request may occupy two transit containers at once
  (duplication).
* **timestamp monotonicity** — per-hop stamps never decrease and never
  exceed the current cycle.
* **MSHR integrity** — capacity, entry/merge accounting and leak detection
  (an entry whose merged requests have all retired).
* **queue bounds** — occupancy within capacity and consistent with the
  push/pop counters.
* **cycle-accounting conservation** — any component exposing
  ``inspect_cycle_classes`` keeps its accounting classes summing exactly
  to its total stepped cycles (the attribution partition never leaks or
  double-counts a cycle).
* **forward progress** — while work is in flight, *something* must change
  within ``deadlock_cycles`` cycles (a request created or retired, or a
  queue pushed/popped); otherwise the system is wedged and the sanitizer
  raises with a dump of every in-flight request and queue occupancy
  instead of letting the run spin to its cycle limit.

Violations raise :class:`~repro.errors.SanitizerError` carrying the
diagnostic snapshot.  The sanitizer is strictly observational: attaching
it never changes simulated behaviour, only adds checking cost.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.invariants import (
    cycle_accounting_violations,
    mshr_violations,
    queue_bound_violations,
    timestamp_violations,
)
from repro.errors import SanitizerError


class Sanitizer:
    """Checks simulator invariants at cycle boundaries.

    Parameters
    ----------
    sim:
        The simulator whose components are scanned.  Components added
        after construction are picked up automatically.
    factory:
        The run's request factory; when given, its creation listener is
        claimed so every request enters conservation tracking.  ``None``
        restricts checking to the structural invariants (queue bounds,
        MSHR integrity, timestamps of requests found in containers).
    interval:
        Check every ``interval``-th cycle.  1 proves the invariants at
        every cycle boundary; larger values trade detection latency for
        speed (a violation is still caught, just up to ``interval - 1``
        cycles late).
    deadlock_cycles:
        Cycles without any observable progress, while work is in flight,
        after which the run is declared wedged.  Must comfortably exceed
        the longest legitimate quiet stretch (DRAM timing plus crossbar
        serialization; the default is orders of magnitude above both).
    """

    def __init__(
        self,
        sim: Any,
        factory: Any = None,
        *,
        interval: int = 1,
        deadlock_cycles: int = 50_000,
    ) -> None:
        if interval < 1:
            raise SanitizerError(
                f"sanitizer interval must be >= 1, got {interval}",
                invariant="configuration",
            )
        if deadlock_cycles < 1:
            raise SanitizerError(
                f"deadlock_cycles must be >= 1, got {deadlock_cycles}",
                invariant="configuration",
            )
        self._sim = sim
        self._interval = interval
        self._deadlock_cycles = deadlock_cycles
        #: rid -> request, for every created-but-not-yet-retired request.
        self._live: dict[int, object] = {}
        self.created = 0
        self.retired = 0
        self.checks_run = 0
        self._progress_sig: tuple[int, int, int] | None = None
        self._progress_cycle = 0
        if factory is not None:
            factory.listener = self.on_create

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls, gpu: Any, *, interval: int = 1, deadlock_cycles: int = 50_000
    ) -> "Sanitizer":
        """Attach a new sanitizer to a built (not yet run) GPU model."""
        sanitizer = cls(
            gpu.sim,
            gpu.factory,
            interval=interval,
            deadlock_cycles=deadlock_cycles,
        )
        gpu.sim.attach_observer(sanitizer)
        return sanitizer

    # ------------------------------------------------------------------
    # observer protocol
    # ------------------------------------------------------------------
    def on_create(self, request: Any) -> None:
        """Factory listener: register a request for conservation tracking."""
        if request.rid in self._live:
            self._fail(
                f"request id {request.rid} allocated twice",
                invariant="request-conservation",
            )
        self._live[request.rid] = request
        self.created += 1

    def on_cycle(self, now: int) -> None:
        """Engine hook: run the checks at epoch boundaries."""
        if self._interval > 1 and (now + 1) % self._interval:
            return
        self.check(now)

    def on_finalize(self, now: int) -> None:
        """Engine hook: final conservation accounting at end of run."""
        self.check(now)
        if self._live:
            self._fail(
                f"{len(self._live)} request(s) never retired by end of run",
                invariant="request-conservation",
                cycle=now,
                requests=tuple(self._live.values()),
            )

    # ------------------------------------------------------------------
    # the check itself
    # ------------------------------------------------------------------
    def check(self, now: int) -> None:
        """Prove every invariant against the current system state."""
        self.checks_run += 1
        queues, mshrs, transit = self._scan()

        problems = queue_bound_violations(queues)
        for table in mshrs:
            problems.extend(mshr_violations(table))
        for component in self._sim.components:
            problems.extend(cycle_accounting_violations(component))

        # Occurrence map over transit containers, by object identity.
        seen: dict[int, tuple[object, list[str]]] = {}
        for location, request in transit:
            entry = seen.get(id(request))
            if entry is None:
                seen[id(request)] = (request, [location])
            else:
                entry[1].append(location)
        for request, locations in seen.values():
            if len(locations) > 1:
                problems.append(
                    f"request #{request.rid} duplicated across transit "
                    f"containers: {', '.join(locations)}"
                )
            if getattr(request, "retired", False):
                problems.append(
                    f"request #{request.rid} already retired but still in "
                    f"{', '.join(locations)}"
                )
            problems.extend(timestamp_violations(request, now))

        # Residence: requests parked in MSHR entries.
        resident: set[int] = set()
        for table in mshrs:
            for entry in table.entries():
                for request in entry.requests:
                    resident.add(id(request))
                    if id(request) not in seen:
                        problems.extend(timestamp_violations(request, now))

        # Conservation: prune retirements, then demand every live request
        # be findable somewhere.
        for rid in [
            rid for rid, req in self._live.items() if req.retired
        ]:
            del self._live[rid]
            self.retired += 1
        lost = [
            request
            for request in self._live.values()
            if id(request) not in seen and id(request) not in resident
        ]
        if lost:
            problems.append(
                f"{len(lost)} live request(s) found in no container "
                "(silently dropped): "
                + ", ".join(f"#{request.rid}" for request in lost[:8])
            )

        if problems:
            self._fail(
                "; ".join(problems[:4])
                + (f"; ... {len(problems) - 4} more" if len(problems) > 4 else ""),
                invariant="epoch-check",
                cycle=now,
                requests=tuple(req for req, _ in seen.values()),
                queues=queues,
            )

        self._check_progress(now, queues, transit)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan(
        self,
    ) -> tuple[list[Any], list[Any], list[tuple[str, object]]]:
        """Walk the component list through the ``inspect_*`` hooks."""
        queues: list[Any] = []
        mshrs: list[Any] = []
        transit: list[tuple[str, object]] = []
        for component in self._sim.components:
            for queue in component.inspect_queues():
                queues.append(queue)
                for request in queue:
                    transit.append((queue.name, request))
            mshrs.extend(component.inspect_mshrs())
            for request in component.inspect_inflight():
                transit.append((component.name, request))
        return queues, mshrs, transit

    def _check_progress(
        self,
        now: int,
        queues: list[Any],
        transit: list[tuple[str, object]],
    ) -> None:
        busy = bool(self._live) or bool(transit)
        if not busy:
            self._progress_sig = None
            self._progress_cycle = now
            return
        signature = (
            self.created,
            self.retired,
            sum(queue.pushes + queue.pops for queue in queues),
        )
        if signature != self._progress_sig:
            self._progress_sig = signature
            self._progress_cycle = now
            return
        if now - self._progress_cycle >= self._deadlock_cycles:
            self._fail(
                f"no forward progress for {now - self._progress_cycle} "
                f"cycles with {len(self._live)} request(s) in flight",
                invariant="forward-progress",
                cycle=now,
                requests=tuple(self._live.values()),
                queues=queues,
            )

    def _fail(
        self,
        message: str,
        *,
        invariant: str,
        cycle: int | None = None,
        requests: tuple[Any, ...] = (),
        queues: Any = (),
    ) -> None:
        raise SanitizerError(
            message,
            invariant=invariant,
            cycle=cycle,
            requests=requests,
            queue_occupancies=tuple(
                (queue.name, len(queue), queue.capacity) for queue in queues
            ),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Tracked requests not yet observed retiring."""
        return len(self._live)

    def stats(self) -> dict[str, int]:
        """Counters for reports (e.g. ``RunMetrics.extras``)."""
        return {
            "checks_run": self.checks_run,
            "requests_tracked": self.created,
            "requests_retired": self.retired,
            "requests_in_flight": len(self._live),
        }
