"""Correctness tooling: simulator sanitizer and repo-specific lint pass.

Two independent halves, both enforcing the model's contracts mechanically
rather than trusting any single implementation:

* :class:`Sanitizer` (``repro.analysis.sanitizer``) — a dynamic checker
  attachable to a running :class:`~repro.sim.engine.Simulator` that proves,
  per cycle or per epoch, request conservation, timestamp monotonicity,
  MSHR integrity, queue bounds and forward progress.  Violations raise
  :class:`~repro.errors.SanitizerError` with a full diagnostic dump.
* The lint pass (``repro.analysis.lint``) — AST rules over ``src/`` that
  keep the simulator deterministic and its failure modes loud (no global
  RNG or wall-clock reads, no bare ``assert`` for protocol violations, all
  exceptions under :class:`~repro.errors.ReproError`, hot-path dataclasses
  slotted, no frozen-config mutation).
* The whole-program static verifier (``repro.analysis.static``) — extends
  the lint into cross-file passes: Component wake-hint/hook contracts
  (REP006-008), determinism hazards (REP009-011) and architecture
  layering over the import graph (REP012), with inline suppressions, a
  checked-in baseline and JSON/SARIF output.  Run as
  ``repro lint --static``.
"""

from repro.analysis.lint import LintViolation, lint_paths, lint_source
from repro.analysis.sanitizer import Sanitizer
from repro.analysis.static import Finding, StaticReport, analyze_paths

__all__ = [
    "Finding",
    "LintViolation",
    "Sanitizer",
    "StaticReport",
    "analyze_paths",
    "lint_paths",
    "lint_source",
]
