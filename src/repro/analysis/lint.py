"""Repo-specific static lint rules for the simulator source tree.

The simulator's credibility rests on properties no general-purpose linter
checks: determinism (same seed, same run), loud protocol failures (no
check that vanishes under ``python -O``), a single catchable exception
hierarchy, and memory-lean hot-path objects.  Each rule below encodes one
of those contracts as an AST pass:

========  ==============================================================
code      contract
========  ==============================================================
REP001    no unseeded RNG or wall-clock reads in simulator code: global
          ``random.*`` functions share hidden mutable state and
          ``time.time()``-style calls leak host time into the model;
          both break run-to-run determinism.  Seeded ``random.Random``
          instances are the sanctioned source of randomness.
REP002    no ``assert`` statements: assertions are stripped under
          ``python -O``, so a protocol violation guarded by one can pass
          silently in optimized runs.  Raise
          :class:`~repro.errors.SimulationError` instead.
REP003    every raised exception derives from
          :class:`~repro.errors.ReproError` (``NotImplementedError`` for
          abstract methods excepted), so ``except ReproError`` reliably
          separates modelled failures from genuine bugs.
REP004    dataclasses in hot-path packages (``mem``, ``cache``, ``dram``,
          ``icnt``, ``cores``) declare ``slots=True``: per-instance
          ``__dict__`` costs memory and attribute-lookup time exactly
          where millions of objects live.
REP005    no attribute assignment through a config object: the
          ``GPUConfig`` tree is frozen, and code that *appears* to
          mutate it (``self._config.l1.assoc = 2``) either raises at
          runtime or, worse, mutates shared state if a sub-config is
          ever unfrozen.  Use ``dataclasses.replace``.
========  ==============================================================

A violating line can opt out with a ``# noqa: REPxxx`` comment (bare
``# noqa`` suppresses every rule on the line; the static verifier's
``# repro: noqa[REPxxx]`` spelling is honoured too).  The
:func:`lint_paths` entry point is wired to ``scripts/lint.py`` and the
``repro lint`` CLI subcommand; CI runs it over ``src/``, ``tests/`` and
``scripts/`` on every push.

Path profiles: files under a ``tests`` directory are exempt from REP002 —
``assert`` is pytest's assertion mechanism (and pytest rewrites it, so
``python -O`` stripping is not a concern there); every other rule still
applies to test code.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from repro import errors as _errors
from repro.errors import ReproError, UsageError

#: Packages whose dataclasses must declare slots (REP004).
HOT_PACKAGES = ("mem", "cache", "dram", "icnt", "cores")

#: Module-level ``random`` attributes that are allowed (seeded generators).
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: Wall-clock call chains flagged by REP001, as dotted names.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: Names from the ``random`` module considered unseeded global-state RNG.
_RANDOM_FUNCTIONS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

#: Exception names always acceptable to raise (REP003).
_RAISE_ALLOWED_EXTRA = {"NotImplementedError"}

#: Variable names through which code reaches a (frozen) config object.
_CONFIG_NAMES = {"config", "cfg", "_config"}


def _repro_error_names() -> frozenset[str]:
    """Names of every ReproError subclass defined in :mod:`repro.errors`."""
    return frozenset(
        name
        for name, obj in vars(_errors).items()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    )


@dataclass(frozen=True, slots=True)
class LintViolation:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        source_lines: list[str],
        hot: bool,
        exempt: frozenset[str] = frozenset(),
    ) -> None:
        self.path = path
        self.lines = source_lines
        self.hot = hot
        self.exempt = exempt
        self.violations: list[LintViolation] = []
        #: Names bound by ``from random import X``.
        self.random_names: set[str] = set()
        #: Local classes whose bases resolve into the ReproError tree.
        self.allowed_raises = set(_repro_error_names()) | _RAISE_ALLOWED_EXTRA

    # -- helpers -------------------------------------------------------
    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        if "noqa" not in text:
            return False
        _, _, tail = text.partition("noqa")
        # Accept both spellings: ``# noqa: REP001`` and the static
        # verifier's ``# repro: noqa[REP001,REP009]``.
        tail = tail.lstrip(": ").strip()
        codes = [
            token
            for token in tail.replace(",", " ").replace("[", " ")
            .replace("]", " ").split()
            if token
        ]
        return not codes or code in codes

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.exempt or self._suppressed(node.lineno, code):
            return
        self.violations.append(
            LintViolation(self.path, node.lineno, node.col_offset, code, message)
        )

    @staticmethod
    def _dotted(node: ast.AST) -> str | None:
        """Render a Name/Attribute chain as ``a.b.c`` (None if dynamic)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    # -- imports (REP001 support) --------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCTIONS:
                    self.random_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- REP001: nondeterminism ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            head, _, tail = dotted.partition(".")
            if head == "random" and tail and tail not in _RANDOM_ALLOWED:
                self._flag(
                    node, "REP001",
                    f"call to global RNG random.{tail}; use a seeded "
                    "random.Random instance",
                )
            elif dotted in _WALL_CLOCK:
                self._flag(
                    node, "REP001",
                    f"wall-clock read {dotted}(); simulator code must not "
                    "depend on host time",
                )
            elif not tail and head in self.random_names:
                self._flag(
                    node, "REP001",
                    f"call to global RNG {head}() (imported from random); "
                    "use a seeded random.Random instance",
                )
        self.generic_visit(node)

    # -- REP002: bare assert -------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            node, "REP002",
            "assert vanishes under python -O; raise SimulationError (or "
            "another ReproError) for protocol violations",
        )
        self.generic_visit(node)

    # -- REP003: exception hierarchy -----------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = {
            name for base in node.bases
            if (name := self._dotted(base)) is not None
        }
        if any(
            name.rpartition(".")[2] in self.allowed_raises
            for name in base_names
        ):
            self.allowed_raises.add(node.name)
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = self._dotted(exc) if exc is not None else None
        if name is not None:
            short = name.rpartition(".")[2]
            if short not in self.allowed_raises:
                obj = getattr(builtins, short, None)
                if isinstance(obj, type) and issubclass(obj, BaseException):
                    self._flag(
                        node, "REP003",
                        f"raises builtin {short}; deliberate failures must "
                        "derive from ReproError",
                    )
        self.generic_visit(node)

    # -- REP004: hot-path dataclass slots ------------------------------
    def _dataclass_decorator(self, node: ast.ClassDef) -> ast.expr | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = self._dotted(target)
            if dotted in ("dataclass", "dataclasses.dataclass"):
                return decorator
        return None

    def _check_dataclass_slots(self, node: ast.ClassDef) -> None:
        decorator = self._dataclass_decorator(node)
        if decorator is None:
            return
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return
        self._flag(
            node, "REP004",
            f"hot-path dataclass {node.name} must declare slots=True",
        )

    # -- REP005: frozen-config mutation --------------------------------
    def _check_config_store(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        # Walk the object being stored *into*; the final attr is the
        # binding itself (``self.config = ...`` is allowed).
        node = target.value
        while isinstance(node, ast.Attribute):
            if node.attr in _CONFIG_NAMES:
                self._flag(
                    target, "REP005",
                    "attribute assignment through a config object; configs "
                    "are frozen — build a new one with dataclasses.replace",
                )
                return
            node = node.value
        if isinstance(node, ast.Name) and node.id in _CONFIG_NAMES:
            self._flag(
                target, "REP005",
                "attribute assignment through a config object; configs "
                "are frozen — build a new one with dataclasses.replace",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_config_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_config_store(node.target)
        self.generic_visit(node)


def exempt_rules_for(path: str) -> frozenset[str]:
    """Rules that do not apply to ``path`` (path-profile exemptions).

    Test code gets a pass on REP002: ``assert`` is pytest's assertion
    idiom and pytest's rewriting keeps it active regardless of ``-O``.
    """
    if "tests" in Path(path).parts:
        return frozenset(("REP002",))
    return frozenset()


def lint_source(
    source: str, path: str = "<string>", *, hot: bool | None = None
) -> list[LintViolation]:
    """Lint one module's source text; returns violations in line order."""
    parts = Path(path).parts
    if hot is None:
        hot = any(package in parts for package in HOT_PACKAGES) and (
            "repro" in parts
        )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise UsageError(f"{path}: cannot lint, syntax error: {exc}") from exc
    visitor = _Visitor(path, source.splitlines(), hot, exempt_rules_for(path))
    visitor.visit(tree)
    if hot:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                visitor._check_dataclass_slots(node)
    return sorted(visitor.violations, key=lambda v: (v.line, v.col, v.code))


def _iter_python_files(paths: list[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        elif path.suffix == ".py":
            yield path
        else:
            raise UsageError(f"{raw}: not a python file or directory")


def lint_paths(paths: list[str]) -> list[LintViolation]:
    """Lint every python file under ``paths`` (files or directories)."""
    violations: list[LintViolation] = []
    for path in _iter_python_files(paths):
        violations.extend(
            lint_source(path.read_text(encoding="utf-8"), str(path))
        )
    return violations


def run_lint(paths: list[str]) -> int:
    """CLI body: print violations, return a process exit code."""
    if not paths:
        paths = ["src"]
    violations = lint_paths(paths)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    return 0
