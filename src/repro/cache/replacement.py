"""Cache replacement policies.

Policies rank the ways of one set.  The tag array asks the policy for a
victim among the evictable ways, and notifies it on access and fill so it
can maintain recency/insertion state.  LRU is the GPGPU-Sim / paper
baseline; FIFO and tree-PLRU are provided for ablations.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ReplacementPolicy:
    """Per-set ranking of ways (one policy instance per tag array)."""

    name = "base"

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc

    def on_access(self, set_idx: int, way: int, now: int) -> None:
        """Called on every hit to ``way``."""

    def on_fill(self, set_idx: int, way: int, now: int) -> None:
        """Called when a line is installed into ``way``."""

    def victim(self, set_idx: int, candidates: list[int]) -> int:
        """Pick a victim among ``candidates`` (non-empty list of way ids)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with access timestamps."""

    name = "lru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._last_use = [[-1] * assoc for _ in range(n_sets)]

    def on_access(self, set_idx: int, way: int, now: int) -> None:
        self._last_use[set_idx][way] = now

    def on_fill(self, set_idx: int, way: int, now: int) -> None:
        self._last_use[set_idx][way] = now

    def victim(self, set_idx: int, candidates: list[int]) -> int:
        stamps = self._last_use[set_idx]
        return min(candidates, key=lambda w: stamps[w])


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: evicts the oldest *installed* line."""

    name = "fifo"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        self._installed = [[-1] * assoc for _ in range(n_sets)]

    def on_fill(self, set_idx: int, way: int, now: int) -> None:
        self._installed[set_idx][way] = now

    def victim(self, set_idx: int, candidates: list[int]) -> int:
        stamps = self._installed[set_idx]
        return min(candidates, key=lambda w: stamps[w])


class PLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (requires power-of-two associativity)."""

    name = "plru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        if assoc & (assoc - 1):
            raise ConfigError("PLRU requires power-of-two associativity")
        #: One bit per internal tree node, assoc-1 nodes per set.
        self._bits = [[0] * max(1, assoc - 1) for _ in range(n_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        bits = self._bits[set_idx]
        node = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            go_right = way % span >= half
            bits[node] = 0 if go_right else 1  # bit points away from way
            node = 2 * node + (2 if go_right else 1)
            span = half

    def on_access(self, set_idx: int, way: int, now: int) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, now: int) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int, candidates: list[int]) -> int:
        if len(candidates) == 1:
            return candidates[0]
        bits = self._bits[set_idx]
        node = 0
        base = 0
        span = self.assoc
        while span > 1:
            half = span // 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                base += half
            span = half
        if base in candidates:
            return base
        # The PLRU leaf is not evictable (e.g. reserved); fall back to the
        # first evictable way to preserve forward progress.
        return candidates[0]


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "plru": PLRUPolicy,
}


def make_policy(name: str, n_sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ("lru", "fifo", "plru")."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(f"unknown replacement policy {name!r}") from None
    return cls(n_sets, assoc)
