"""Miss Status Holding Registers.

An MSHR table tracks outstanding misses by line.  A second miss to a
pending line *merges* into the existing entry (up to ``max_merge``
requesters) instead of issuing redundant downstream traffic.  Exhausting
either the entry count or an entry's merge slots stalls the requester —
the paper's point 2: "High latencies of outstanding miss requests lead to
prolonged contention of cache resources such as MSHRs ... succeeding
requests get serialized and have to wait for outstanding misses to
complete and relinquish the resources."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulationError
from repro.mem.request import MemoryRequest
from repro.utils.stats import IntervalTracker


class MSHRProbe(enum.Enum):
    """Outcome of probing the table for a line."""

    #: No entry for the line; a new one may be allocated (if capacity left).
    ABSENT = "absent"
    #: Entry exists with merge capacity.
    MERGEABLE = "mergeable"
    #: Entry exists but its merge slots are exhausted.
    ENTRY_FULL = "entry_full"


@dataclass(slots=True)
class MSHREntry:
    """Bookkeeping for one outstanding line."""

    line: int
    allocated_at: int
    requests: list[MemoryRequest] = field(default_factory=list)
    #: True when any merged request is a store (fill installs dirty).
    has_store: bool = False


class MSHRTable:
    """Fixed-capacity miss status holding register file."""

    def __init__(self, name: str, entries: int, max_merge: int) -> None:
        if entries < 1:
            raise ConfigError(f"{name}: MSHR entries must be >= 1")
        if max_merge < 1:
            raise ConfigError(f"{name}: MSHR max_merge must be >= 1")
        self.name = name
        self.capacity = entries
        self.max_merge = max_merge
        self._entries: dict[int, MSHREntry] = {}
        #: Entries allocated over the run (len == allocations - releases).
        self.allocations: int = 0
        #: Requests that merged into an existing entry.
        self.merges: int = 0
        #: Allocations refused because the table was full.
        self.alloc_fails: int = 0
        #: Merges refused because the entry's slots were exhausted.
        self.merge_fails: int = 0
        #: Entries released by fills.
        self.releases: int = 0
        self._full_time = IntervalTracker(f"{name}.full")
        self._busy_time = IntervalTracker(f"{name}.busy")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def probe(self, line: int) -> MSHRProbe:
        entry = self._entries.get(line)
        if entry is None:
            return MSHRProbe.ABSENT
        if len(entry.requests) < self.max_merge:
            return MSHRProbe.MERGEABLE
        return MSHRProbe.ENTRY_FULL

    def allocate(self, request: MemoryRequest, now: int) -> bool:
        """Create a new entry for the request's line; False if full."""
        if request.line in self._entries:
            raise SimulationError(
                f"{self.name}: allocate for already-pending line {request.line:#x}"
            )
        if len(self._entries) >= self.capacity:
            self.alloc_fails += 1
            return False
        entry = MSHREntry(request.line, now, [request], request.is_write)
        self._entries[request.line] = entry
        self.allocations += 1
        occupancy = len(self._entries)
        if occupancy == 1:
            self._busy_time.update(now, True)
        if occupancy >= self.capacity:
            self._full_time.update(now, True)
        return True

    def merge(self, request: MemoryRequest, now: int) -> bool:
        """Attach the request to an existing entry; False if slots full."""
        entry = self._entries.get(request.line)
        if entry is None:
            raise SimulationError(
                f"{self.name}: merge into absent line {request.line:#x}"
            )
        if len(entry.requests) >= self.max_merge:
            self.merge_fails += 1
            return False
        entry.requests.append(request)
        entry.has_store = entry.has_store or request.is_write
        self.merges += 1
        return True

    def release(self, line: int, now: int) -> MSHREntry:
        """Remove and return the entry for ``line`` (fill arrived)."""
        entry = self._entries.pop(line, None)
        if entry is None:
            raise SimulationError(
                f"{self.name}: release of absent line {line:#x}"
            )
        self.releases += 1
        remaining = len(self._entries)
        if remaining >= self.capacity - 1:
            self._full_time.update(now, False)  # falling edge (was full)
        if not remaining:
            self._busy_time.update(now, False)
        return entry

    def pending(self, line: int) -> bool:
        return line in self._entries

    def entries(self):
        """Live entries, for sanitizer / debug inspection (read-only use)."""
        return self._entries.values()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def finalize(self, now: int) -> None:
        self._full_time.finalize(now)
        self._busy_time.finalize(now)

    def full_cycles(self, now: int | None = None) -> int:
        return self._full_time.total(now)

    def busy_cycles(self, now: int | None = None) -> int:
        return self._busy_time.total(now)

    def full_fraction(self, now: int | None = None) -> float:
        """Fraction of busy time spent at capacity."""
        busy = self.busy_cycles(now)
        return self.full_cycles(now) / busy if busy else 0.0
