"""Set-associative tag array with line reservation.

The tag array tracks line *state* only (tags, valid/reserved/dirty); data
movement is modelled by the latencies of the surrounding controllers.

Reservation implements GPGPU-Sim's miss handling: on a miss the controller
reserves a victim way for the future fill.  While reserved, the way cannot
be evicted — if every candidate way of a set is reserved, the controller
suffers a *reservation failure* and must retry, which is one of the
resource-contention effects the paper calls out ("prolonged contention of
cache resources such as MSHRs and replaceable cache lines").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.cache.replacement import make_policy
from repro.utils.stats import RatioStat


class LineState(enum.Enum):
    INVALID = 0
    VALID = 1
    #: Way held for an outstanding fill; not evictable.
    RESERVED = 2


@dataclass(slots=True)
class _Way:
    tag: int = -1
    state: LineState = LineState.INVALID
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class Eviction:
    """Description of a line displaced by a reserve/fill."""

    line: int
    dirty: bool


class TagArray:
    """Tags + state for one cache; indexed by line index."""

    def __init__(
        self,
        name: str,
        n_sets: int,
        assoc: int,
        policy: str = "lru",
    ) -> None:
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ConfigError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if assoc < 1:
            raise ConfigError(f"{name}: assoc must be >= 1")
        self.name = name
        self.n_sets = n_sets
        self.assoc = assoc
        self._sets = [[_Way() for _ in range(assoc)] for _ in range(n_sets)]
        #: Per-set ``line -> way index`` for the non-INVALID ways, so the
        #: per-access probe is a dict lookup instead of a way scan.
        #: Maintained by reserve/fill/invalidate (the only tag mutators).
        self._tag_map: list[dict[int, int]] = [{} for _ in range(n_sets)]
        self._policy = make_policy(policy, n_sets, assoc)
        #: Per-set recency/insertion stamp rows when the policy ranks ways
        #: by a plain stamp (LRU/FIFO): lets :meth:`_allocate` pick the
        #: victim during its way scan instead of gathering candidates for a
        #: policy callback.  None for structural policies (PLRU).
        self._stamp_rows = getattr(self._policy, "_last_use", None)
        if self._stamp_rows is None:
            self._stamp_rows = getattr(self._policy, "_installed", None)
        self.lookups = RatioStat(f"{name}.hit_rate")
        #: Reservation failures (all candidate ways of a set reserved).
        self.reservation_fails: int = 0

    # ------------------------------------------------------------------
    # indexing helpers
    # ------------------------------------------------------------------
    def set_index(self, line: int) -> int:
        return line & (self.n_sets - 1)

    def _find(self, line: int) -> tuple[int, int | None]:
        set_idx = line & (self.n_sets - 1)
        return set_idx, self._tag_map[set_idx].get(line)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def lookup(self, line: int, now: int, *, count: bool = True) -> bool:
        """Probe for ``line``; True only for a VALID line (hit).

        A RESERVED match is *not* a hit (the data has not arrived), but the
        caller can detect it via :meth:`state_of` to merge into an MSHR.
        Updates replacement state and the hit-rate statistic on hits.
        """
        set_idx, way_idx = self._find(line)
        hit = way_idx is not None and (
            self._sets[set_idx][way_idx].state is LineState.VALID
        )
        if count:
            if hit:
                self.lookups.hit()
            else:
                self.lookups.miss()
        if hit:
            self._policy.on_access(set_idx, way_idx, now)
        return hit

    def state_of(self, line: int) -> LineState:
        """Current state of ``line`` (INVALID if not present)."""
        set_idx, way_idx = self._find(line)
        if way_idx is None:
            return LineState.INVALID
        return self._sets[set_idx][way_idx].state

    def mark_dirty(self, line: int) -> None:
        """Mark a VALID line dirty (write hit)."""
        set_idx, way_idx = self._find(line)
        if way_idx is None or self._sets[set_idx][way_idx].state is not LineState.VALID:
            raise SimulationError(f"{self.name}: mark_dirty on absent line {line:#x}")
        self._sets[set_idx][way_idx].dirty = True

    def _allocate(self, set_idx: int, line: int) -> tuple[int, Eviction | None] | None:
        """Claim a way for ``line`` in RESERVED state; None when every way
        is reserved.  Single pass: stops at the first INVALID way, else
        picks the policy victim among the VALID ways gathered en route."""
        ways = self._sets[set_idx]
        victim_idx = None
        evicted = None
        stamp_rows = self._stamp_rows
        if stamp_rows is not None:
            # Stamp-ranked policy (LRU/FIFO): fold victim selection into
            # the way scan.  Strict < keeps min()'s first-minimum tie-break.
            stamps = stamp_rows[set_idx]
            best_idx = None
            best_stamp = 0
            for way_idx, way in enumerate(ways):
                state = way.state
                if state is LineState.INVALID:
                    victim_idx = way_idx
                    break
                if state is LineState.VALID:
                    stamp = stamps[way_idx]
                    if best_idx is None or stamp < best_stamp:
                        best_idx = way_idx
                        best_stamp = stamp
            else:
                if best_idx is None:
                    return None
                victim_idx = best_idx
                victim = ways[victim_idx]
                evicted = Eviction(line=victim.tag, dirty=victim.dirty)
                del self._tag_map[set_idx][victim.tag]
        else:
            candidates: list[int] = []
            for way_idx, way in enumerate(ways):
                state = way.state
                if state is LineState.INVALID:
                    victim_idx = way_idx
                    break
                if state is LineState.VALID:
                    candidates.append(way_idx)
            if victim_idx is None:
                if not candidates:
                    return None
                victim_idx = self._policy.victim(set_idx, candidates)
                victim = ways[victim_idx]
                evicted = Eviction(line=victim.tag, dirty=victim.dirty)
                del self._tag_map[set_idx][victim.tag]
        way = ways[victim_idx]
        way.tag = line
        way.state = LineState.RESERVED
        way.dirty = False
        self._tag_map[set_idx][line] = victim_idx
        return victim_idx, evicted

    def reserve(self, line: int, now: int) -> Eviction | None | bool:
        """Reserve a way for a future fill of ``line``.

        Returns ``False`` on reservation failure (every way reserved),
        otherwise the :class:`Eviction` displaced (or None).  The victim is
        chosen by the replacement policy among non-reserved ways, preferring
        invalid ways.
        """
        result = self._allocate(line & (self.n_sets - 1), line)
        if result is None:
            self.reservation_fails += 1
            return False
        return result[1]

    def fill(self, line: int, now: int, *, dirty: bool = False) -> Eviction | None:
        """Install ``line`` as VALID.

        Uses the previously reserved way when one exists; otherwise
        allocates a victim directly (the L1 path, which does not reserve).
        Returns any displaced line.
        """
        set_idx = line & (self.n_sets - 1)
        way_idx = self._tag_map[set_idx].get(line)
        evicted: Eviction | None = None
        if way_idx is None:
            result = self._allocate(set_idx, line)
            if result is None:
                raise SimulationError(
                    f"{self.name}: fill of {line:#x} found no allocatable way"
                )
            way_idx, evicted = result
        way = self._sets[set_idx][way_idx]
        way.state = LineState.VALID
        way.dirty = dirty
        self._policy.on_fill(set_idx, way_idx, now)
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present and VALID; True when something dropped."""
        set_idx, way_idx = self._find(line)
        if way_idx is None:
            return False
        way = self._sets[set_idx][way_idx]
        if way.state is not LineState.VALID:
            return False
        del self._tag_map[set_idx][line]
        way.state = LineState.INVALID
        way.tag = -1
        way.dirty = False
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.lookups.ratio

    def occupancy(self) -> int:
        """Number of VALID lines currently held."""
        return sum(
            1
            for ways in self._sets
            for way in ways
            if way.state is LineState.VALID
        )

    def reserved_count(self) -> int:
        """Number of RESERVED ways (outstanding fills)."""
        return sum(
            1
            for ways in self._sets
            for way in ways
            if way.state is LineState.RESERVED
        )
