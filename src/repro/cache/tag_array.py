"""Set-associative tag array with line reservation.

The tag array tracks line *state* only (tags, valid/reserved/dirty); data
movement is modelled by the latencies of the surrounding controllers.

Reservation implements GPGPU-Sim's miss handling: on a miss the controller
reserves a victim way for the future fill.  While reserved, the way cannot
be evicted — if every candidate way of a set is reserved, the controller
suffers a *reservation failure* and must retry, which is one of the
resource-contention effects the paper calls out ("prolonged contention of
cache resources such as MSHRs and replaceable cache lines").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.cache.replacement import make_policy
from repro.utils.stats import RatioStat


class LineState(enum.Enum):
    INVALID = 0
    VALID = 1
    #: Way held for an outstanding fill; not evictable.
    RESERVED = 2


@dataclass(slots=True)
class _Way:
    tag: int = -1
    state: LineState = LineState.INVALID
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class Eviction:
    """Description of a line displaced by a reserve/fill."""

    line: int
    dirty: bool


class TagArray:
    """Tags + state for one cache; indexed by line index."""

    def __init__(
        self,
        name: str,
        n_sets: int,
        assoc: int,
        policy: str = "lru",
    ) -> None:
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ConfigError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if assoc < 1:
            raise ConfigError(f"{name}: assoc must be >= 1")
        self.name = name
        self.n_sets = n_sets
        self.assoc = assoc
        self._sets = [[_Way() for _ in range(assoc)] for _ in range(n_sets)]
        self._policy = make_policy(policy, n_sets, assoc)
        self.lookups = RatioStat(f"{name}.hit_rate")
        #: Reservation failures (all candidate ways of a set reserved).
        self.reservation_fails: int = 0

    # ------------------------------------------------------------------
    # indexing helpers
    # ------------------------------------------------------------------
    def set_index(self, line: int) -> int:
        return line & (self.n_sets - 1)

    def _find(self, line: int) -> tuple[int, int | None]:
        set_idx = self.set_index(line)
        for way_idx, way in enumerate(self._sets[set_idx]):
            if way.tag == line and way.state is not LineState.INVALID:
                return set_idx, way_idx
        return set_idx, None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def lookup(self, line: int, now: int, *, count: bool = True) -> bool:
        """Probe for ``line``; True only for a VALID line (hit).

        A RESERVED match is *not* a hit (the data has not arrived), but the
        caller can detect it via :meth:`state_of` to merge into an MSHR.
        Updates replacement state and the hit-rate statistic on hits.
        """
        set_idx, way_idx = self._find(line)
        hit = way_idx is not None and (
            self._sets[set_idx][way_idx].state is LineState.VALID
        )
        if count:
            if hit:
                self.lookups.hit()
            else:
                self.lookups.miss()
        if hit:
            self._policy.on_access(set_idx, way_idx, now)
        return hit

    def state_of(self, line: int) -> LineState:
        """Current state of ``line`` (INVALID if not present)."""
        set_idx, way_idx = self._find(line)
        if way_idx is None:
            return LineState.INVALID
        return self._sets[set_idx][way_idx].state

    def mark_dirty(self, line: int) -> None:
        """Mark a VALID line dirty (write hit)."""
        set_idx, way_idx = self._find(line)
        if way_idx is None or self._sets[set_idx][way_idx].state is not LineState.VALID:
            raise SimulationError(f"{self.name}: mark_dirty on absent line {line:#x}")
        self._sets[set_idx][way_idx].dirty = True

    def reserve(self, line: int, now: int) -> Eviction | None | bool:
        """Reserve a way for a future fill of ``line``.

        Returns ``False`` on reservation failure (every way reserved),
        otherwise the :class:`Eviction` displaced (or None).  The victim is
        chosen by the replacement policy among non-reserved ways, preferring
        invalid ways.
        """
        set_idx = self.set_index(line)
        ways = self._sets[set_idx]
        victim_idx = None
        for way_idx, way in enumerate(ways):
            if way.state is LineState.INVALID:
                victim_idx = way_idx
                break
        evicted = None
        if victim_idx is None:
            candidates = [
                i for i, way in enumerate(ways) if way.state is LineState.VALID
            ]
            if not candidates:
                self.reservation_fails += 1
                return False
            victim_idx = self._policy.victim(set_idx, candidates)
            victim = ways[victim_idx]
            evicted = Eviction(line=victim.tag, dirty=victim.dirty)
        way = ways[victim_idx]
        way.tag = line
        way.state = LineState.RESERVED
        way.dirty = False
        return evicted

    def fill(self, line: int, now: int, *, dirty: bool = False) -> Eviction | None:
        """Install ``line`` as VALID.

        Uses the previously reserved way when one exists; otherwise
        allocates a victim directly (the L1 path, which does not reserve).
        Returns any displaced line.
        """
        set_idx, way_idx = self._find(line)
        evicted: Eviction | None = None
        if way_idx is None:
            result = self.reserve(line, now)
            if result is False:
                raise SimulationError(
                    f"{self.name}: fill of {line:#x} found no allocatable way"
                )
            evicted = result  # type: ignore[assignment]
            set_idx, way_idx = self._find(line)
            if way_idx is None:
                raise SimulationError(
                    f"{self.name}: reserved way for {line:#x} vanished "
                    "before fill"
                )
        way = self._sets[set_idx][way_idx]
        way.state = LineState.VALID
        way.dirty = dirty
        self._policy.on_fill(set_idx, way_idx, now)
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present and VALID; True when something dropped."""
        set_idx, way_idx = self._find(line)
        if way_idx is None:
            return False
        way = self._sets[set_idx][way_idx]
        if way.state is not LineState.VALID:
            return False
        way.state = LineState.INVALID
        way.tag = -1
        way.dirty = False
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.lookups.ratio

    def occupancy(self) -> int:
        """Number of VALID lines currently held."""
        return sum(
            1
            for ways in self._sets
            for way in ways
            if way.state is LineState.VALID
        )

    def reserved_count(self) -> int:
        """Number of RESERVED ways (outstanding fills)."""
        return sum(
            1
            for ways in self._sets
            for way in ways
            if way.state is LineState.RESERVED
        )
