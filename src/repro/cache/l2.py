"""One memory partition's L2 slice.

Banked, write-back, write-allocate, with the full Table I resource set:

* **L2 access queue** — filled by the request crossbar, drained by the
  banks (at most one accept per bank per cycle, head-of-line order).
* **banks** — pipelined tag/data access of ``bank_latency`` cycles; a bank
  whose completed request cannot acquire downstream resources (data port,
  response queue, MSHR, miss queue, replaceable line) holds at its output
  register, eventually filling its pipeline and refusing new input, which
  backs the access queue up into the crossbar — the paper's back-pressure
  cascade.
* **L2 data port** — every line-carrying response occupies the partition's
  return port for ``ceil(line / data_port_bytes)`` cycles.
* **MSHR / miss queue / response queue** — per Table I.

Fills returning from DRAM install into a way *reserved at miss time*
(dirty victims generate writeback traffic to DRAM at miss time as well),
then fan out one response per merged requester through the data port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.mshr import MSHRProbe, MSHRTable
from repro.cache.tag_array import TagArray
from repro.mem.address import AddressMapper
from repro.mem.pipe import DelayPipe
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import GPUConfig


@dataclass(slots=True)
class _Bank:
    """One L2 bank: a fixed-latency pipeline plus an output register."""

    pipe: DelayPipe[MemoryRequest]
    depth: int
    output: MemoryRequest | None = None
    accepted_this_cycle: bool = False
    #: Cycles the output register held a request it could not retire.
    blocked_cycles: int = 0

    def can_accept(self) -> bool:
        return not self.accepted_this_cycle and len(self.pipe) < self.depth


class L2Slice(Component):
    """L2 cache slice + queue set for one memory partition."""

    def __init__(
        self,
        name: str,
        config: GPUConfig,
        mapper: AddressMapper,
        partition_id: int,
    ) -> None:
        self.name = name
        self.partition_id = partition_id
        self._config = config
        self._mapper = mapper
        cfg = config.l2
        n_sets = cfg.size_bytes // (config.line_bytes * cfg.assoc)
        self.tags = TagArray(f"{name}.tags", n_sets, cfg.assoc)
        self.mshr = MSHRTable(f"{name}.mshr", cfg.mshr_entries, cfg.mshr_max_merge)
        self.access_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.access_queue", cfg.access_queue_depth
        )
        self.miss_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.miss_queue", cfg.miss_queue_depth
        )
        self.response_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.response_queue", cfg.response_queue_depth
        )
        self.banks = [
            _Bank(
                pipe=DelayPipe(f"{name}.bank{i}", cfg.bank_latency),
                depth=cfg.bank_latency,
            )
            for i in range(cfg.banks)
        ]
        self._port_cycles = config.l2_port_cycles
        self._port_free_at = 0
        #: Responses awaiting the data port (produced by fills).
        self._pending_responses: list[MemoryRequest] = []
        self._pending_cap = 4 * cfg.mshr_max_merge
        #: Set by the GPU wiring: the DRAM channel whose return queue we drain.
        self.dram = None
        # --- statistics ---
        self.store_hits: int = 0
        self.store_completions: int = 0
        self.writebacks: int = 0
        self.fills: int = 0
        self.port_busy_cycles: int = 0

    # ------------------------------------------------------------------
    # component protocol
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        # Fast path: nothing in flight anywhere in the slice.
        if self.next_wake(now) > now:
            return
        for bank in self.banks:
            bank.accepted_this_cycle = False
        self._process_fills(now)
        self._emit_pending_responses(now)
        self._step_bank_outputs(now)
        self._step_bank_inputs(now)

    def next_wake(self, now: int) -> int:
        if (
            self.access_queue._items
            or self._pending_responses
            or (self.dram is not None and self.dram.return_queue._items)
        ):
            return now
        # Quiet front end: the only time-dependent state is requests in
        # the bank pipelines (a held output register retries every cycle).
        wake = WAKE_NEVER
        for bank in self.banks:
            if bank.output is not None:
                return now
            heap = bank.pipe._heap
            if heap and heap[0][0] < wake:
                wake = heap[0][0]
        return wake if wake > now else now

    # ------------------------------------------------------------------
    # fills from DRAM
    # ------------------------------------------------------------------
    def _process_fills(self, now: int) -> None:
        """Install at most one returning DRAM line per cycle."""
        if self.dram is None:
            return
        return_queue = self.dram.return_queue
        if return_queue.empty:
            return
        if len(self._pending_responses) >= self._pending_cap:
            return  # back-pressure towards DRAM
        response = return_queue.pop(now)
        line = response.line
        local = self._mapper.local_line(line)
        entry = self.mshr.release(line, now)
        self.tags.fill(local, now, dirty=entry.has_store)
        self.fills += 1
        response.stamp("l2_fill", now)
        for original in entry.requests:
            if original.kind is AccessKind.LOAD:
                original.is_response = True
                original.stamp("l2_fill", now)
                self._pending_responses.append(original)
            else:
                self.store_completions += 1
                original.retired = True  # store data merged into the line

    def _emit_pending_responses(self, now: int) -> None:
        """Push fill responses through the data port into the response queue."""
        while (
            self._pending_responses
            and now >= self._port_free_at
            and self.response_queue.can_push()
        ):
            response = self._pending_responses.pop(0)
            response.stamp("l2_out", now)
            self.response_queue.push(response, now)
            self._port_free_at = now + self._port_cycles
            self.port_busy_cycles += self._port_cycles

    # ------------------------------------------------------------------
    # bank pipeline
    # ------------------------------------------------------------------
    def _step_bank_outputs(self, now: int) -> None:
        for bank in self.banks:
            if bank.output is None and bank.pipe.ready(now):
                bank.output = bank.pipe.pop()
            if bank.output is not None:
                if self._resolve(bank.output, now):
                    bank.output = None
                else:
                    bank.blocked_cycles += 1

    def _resolve(self, request: MemoryRequest, now: int) -> bool:
        """Try to retire one bank output; False => retry next cycle."""
        local = self._mapper.local_line(request.line)
        hit = self.tags.lookup(local, now, count=False)
        if "l2_probed" not in request.timestamps:
            # Count the access outcome once, not once per blocked retry.
            request.stamp("l2_probed", now)
            if hit:
                self.tags.lookups.hit()
            else:
                self.tags.lookups.miss()
        if hit:
            if request.kind is AccessKind.STORE:
                self.tags.mark_dirty(local)
                self.store_hits += 1
                self.store_completions += 1
                request.stamp("l2_hit", now)
                request.retired = True  # write-through store ends at L2
                return True
            # Load hit: needs the data port and a response-queue slot.
            if now < self._port_free_at or not self.response_queue.can_push():
                return False
            request.is_response = True
            request.stamp("l2_hit", now)
            request.stamp("l2_out", now)
            self.response_queue.push(request, now)
            self._port_free_at = now + self._port_cycles
            self.port_busy_cycles += self._port_cycles
            return True
        # Miss path.
        probe = self.mshr.probe(request.line)
        if probe is MSHRProbe.MERGEABLE:
            self.mshr.merge(request, now)
            request.l2_miss = True
            request.stamp("l2_miss", now)
            return True
        if probe is MSHRProbe.ENTRY_FULL:
            return False
        if self.mshr.full:
            return False
        # Reserving may evict a dirty line needing a writeback slot, so
        # demand two free miss-queue slots before committing.
        if self.miss_queue.capacity - len(self.miss_queue) < 2:
            return False
        evicted = self.tags.reserve(local, now)
        if evicted is False:
            return False  # reservation failure: every way pending a fill
        self.mshr.allocate(request, now)
        request.l2_miss = True
        request.stamp("l2_miss", now)
        if evicted is not None and evicted.dirty:
            self._emit_writeback(evicted.line, request, now)
        self.miss_queue.push(request, now)
        return True

    def _emit_writeback(
        self, local_line: int, cause: MemoryRequest, now: int
    ) -> None:
        """Queue a writeback of an evicted dirty local line to DRAM."""
        global_line = (local_line << (self._mapper.n_partitions - 1).bit_length()) | self.partition_id
        writeback = MemoryRequest(
            rid=-cause.rid - 1,  # negative ids mark internally generated traffic
            kind=AccessKind.WRITEBACK,
            line=global_line,
            sm_id=-1,
            warp_id=-1,
            issued_at=now,
        )
        writeback.stamp("l2_writeback", now)
        self.writebacks += 1
        self.miss_queue.push(writeback, now)

    def _step_bank_inputs(self, now: int) -> None:
        accepted = 0
        while accepted < len(self.banks) and not self.access_queue.empty:
            head = self.access_queue.peek()
            bank = self.banks[self._mapper.l2_bank(head.line)]
            if not bank.can_accept():
                break  # head-of-line blocking on a busy bank
            request = self.access_queue.pop(now)
            request.stamp("l2_in", now)
            bank.pipe.insert(request, now)
            bank.accepted_this_cycle = True
            accepted += 1

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return (
            self.access_queue.empty
            and self.miss_queue.empty
            and self.response_queue.empty
            and not self._pending_responses
            and len(self.mshr) == 0
            and all(b.output is None and b.pipe.empty for b in self.banks)
        )

    def finalize(self, now: int) -> None:
        self.access_queue.finalize(now)
        self.miss_queue.finalize(now)
        self.response_queue.finalize(now)
        self.mshr.finalize(now)

    # ------------------------------------------------------------------
    # sanitizer introspection
    # ------------------------------------------------------------------
    def inspect_queues(self):
        return (self.access_queue, self.miss_queue, self.response_queue)

    def inspect_mshrs(self):
        return (self.mshr,)

    # ------------------------------------------------------------------
    # telemetry sampling
    # ------------------------------------------------------------------
    def sample_queues(self):
        return (
            ("l2_accessq", self.access_queue),
            ("l2_missq", self.miss_queue),
            ("l2_respq", self.response_queue),
        )

    def sample_mshrs(self):
        return (("l2_mshr", self.mshr),)

    def sample_counters(self):
        return (
            ("l2_fills", self.fills),
            ("l2_writebacks", self.writebacks),
            ("l2_port_busy_cycles", self.port_busy_cycles),
        )

    def inspect_inflight(self):
        for bank in self.banks:
            yield from bank.pipe
            if bank.output is not None:
                yield bank.output
        yield from self._pending_responses
