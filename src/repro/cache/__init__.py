"""Cache models: tag arrays, replacement policies, MSHRs, L1D and L2 slices."""

from repro.cache.replacement import FIFOPolicy, LRUPolicy, PLRUPolicy, make_policy
from repro.cache.tag_array import LineState, TagArray
from repro.cache.mshr import MSHRTable
from repro.cache.l1 import L1DCache
from repro.cache.l2 import L2Slice

__all__ = [
    "FIFOPolicy",
    "LRUPolicy",
    "PLRUPolicy",
    "make_policy",
    "LineState",
    "TagArray",
    "MSHRTable",
    "L1DCache",
    "L2Slice",
]
