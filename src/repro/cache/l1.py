"""Per-SM L1 data cache.

Models the Fermi/GPGPU-Sim L1D policy: write-through with no write
allocation, write-evict on store hits (stores always travel to L2), and a
fixed-size MSHR file with merging.  Misses enter the Table I "L1 miss
queue", which the request crossbar drains.

Three resources can refuse an access — MSHR entries, MSHR merge slots and
miss-queue slots — and each refusal stalls the SM's memory pipeline for the
cycle (returned as a distinct :class:`AccessResult` so the SM can account
throttling by cause).

Figure 1's *magic memory* mode short-circuits everything below this cache:
misses still allocate and merge MSHRs (the L1's own resources remain
modelled) but are filled after exactly ``config.magic_latency`` cycles
instead of entering the miss queue.
"""

from __future__ import annotations

import enum

from repro.cache.mshr import MSHRProbe, MSHRTable
from repro.cache.tag_array import TagArray
from repro.mem.pipe import DelayPipe
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import GPUConfig
from repro.utils.stats import Accumulator, Histogram


class AccessResult(enum.Enum):
    """Outcome of presenting one transaction to the L1."""

    HIT = "hit"
    #: Miss accepted (MSHR allocated or merged, queued downstream).
    QUEUED = "queued"
    #: Store accepted into the write-through path.
    STORE_SENT = "store_sent"
    STALL_MSHR_FULL = "stall_mshr_full"
    STALL_MERGE_FULL = "stall_merge_full"
    STALL_MISSQ_FULL = "stall_missq_full"


# Plain attribute (not a property) because the SM consults it on the memory
# pipeline's hottest path.
for _result in AccessResult:
    _result.is_stall = _result.name.startswith("STALL")

# Members are singletons, so identity hashing is equivalent to the default
# Enum hash (which is a Python-level function, measurably hot in the
# per-cycle stall accounting dicts); object.__hash__ runs in C.
AccessResult.__hash__ = object.__hash__


class L1DCache:
    """One SM's private L1 data cache.

    Not an engine component: its owning SM drives it each cycle via
    :meth:`collect_completions` / :meth:`try_access`, and the request
    crossbar drains :attr:`miss_queue`.
    """

    def __init__(self, name: str, config: GPUConfig, sm_id: int) -> None:
        self.name = name
        self.sm_id = sm_id
        self._config = config
        cfg = config.l1
        n_sets = cfg.size_bytes // (config.line_bytes * cfg.assoc)
        self.tags = TagArray(f"{name}.tags", n_sets, cfg.assoc)
        self.mshr = MSHRTable(f"{name}.mshr", cfg.mshr_entries, cfg.mshr_max_merge)
        self.miss_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.miss_queue", cfg.miss_queue_depth
        )
        self._hit_pipe: DelayPipe[MemoryRequest] = DelayPipe(
            f"{name}.hit_pipe", cfg.hit_latency
        )
        self._fill_pipe: DelayPipe[MemoryRequest] = DelayPipe(
            f"{name}.fill_pipe", cfg.fill_latency
        )
        self._magic = config.magic_memory
        self._magic_latency = config.magic_latency
        self._write_back = cfg.write_policy == "write_back"
        #: Dirty lines evicted by fills, awaiting a miss-queue slot
        #: (write-back policy only).
        self._pending_writebacks: list[int] = []
        #: Response-network traversal latency applied to arriving fills.
        self._network_latency = config.icnt.network_latency
        # --- statistics ---
        self.miss_latency = Accumulator(f"{name}.miss_latency")
        self.miss_latency_hist = Histogram(f"{name}.miss_latency_hist")
        self.stall_counts: dict[AccessResult, int] = {
            r: 0 for r in AccessResult if r.is_stall
        }
        #: Increments whenever a stall-clearing event occurs (fill installed,
        #: MSHR released, miss-queue slot freed); lets the SM skip futile
        #: retries of a stalled transaction.
        self.fills_installed: int = 0
        self.stores_sent: int = 0
        #: Stores absorbed locally (write-back policy hits).
        self.store_hits_local: int = 0
        #: Dirty lines written back to L2 (write-back policy).
        self.writebacks_sent: int = 0
        self.hits: int = 0
        self.misses_issued: int = 0

    # ------------------------------------------------------------------
    # SM-facing interface
    # ------------------------------------------------------------------
    def try_access(self, request: MemoryRequest, now: int) -> AccessResult:
        """Present one transaction; returns how it was disposed."""
        request.stamp("l1_access", now)
        if request.kind is AccessKind.STORE:
            return self._access_store(request, now)
        return self._access_load(request, now)

    def _access_load(self, request: MemoryRequest, now: int) -> AccessResult:
        if self.tags.lookup(request.line, now):
            self.hits += 1
            request.stamp("l1_hit", now)
            self._hit_pipe.insert(request, now)
            return AccessResult.HIT
        probe = self.mshr.probe(request.line)
        if probe is MSHRProbe.MERGEABLE:
            self.mshr.merge(request, now)
            request.stamp("l1_miss", now)
            return AccessResult.QUEUED
        if probe is MSHRProbe.ENTRY_FULL:
            self.stall_counts[AccessResult.STALL_MERGE_FULL] += 1
            return AccessResult.STALL_MERGE_FULL
        # New miss: needs an MSHR entry and (unless magic) a miss-queue slot.
        if self.mshr.full:
            self.stall_counts[AccessResult.STALL_MSHR_FULL] += 1
            return AccessResult.STALL_MSHR_FULL
        if not self._magic and not self.miss_queue.can_push():
            self.stall_counts[AccessResult.STALL_MISSQ_FULL] += 1
            return AccessResult.STALL_MISSQ_FULL
        self.mshr.allocate(request, now)
        request.stamp("l1_miss", now)
        self.misses_issued += 1
        if self._magic:
            self._fill_pipe.insert_at(request, now + self._magic_latency)
        else:
            self.miss_queue.push(request, now)
        return AccessResult.QUEUED

    def _access_store(self, request: MemoryRequest, now: int) -> AccessResult:
        if self._write_back:
            return self._access_store_write_back(request, now)
        # Write-through with write-evict (the Fermi/paper baseline): a store
        # hit invalidates the local copy so later loads refetch the
        # (updated) line from L2, and every store travels downstream.
        if not self._magic and not self.miss_queue.can_push():
            self.stall_counts[AccessResult.STALL_MISSQ_FULL] += 1
            return AccessResult.STALL_MISSQ_FULL
        self.tags.invalidate(request.line)
        self.stores_sent += 1
        request.stamp("l1_store", now)
        if not self._magic:
            self.miss_queue.push(request, now)
        else:
            request.retired = True  # magic memory absorbs the store here
        return AccessResult.STORE_SENT

    def _access_store_write_back(
        self, request: MemoryRequest, now: int
    ) -> AccessResult:
        """Write-back, write-allocate: hits dirty the local line; misses
        fetch the line (read-for-ownership) and dirty it on fill."""
        if self.tags.lookup(request.line, now):
            self.tags.mark_dirty(request.line)
            self.store_hits_local += 1
            request.stamp("l1_store", now)
            request.retired = True  # absorbed locally; no downstream traffic
            return AccessResult.HIT
        probe = self.mshr.probe(request.line)
        if probe is MSHRProbe.MERGEABLE:
            self.mshr.merge(request, now)  # taints the entry dirty
            request.stamp("l1_miss", now)
            return AccessResult.QUEUED
        if probe is MSHRProbe.ENTRY_FULL:
            self.stall_counts[AccessResult.STALL_MERGE_FULL] += 1
            return AccessResult.STALL_MERGE_FULL
        if self.mshr.full:
            self.stall_counts[AccessResult.STALL_MSHR_FULL] += 1
            return AccessResult.STALL_MSHR_FULL
        if not self._magic and not self.miss_queue.can_push():
            self.stall_counts[AccessResult.STALL_MISSQ_FULL] += 1
            return AccessResult.STALL_MISSQ_FULL
        self.mshr.allocate(request, now)  # records has_store
        request.stamp("l1_miss", now)
        self.misses_issued += 1
        if self._magic:
            self._fill_pipe.insert_at(request, now + self._magic_latency)
        else:
            # The L2 must treat this as a fetch (the dirty data stays in
            # the L1 until eviction), so the downstream request is a LOAD.
            request.kind = AccessKind.LOAD
            self.miss_queue.push(request, now)
        return AccessResult.QUEUED

    def collect_completions(self, now: int) -> list[MemoryRequest]:
        """Advance internal pipes; return load transactions completed this cycle.

        Fills are installed into the tag array, their MSHR entries released,
        and every merged requester returned alongside completed hits.
        """
        completed: list[MemoryRequest] = []
        self._drain_writebacks(now)
        for response in self._fill_pipe.drain_ready(now):
            line = response.line
            entry = self.mshr.release(line, now)
            evicted = self.tags.fill(line, now, dirty=entry.has_store)
            if evicted is not None and evicted.dirty:
                self._pending_writebacks.append(evicted.line)
            self.fills_installed += 1
            for original in entry.requests:
                timestamps = original.timestamps
                timestamps["l1_fill"] = now
                missed_at = timestamps.get("l1_miss")
                if missed_at is not None:
                    waited = now - missed_at
                    self.miss_latency.add(waited)
                    self.miss_latency_hist.add(waited)
                completed.append(original)
        completed.extend(self._hit_pipe.drain_ready(now))
        return completed

    def _drain_writebacks(self, now: int) -> None:
        """Send pending dirty evictions to L2 as stores (write-back mode)."""
        if not self._pending_writebacks:
            return
        if self._magic:
            self.writebacks_sent += len(self._pending_writebacks)
            self._pending_writebacks.clear()
            return
        while self._pending_writebacks and self.miss_queue.can_push():
            line = self._pending_writebacks.pop(0)
            writeback = MemoryRequest(
                rid=-(line + 1) & 0x7FFFFFFF,
                kind=AccessKind.STORE,
                line=line,
                sm_id=self.sm_id,
                warp_id=-1,
            )
            writeback.stamp("l1_writeback", now)
            self.writebacks_sent += 1
            self.miss_queue.push(writeback, now)

    # ------------------------------------------------------------------
    # memory-side interface
    # ------------------------------------------------------------------
    def deliver_fill(self, response: MemoryRequest, now: int) -> None:
        """Accept a fill response from the response crossbar.

        The configured network traversal latency is applied here (the
        crossbar itself models only port bandwidth).
        """
        self._fill_pipe.insert(response, now, extra_delay=self._network_latency)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return (
            len(self.mshr) == 0
            and self.miss_queue.empty
            and self._hit_pipe.empty
            and self._fill_pipe.empty
            and not self._pending_writebacks
        )

    def finalize(self, now: int) -> None:
        self.miss_queue.finalize(now)
        self.mshr.finalize(now)

    def inflight_requests(self):
        """Requests in the cache's internal pipes (sanitizer hook)."""
        yield from self._hit_pipe
        yield from self._fill_pipe

    def resource_epoch(self) -> int:
        """Monotone counter of stall-clearing events.

        A transaction that stalled can only succeed after a fill installs,
        an MSHR entry releases or a miss-queue slot frees; the SM retries
        only when this value changes.
        """
        return self.fills_installed + self.mshr.releases + self.miss_queue.pops

    @property
    def total_stalls(self) -> int:
        return sum(self.stall_counts.values())
