"""Mean functions used when aggregating per-benchmark results.

The paper reports *average* speedups across its benchmark suite.  Speedup
ratios are conventionally aggregated with the geometric mean, but the paper's
headline numbers ("average speedup of 4%, 59% and 11%") read as arithmetic
averages of per-benchmark speedups; both are provided, plus the harmonic mean
for rate-like quantities (IPC averaged across equal-work benchmarks).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import UsageError


def _collect(values: Iterable[float]) -> list[float]:
    data = [float(v) for v in values]
    if not data:
        raise UsageError("mean of an empty sequence is undefined")
    return data


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; the aggregation used for the paper's headline speedups."""
    data = _collect(values)
    return sum(data) / len(data)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be strictly positive."""
    data = _collect(values)
    if any(v <= 0.0 for v in data):
        raise UsageError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be strictly positive."""
    data = _collect(values)
    if any(v <= 0.0 for v in data):
        raise UsageError("harmonic mean requires strictly positive values")
    return len(data) / sum(1.0 / v for v in data)
