"""Plain-text file output, plus a compatibility shim for the exporters.

:func:`write_text` is the only genuine utility here.  The metric and
experiment exporters (``metrics_to_csv`` & co.) live in
:mod:`repro.core.export` — they are views over ``repro.core`` result
types, and a module-level import of them from ``utils`` would point
upward through the architecture tower (REP012).  They remain importable
from this module through a lazy ``__getattr__`` forward, which creates
no import-time edge.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

#: Names forwarded to :mod:`repro.core.export` on first attribute access.
_FORWARDED = frozenset((
    "exploration_to_dict",
    "exploration_to_json",
    "metrics_to_csv",
    "metrics_to_dict",
    "metrics_to_json",
    "metrics_to_nested_dict",
    "profile_to_csv",
))


def write_text(path: str | Path, text: str) -> Path:
    """Write exported text to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def __getattr__(name: str) -> Any:
    if name in _FORWARDED:
        import repro.core.export as _export

        return getattr(_export, name)
    # The module __getattr__ protocol requires AttributeError specifically;
    # anything else breaks hasattr() and dir() on this module.
    raise AttributeError(  # noqa: REP003
        f"module {__name__!r} has no attribute {name!r}"
    )
