"""Plain-text table rendering for reports and benchmark output.

The characterization reports (Table I, the Section IV speedup summaries,
EXPERIMENTS.md extracts) are rendered as monospace tables so they can be
printed from benchmarks and pasted into documentation unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import UsageError


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    align: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row sequences; each cell is stringified (floats get three
        decimal places).
    title:
        Optional title printed above the table.
    align:
        Optional per-column alignment string of ``'l'``/``'r'`` characters;
        defaults to left for the first column and right for the rest.
    """
    header_cells = [str(h) for h in headers]
    body = [[_stringify(c) for c in row] for row in rows]
    n_cols = len(header_cells)
    for row in body:
        if len(row) != n_cols:
            raise UsageError(
                f"row has {len(row)} cells but table has {n_cols} columns"
            )
    if align is None:
        align = "l" + "r" * (n_cols - 1)
    if len(align) != n_cols or any(a not in "lr" for a in align):
        raise UsageError(f"bad align spec {align!r} for {n_cols} columns")

    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.ljust(width) if a == "l" else cell.rjust(width))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row(header_cells))
    lines.append(separator)
    lines.extend(fmt_row(row) for row in body)
    lines.append(separator)
    return "\n".join(lines)
