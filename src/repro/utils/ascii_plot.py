"""Minimal ASCII line plots.

Used to render Figure 1 (the latency-tolerance profile) in terminal output
and EXPERIMENTS.md without a plotting dependency.  Each series is drawn with
its own marker character on a shared canvas; later series overwrite earlier
ones where they collide, which is acceptable for the qualitative shape
comparisons these plots support.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import UsageError


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name -> [(x, y), ...]) as an ASCII plot.

    Markers are assigned per series in declaration order.  Returns the plot
    as a single string including a legend and axis ranges.
    """
    if not series:
        raise UsageError("line_plot requires at least one series")
    markers = "*o+x#@%&$~^=1234567890"
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise UsageError("line_plot requires at least one data point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_label}  [{y_min:.2f} .. {y_max:.2f}]")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_label}  [{x_min:.2f} .. {x_max:.2f}]")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)
