"""Minimal ASCII line plots and sparklines.

Used to render Figure 1 (the latency-tolerance profile) and the telemetry
timeline in terminal output and EXPERIMENTS.md without a plotting
dependency.  Each line-plot series is drawn with its own marker character
on a shared canvas; later series overwrite earlier ones where they
collide, which is acceptable for the qualitative shape comparisons these
plots support.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import UsageError

#: Density ramp for :func:`sparkline`, lightest to darkest (pure ASCII so
#: reports render everywhere EXPERIMENTS.md does).
SPARK_LEVELS = " .:-=+*#%@"


def resample(values: Sequence[float], width: int) -> list[float]:
    """Shrink ``values`` to at most ``width`` points by bucket-averaging.

    Keeps the series' shape while bounding rendered line length; series
    already short enough are returned as given.
    """
    if width < 1:
        raise UsageError(f"resample width must be >= 1, got {width}")
    values = list(values)
    n = len(values)
    if n <= width:
        return values
    out = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def sparkline(
    values: Sequence[float],
    width: int | None = None,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render ``values`` as a one-line density sparkline.

    Each value maps to a character of :data:`SPARK_LEVELS` scaled between
    ``lo`` and ``hi`` (defaulting to the series' own min/max, so the line
    always uses the full ramp).  ``width`` caps the output length via
    :func:`resample`.
    """
    values = list(values)
    if not values:
        raise UsageError("sparkline requires at least one value")
    if width is not None:
        values = resample(values, width)
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    top = len(SPARK_LEVELS) - 1
    if span <= 0:
        level = 0 if hi <= 0 else top // 2
        return SPARK_LEVELS[level] * len(values)
    chars = []
    for value in values:
        scaled = (value - lo) / span
        scaled = 0.0 if scaled < 0.0 else (1.0 if scaled > 1.0 else scaled)
        chars.append(SPARK_LEVELS[round(scaled * top)])
    return "".join(chars)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name -> [(x, y), ...]) as an ASCII plot.

    Markers are assigned per series in declaration order.  Returns the plot
    as a single string including a legend and axis ranges.
    """
    if not series:
        raise UsageError("line_plot requires at least one series")
    markers = "*o+x#@%&$~^=1234567890"
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise UsageError("line_plot requires at least one data point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_label}  [{y_min:.2f} .. {y_max:.2f}]")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_label}  [{x_min:.2f} .. {x_max:.2f}]")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)
