"""Statistics accumulators used throughout the simulator.

Four small instruments cover every measurement in the paper:

* :class:`Accumulator` — running sum / count / min / max, used for latencies
  and occupancies.
* :class:`RatioStat` — a named numerator/denominator pair (hit rates, row
  buffer locality, issue utilization).
* :class:`IntervalTracker` — tracks how many cycles a boolean condition held,
  *without* per-cycle sampling.  This is the instrument behind the paper's
  Section III numbers ("L2 access queues are full for 46% of their usage
  lifetime"): a queue reports its full/non-empty transitions and the tracker
  integrates the durations.
* :class:`Histogram` — bucketed distribution with percentile queries, used
  for latency tails (a congested memory system shows a long tail well
  before the mean moves).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UsageError


@dataclass
class Accumulator:
    """Running scalar statistics (sum, count, min, max)."""

    name: str = ""
    total: float = 0.0
    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def add(self, value: float, weight: int = 1) -> None:
        """Record ``value`` (``weight`` times, without re-scaling min/max).

        A zero-weight call is a no-op: it must not move min/max, or an
        unobserved value would corrupt the extrema while leaving the mean
        untouched.
        """
        if not weight:
            return
        self.total += value * weight
        self.count += weight
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Average of recorded values; 0.0 when nothing was recorded."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator's observations into this one."""
        self.total += other.total
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Accumulator({self.name!r}, mean={self.mean:.3f}, "
            f"count={self.count})"
        )


@dataclass
class RatioStat:
    """A named numerator / denominator pair, e.g. hits / accesses."""

    name: str = ""
    numerator: int = 0
    denominator: int = 0

    def hit(self, n: int = 1) -> None:
        """Count ``n`` events in both numerator and denominator."""
        self.numerator += n
        self.denominator += n

    def miss(self, n: int = 1) -> None:
        """Count ``n`` events in the denominator only."""
        self.denominator += n

    @property
    def ratio(self) -> float:
        """numerator / denominator; 0.0 when the denominator is zero."""
        return self.numerator / self.denominator if self.denominator else 0.0

    def merge(self, other: "RatioStat") -> None:
        self.numerator += other.numerator
        self.denominator += other.denominator


class IntervalTracker:
    """Integrates the duration for which a boolean condition holds.

    The owner calls :meth:`update` whenever the condition *may* have changed,
    passing the current cycle; the tracker accumulates elapsed time while the
    condition was previously true.  :meth:`finalize` closes the open interval
    at the end of a run.  This event-driven design avoids sampling every
    queue on every cycle, which would dominate simulation time.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._active_since: int | None = None
        self._accumulated: int = 0

    def update(self, now: int, condition: bool) -> None:
        """Report the condition's value at cycle ``now``.

        Transitions are detected internally; calling with an unchanged
        condition is harmless (and cheap).
        """
        if condition:
            if self._active_since is None:
                self._active_since = now
        else:
            if self._active_since is not None:
                self._accumulated += now - self._active_since
                self._active_since = None

    def finalize(self, now: int) -> None:
        """Close any open interval at cycle ``now`` (end of simulation)."""
        if self._active_since is not None:
            self._accumulated += now - self._active_since
            self._active_since = None

    @property
    def active(self) -> bool:
        """Whether the condition is currently held open."""
        return self._active_since is not None

    def total(self, now: int | None = None) -> int:
        """Total cycles the condition has held.

        When ``now`` is given, an open interval is counted up to ``now``
        without closing it.
        """
        extra = 0
        if self._active_since is not None and now is not None:
            extra = now - self._active_since
        return self._accumulated + extra

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntervalTracker({self.name!r}, total={self._accumulated})"


class Histogram:
    """Bucketed distribution of non-negative integers (e.g. latencies).

    Values are grouped into fixed-width buckets; percentiles interpolate
    within the matched bucket, which is accurate to the bucket width —
    plenty for latency-tail characterization at ``bucket_width`` ~ a few
    cycles.
    """

    def __init__(self, name: str = "", bucket_width: int = 8) -> None:
        if bucket_width < 1:
            raise UsageError("bucket width must be >= 1")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def add(self, value: int) -> None:
        if value < 0:
            raise UsageError(f"histogram value must be >= 0, got {value}")
        bucket = value // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (bucket-width resolution)."""
        if not 0.0 <= q <= 1.0:
            raise UsageError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            in_bucket = self._buckets[bucket]
            if seen + in_bucket >= target:
                # Linear interpolation within the bucket.
                frac = (target - seen) / in_bucket
                return (bucket + frac) * self.bucket_width
            seen += in_bucket
        last = max(self._buckets)
        return (last + 1) * self.bucket_width

    def merge(self, other: "Histogram") -> None:
        if other.bucket_width != self.bucket_width:
            raise UsageError("cannot merge histograms with different widths")
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.1f})"
