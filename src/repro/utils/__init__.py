"""General-purpose utilities: statistics accumulators, means, tables, plots."""

from repro.utils.means import arithmetic_mean, geometric_mean, harmonic_mean
from repro.utils.stats import Accumulator, Histogram, IntervalTracker, RatioStat
from repro.utils.tables import render_table
from repro.utils.ascii_plot import line_plot

__all__ = [
    "Accumulator",
    "Histogram",
    "IntervalTracker",
    "RatioStat",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "render_table",
    "line_plot",
]
