"""Flat integer vectors for hot per-bank / per-warp state.

The simulator keeps per-bank timing state (``busy_until``, ``open_row``)
and similar per-entity quantities in flat integer vectors rather than
object attributes, so the per-cycle scans become index reads instead of
attribute hops.  The storage backend is picked by size:

* **small vectors** (below :data:`NUMPY_THRESHOLD` entries) use a plain
  Python ``list`` — per-element access from the interpreter is fastest on
  small lists, and ``min(list)`` beats the numpy call overhead;
* **large vectors** (scaled design-space configs reach 128 DRAM banks)
  use a numpy ``int64`` array when numpy is importable, so whole-vector
  reductions (:func:`vec_min`) run in C.

Set ``REPRO_NO_NUMPY=1`` to force the pure-Python backend everywhere
(used by the test suite to cover both paths).
"""

from __future__ import annotations

import os
from typing import Any

#: Vector length at which the numpy backend starts paying for itself.
NUMPY_THRESHOLD = 64

_np: Any = None
if not os.environ.get("REPRO_NO_NUMPY"):
    try:  # pragma: no cover - exercised via REPRO_NO_NUMPY matrix
        import numpy as _np_mod

        _np = _np_mod
    except ImportError:  # pragma: no cover - numpy is in the base image
        _np = None

#: Union of the two backends.  Both support integer indexing, item
#: assignment, ``len`` and iteration, which is all the hot paths use.
IntVec = Any


def int_vec(n: int, fill: int = 0) -> IntVec:
    """A length-``n`` integer vector initialised to ``fill``.

    Returns a plain list below :data:`NUMPY_THRESHOLD` entries and a
    numpy ``int64`` array at or above it (when numpy is available).
    """
    if _np is not None and n >= NUMPY_THRESHOLD:
        return _np.full(n, fill, dtype=_np.int64)
    return [fill] * n


def vec_min(vec: IntVec) -> int:
    """Minimum element as a plain ``int`` (never a numpy scalar).

    Wake hints derived from the result are shifted into the event
    calendar's integer heap encoding, so the fixed-width numpy scalar
    must not leak out.
    """
    if _np is not None and type(vec) is _np.ndarray:
        return int(vec.min())
    return min(vec)


def vec_fill(vec: IntVec, value: int) -> None:
    """Set every element to ``value`` in place."""
    if _np is not None and type(vec) is _np.ndarray:
        vec.fill(value)
        return
    for i in range(len(vec)):
        vec[i] = value


def vec_max_inplace(vec: IntVec, floor: int) -> None:
    """Clamp every element up to at least ``floor`` in place."""
    if _np is not None and type(vec) is _np.ndarray:
        _np.maximum(vec, floor, out=vec)
        return
    for i in range(len(vec)):
        if vec[i] < floor:
            vec[i] = floor
