"""repro — reproduction of *Characterizing Memory Bottlenecks in GPGPU
Workloads* (Dublish, Nagarajan, Topham; IISWC 2016).

A cycle-level GPU memory-hierarchy simulator (SIMT cores, L1D with MSHRs,
flit-based crossbars, banked L2 slices, FR-FCFS DRAM channels — all with
finite, instrumented queues and real back-pressure) plus the paper's
characterization methodology on top: the Figure 1 latency-tolerance
profile, the Section III queue-congestion measurement and the Table I /
Section IV design-space exploration.

Quickstart::

    from repro import small_gpu, get_benchmark, run_kernel

    metrics = run_kernel(small_gpu(), get_benchmark("lbm"))
    print(metrics.ipc, metrics.l2_accessq.full_fraction)
"""

from repro.sim.config import (
    CoreConfig,
    DRAMConfig,
    GPUConfig,
    ICNTConfig,
    L1Config,
    L2Config,
    fermi_gtx480,
    small_gpu,
    tiny_gpu,
)
from repro.gpu import GPU
from repro.core.metrics import RunMetrics, run_kernel
from repro.core.latency_profile import (
    DEFAULT_LATENCIES,
    LatencyProfile,
    profile_latency_tolerance,
)
from repro.core.congestion import CongestionReport, measure_congestion
from repro.core.design_space import (
    TABLE_I,
    DesignParameter,
    render_table_i,
    scale_level,
    scale_levels,
    scaled_config,
)
from repro.core.explorer import (
    SECTION_IV_CONFIGS,
    ExplorationResult,
    explore_design_space,
    sweep_parameter,
)
from repro.core.synergy import SynergyAnalysis, analyze_synergy
from repro.core.latency_breakdown import (
    LatencyBreakdown,
    congestion_share,
    measure_latency_breakdown,
)
from repro.core.bottleneck import (
    Bottleneck,
    Diagnosis,
    classify,
    diagnose_suite,
    render_diagnoses,
)
from repro.core.cost_model import (
    DEFAULT_COSTS,
    CostEffectiveness,
    configuration_cost,
    cost_effectiveness,
    pareto_frontier,
    render_cost_effectiveness,
)
from repro.core.scaling_curve import (
    ScalingCurve,
    render_scaling_curves,
    scale_level_by,
    sweep_scaling_coefficient,
)
from repro.core.replication import Replication, ReplicationReport, replicate
from repro.core.validation import Check, ValidationReport, validate_reproduction
from repro.runner import BatchRunner, Job, ResultCache, code_version
from repro.workloads.program import KernelProgram
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel
from repro.workloads.suite import BENCHMARKS, PAPER_SUITE, SPECS, get_benchmark
from repro.telemetry import RequestTracer, TimeSeriesProbe

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "DRAMConfig",
    "GPUConfig",
    "ICNTConfig",
    "L1Config",
    "L2Config",
    "fermi_gtx480",
    "small_gpu",
    "tiny_gpu",
    "GPU",
    "RunMetrics",
    "run_kernel",
    "DEFAULT_LATENCIES",
    "LatencyProfile",
    "profile_latency_tolerance",
    "CongestionReport",
    "measure_congestion",
    "TABLE_I",
    "DesignParameter",
    "render_table_i",
    "scale_level",
    "scale_levels",
    "scaled_config",
    "SECTION_IV_CONFIGS",
    "ExplorationResult",
    "explore_design_space",
    "sweep_parameter",
    "SynergyAnalysis",
    "analyze_synergy",
    "LatencyBreakdown",
    "congestion_share",
    "measure_latency_breakdown",
    "Bottleneck",
    "Diagnosis",
    "classify",
    "diagnose_suite",
    "render_diagnoses",
    "DEFAULT_COSTS",
    "CostEffectiveness",
    "configuration_cost",
    "cost_effectiveness",
    "pareto_frontier",
    "render_cost_effectiveness",
    "ScalingCurve",
    "render_scaling_curves",
    "scale_level_by",
    "sweep_scaling_coefficient",
    "Replication",
    "ReplicationReport",
    "replicate",
    "Check",
    "ValidationReport",
    "validate_reproduction",
    "BatchRunner",
    "Job",
    "ResultCache",
    "code_version",
    "RequestTracer",
    "TimeSeriesProbe",
    "KernelProgram",
    "SyntheticKernelSpec",
    "build_kernel",
    "BENCHMARKS",
    "PAPER_SUITE",
    "SPECS",
    "get_benchmark",
    "__version__",
]
