"""DRAM command scheduling policies.

The controller issues one *command* per cycle per channel: either a CAS
(column access) that dequeues a request and books its data transfer, or a
precharge+activate that opens a row for a queued request (the request
stays queued until its CAS).  The policy picks which command:

* **FR-FCFS** (first-ready, first-come first-served) — the baseline, as in
  GPGPU-Sim: prefer the oldest request whose row is already open (a CAS /
  row hit); otherwise activate for the oldest request whose bank is free.
  Its effectiveness grows with the scheduler-queue depth (Table I scales
  16 -> 64): a deeper queue exposes more row hits and bank parallelism,
  which is why the paper lists queue depth as an '='-type parameter.
* **FCFS** — strictly serves the oldest request (activating its row if
  needed); the in-order baseline for ablations.

Policies scan flat per-bank vectors (see :class:`repro.dram.bankstate.
BankFile`) and the bank/row coordinates the controller caches on each
request at admission (``request.dram_bank`` / ``request.dram_row``), so
the first-ready scan is index arithmetic with no per-bank objects or
address-mapper calls on the hot path.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError
from repro.mem.queue import StatQueue
from repro.mem.request import MemoryRequest
from repro.utils.vec import IntVec

#: Command kinds returned by a scheduler.
CAS = "cas"
ACTIVATE = "activate"


class DRAMScheduler:
    """Strategy object choosing the next DRAM command."""

    name = "base"

    def select(
        self,
        queue: StatQueue[MemoryRequest],
        busy_until: IntVec,
        open_row: IntVec,
        now: int,
        cas_ok: Callable[[MemoryRequest], bool],
    ) -> tuple[str, MemoryRequest] | None:
        """Pick ``(command, request)`` or None if nothing can issue.

        ``busy_until`` and ``open_row`` are the channel's flat per-bank
        vectors; queued requests carry cached ``dram_bank`` / ``dram_row``
        coordinates.  A CAS candidate needs its bank ready
        (``now >= busy_until[bank]``) with the right row open and must
        pass ``cas_ok`` (bus slot within reach, return-path headroom).
        An activate candidate needs its bank ready with a different (or
        no) row open.
        """
        raise NotImplementedError


class FCFSScheduler(DRAMScheduler):
    """Serve strictly the oldest request."""

    name = "fcfs"

    def select(self, queue, busy_until, open_row, now, cas_ok):
        for request in queue._items:
            bank = request.dram_bank
            if now < busy_until[bank]:
                continue
            if open_row[bank] == request.dram_row:
                if cas_ok(request):
                    return (CAS, request)
                return None  # strict order: wait for the head's bus slot
            return (ACTIVATE, request)
        return None


class FRFCFSScheduler(DRAMScheduler):
    """First-ready FCFS: oldest row hit first, else oldest activate."""

    name = "frfcfs"

    def select(self, queue, busy_until, open_row, now, cas_ok):
        # One age-ordered pass classifies every request: the oldest
        # serviceable row hit returns immediately, while banks with
        # *pending* hits on their open row are flagged — those rows must
        # not be closed by an activate, or two conflicting requests would
        # thrash the bank while e.g. a bus-gated CAS waits.  Activate
        # candidates (oldest per ready bank) are filtered against the
        # complete pending-hit mask afterwards, which preserves the
        # two-pass semantics at half the scan cost.
        pending_hits = 0  # bank bitmask
        seen_activate = 0
        activates: list = []
        for request in queue._items:
            bank = request.dram_bank
            if open_row[bank] == request.dram_row:
                pending_hits |= 1 << bank
                if now >= busy_until[bank] and cas_ok(request):
                    return (CAS, request)
            else:
                bit = 1 << bank
                if not seen_activate & bit and now >= busy_until[bank]:
                    seen_activate |= bit
                    activates.append((bit, request))
        for bit, request in activates:
            if not pending_hits & bit:
                return (ACTIVATE, request)
        return None


_SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "frfcfs": FRFCFSScheduler,
}


def make_scheduler(name: str) -> DRAMScheduler:
    """Instantiate a DRAM scheduling policy by name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ConfigError(f"unknown DRAM scheduler {name!r}") from None
