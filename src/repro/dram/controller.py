"""DRAM channel controller (one per memory partition).

Pipeline per cycle:

1. retire finished accesses — reads into the return queue towards L2
   (head-of-line stall when that queue is full), writes complete silently;
2. pull requests from the partition's L2 miss queue into the Table I
   *scheduler queue* (the structure whose full-time Section III reports);
3. issue one DRAM command chosen by the scheduling policy: a CAS dequeues
   the request and books its line transfer on the data bus
   (``line_bytes / (bus_bytes * data_rate)`` cycles — the Table I
   bus-width lever); a precharge+activate opens a row while the request
   *stays in the scheduler queue* — so a loaded channel shows up as a full
   scheduler queue, exactly what Section III measures.

A CAS only issues when the data bus is booked at most a small window
ahead, and reads only while in-flight reads leave headroom in the return
queue, so completions can never wedge the controller.
"""

from __future__ import annotations

from repro.dram.bankstate import BankState
from repro.dram.scheduler import ACTIVATE, make_scheduler
from repro.mem.address import AddressMapper
from repro.mem.pipe import DelayPipe
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.component import Component
from repro.sim.config import GPUConfig
from repro.utils.stats import Accumulator


class DRAMChannel(Component):
    """One GDDR channel plus its controller."""

    def __init__(
        self,
        name: str,
        config: GPUConfig,
        mapper: AddressMapper,
        partition_id: int,
    ) -> None:
        self.name = name
        self.partition_id = partition_id
        self._config = config
        self._mapper = mapper
        cfg = config.dram
        self.sched_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.sched_queue", cfg.sched_queue_depth
        )
        self.return_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.return_queue", cfg.return_queue_depth
        )
        self.banks = [BankState(bank_id=i) for i in range(cfg.banks)]
        self._scheduler = make_scheduler(cfg.scheduler)
        self._transfer_cycles = config.dram_transfer_cycles
        self._bus_free_at = 0
        self._completions: DelayPipe[MemoryRequest] = DelayPipe(
            f"{name}.completions", 0
        )
        self._reads_in_flight = 0
        self._next_refresh = cfg.refresh_interval or None
        #: Set by the GPU wiring: the L2 slice whose miss queue we drain.
        self.l2 = None
        # --- statistics ---
        self.reads: int = 0
        self.writes: int = 0
        self.refreshes: int = 0
        self.bus_busy_cycles: int = 0
        self.service_latency = Accumulator(f"{name}.service_latency")

    # ------------------------------------------------------------------
    # component protocol
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        # Fast path: controller completely idle and nothing to admit.
        if (
            self.sched_queue.empty
            and self._completions.empty
            and (self.l2 is None or self.l2.miss_queue.empty)
        ):
            return
        if self._next_refresh is not None and now >= self._next_refresh:
            self._refresh(now)
        self._retire(now)
        self._admit(now)
        self._issue(now)

    def _refresh(self, now: int) -> None:
        """Lock every bank out for a refresh and close its row."""
        cfg = self._config.dram
        lockout = now + cfg.refresh_cycles
        for bank in self.banks:
            bank.busy_until = max(bank.busy_until, lockout)
            bank.open_row = None
        self.refreshes += 1
        # Catch up if the channel idled through several intervals.
        while self._next_refresh <= now:
            self._next_refresh += cfg.refresh_interval

    def _retire(self, now: int) -> None:
        while self._completions.ready(now):
            request = self._completions.peek()
            if request.kind is AccessKind.WRITEBACK:
                self._completions.pop()
                request.stamp("dram_done", now)
                request.retired = True  # writebacks terminate at DRAM
                self.writes += 1
            else:
                # LOADs and write-allocate STORE fetches both return data to
                # the L2 so their MSHR entries release.
                if not self.return_queue.can_push():
                    break  # L2 fill path congested; hold completions
                self._completions.pop()
                request.stamp("dram_done", now)
                self._reads_in_flight -= 1
                self.return_queue.push(request, now)

    def _admit(self, now: int) -> None:
        """Move one request per cycle from the L2 miss queue to the
        scheduler queue (back-pressure lands in the miss queue when the
        scheduler queue is full)."""
        if self.l2 is None:
            return
        miss_queue = self.l2.miss_queue
        if not miss_queue.empty and self.sched_queue.can_push():
            request = miss_queue.pop(now)
            request.stamp("dram_in", now)
            self.sched_queue.push(request, now)

    def _issue(self, now: int) -> None:
        if self.sched_queue.empty:
            return
        timing = self._config.dram
        headroom = self.return_queue.capacity - len(self.return_queue)
        # The bus may be booked up to ``bus_window_transfers`` transfers
        # beyond the earliest possible data arrival (now + tCAS); measuring
        # from ``now`` alone would lock the channel whenever tCAS exceeds
        # the window.
        bus_window = timing.bus_window_transfers * self._transfer_cycles
        bus_gate_ok = self._bus_free_at - (now + timing.t_cas) <= bus_window

        def cas_ok(request: MemoryRequest) -> bool:
            if not bus_gate_ok:
                return False
            if request.kind is AccessKind.WRITEBACK:
                return True
            return self._reads_in_flight < headroom

        choice = self._scheduler.select(
            self.sched_queue,
            self.banks,
            self._bank_of,
            self._row_of,
            now,
            cas_ok,
        )
        if choice is None:
            return
        command, request = choice
        bank = self.banks[self._bank_of(request)]
        row = self._row_of(request)
        if command == ACTIVATE:
            # Precharge (if a row is open) + activate; the request stays in
            # the scheduler queue until its CAS.
            if bank.open_row is None:
                bank.row_closed += 1
                bank.busy_until = now + timing.t_rcd
            else:
                bank.row_conflicts += 1
                bank.busy_until = now + timing.t_rp + timing.t_rcd
            bank.open_row = row
            request.timestamps.setdefault("dram_act", now)
            return
        # CAS: dequeue, book the data bus, schedule completion.
        if "dram_act" not in request.timestamps:
            bank.row_hits += 1
        data_start = max(now + timing.t_cas, self._bus_free_at)
        done = data_start + self._transfer_cycles
        self._bus_free_at = done
        self.bus_busy_cycles += self._transfer_cycles
        self.sched_queue.remove(request, now)
        self.service_latency.add(done - now)
        if request.kind is not AccessKind.WRITEBACK:
            self._reads_in_flight += 1
            self.reads += 1
        self._completions.insert_at(request, done)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _bank_of(self, request: MemoryRequest) -> int:
        return self._mapper.dram_bank(request.line)

    def _row_of(self, request: MemoryRequest) -> int:
        return self._mapper.dram_row(request.line)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return (
            self.sched_queue.empty
            and self.return_queue.empty
            and self._completions.empty
        )

    def finalize(self, now: int) -> None:
        self.sched_queue.finalize(now)
        self.return_queue.finalize(now)

    # ------------------------------------------------------------------
    # sanitizer introspection
    # ------------------------------------------------------------------
    def inspect_queues(self):
        return (self.sched_queue, self.return_queue)

    def inspect_inflight(self):
        yield from self._completions

    # ------------------------------------------------------------------
    # telemetry sampling
    # ------------------------------------------------------------------
    def sample_queues(self):
        return (
            ("dram_schedq", self.sched_queue),
            ("dram_returnq", self.return_queue),
        )

    def sample_counters(self):
        return (
            ("dram_bus_busy_cycles", self.bus_busy_cycles),
            ("dram_reads", self.reads),
            ("dram_writes", self.writes),
        )

    @property
    def row_hit_rate(self) -> float:
        total = sum(b.accesses for b in self.banks)
        hits = sum(b.row_hits for b in self.banks)
        return hits / total if total else 0.0

    @property
    def total_accesses(self) -> int:
        return sum(b.accesses for b in self.banks)
