"""DRAM channel controller (one per memory partition).

Pipeline per cycle:

1. retire finished accesses — reads into the return queue towards L2
   (head-of-line stall when that queue is full), writes complete silently;
2. pull requests from the partition's L2 miss queue into the Table I
   *scheduler queue* (the structure whose full-time Section III reports);
3. issue one DRAM command chosen by the scheduling policy: a CAS dequeues
   the request and books its line transfer on the data bus
   (``line_bytes / (bus_bytes * data_rate)`` cycles — the Table I
   bus-width lever); a precharge+activate opens a row while the request
   *stays in the scheduler queue* — so a loaded channel shows up as a full
   scheduler queue, exactly what Section III measures.

A CAS only issues when the data bus is booked at most a small window
ahead, and reads only while in-flight reads leave headroom in the return
queue, so completions can never wedge the controller.
"""

from __future__ import annotations

from repro.dram.bankstate import BankFile
from repro.dram.scheduler import ACTIVATE, make_scheduler
from repro.mem.address import AddressMapper
from repro.mem.pipe import DelayPipe
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import GPUConfig
from repro.utils.stats import Accumulator


class DRAMChannel(Component):
    """One GDDR channel plus its controller."""

    def __init__(
        self,
        name: str,
        config: GPUConfig,
        mapper: AddressMapper,
        partition_id: int,
    ) -> None:
        self.name = name
        self.partition_id = partition_id
        self._config = config
        self._mapper = mapper
        cfg = config.dram
        self.sched_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.sched_queue", cfg.sched_queue_depth
        )
        self.return_queue: StatQueue[MemoryRequest] = StatQueue(
            f"{name}.return_queue", cfg.return_queue_depth
        )
        #: Flat per-bank timing vectors (the per-cycle scan structure);
        #: ``self.banks`` exposes the per-bank object views.
        self.bank_file = BankFile(cfg.banks)
        self.banks = self.bank_file.views
        self._scheduler = make_scheduler(cfg.scheduler)
        self._transfer_cycles = config.dram_transfer_cycles
        self._bus_free_at = 0
        self._completions: DelayPipe[MemoryRequest] = DelayPipe(
            f"{name}.completions", 0
        )
        self._reads_in_flight = 0
        self._next_refresh = cfg.refresh_interval or None
        #: Set by the GPU wiring: the L2 slice whose miss queue we drain.
        self.l2 = None
        # --- statistics ---
        self.reads: int = 0
        self.writes: int = 0
        self.refreshes: int = 0
        self.bus_busy_cycles: int = 0
        self.service_latency = Accumulator(f"{name}.service_latency")

    # ------------------------------------------------------------------
    # component protocol
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        # Fast path: controller completely idle and nothing to admit.
        if (
            not self.sched_queue._items
            and not self._completions._heap
            and (self.l2 is None or not self.l2.miss_queue._items)
        ):
            return
        if self._next_refresh is not None and now >= self._next_refresh:
            self._refresh(now)
        self._retire(now)
        self._admit(now)
        self._issue(now)

    def next_wake(self, now: int) -> int:
        # Mirrors step(): the idle fast path defers even refreshes, so an
        # idle channel sleeps until external input (the L2 miss queue,
        # which the L2's own hint covers).
        if self.l2 is not None and self.l2.miss_queue._items:
            return now
        wake = WAKE_NEVER
        heap = self._completions._heap
        if heap:
            ready = heap[0][0]
            if ready <= now:
                return now  # a completion retires (or head-of-line blocks)
            wake = ready
        if self.sched_queue._items:
            # A command can issue as soon as any bank's timing expires; the
            # bus-booking window only ever delays a CAS past that point.
            busy = self.bank_file.min_busy()
            if busy <= now:
                return now
            if busy < wake:
                wake = busy
        if wake != WAKE_NEVER and self._next_refresh is not None:
            # Busy channels take refresh lockouts at their due cycle.
            refresh = self._next_refresh
            if refresh <= now:
                return now
            if refresh < wake:
                wake = refresh
        return wake

    def _refresh(self, now: int) -> None:
        """Lock every bank out for a refresh and close its row."""
        cfg = self._config.dram
        self.bank_file.lockout(now + cfg.refresh_cycles)
        self.refreshes += 1
        # Catch up if the channel idled through several intervals.
        while self._next_refresh <= now:
            self._next_refresh += cfg.refresh_interval

    def _retire(self, now: int) -> None:
        while self._completions.ready(now):
            request = self._completions.peek()
            if request.kind is AccessKind.WRITEBACK:
                self._completions.pop()
                request.stamp("dram_done", now)
                request.retired = True  # writebacks terminate at DRAM
                self.writes += 1
            else:
                # LOADs and write-allocate STORE fetches both return data to
                # the L2 so their MSHR entries release.
                if not self.return_queue.can_push():
                    break  # L2 fill path congested; hold completions
                self._completions.pop()
                request.stamp("dram_done", now)
                self._reads_in_flight -= 1
                self.return_queue.push(request, now)

    def _admit(self, now: int) -> None:
        """Move one request per cycle from the L2 miss queue to the
        scheduler queue (back-pressure lands in the miss queue when the
        scheduler queue is full)."""
        if self.l2 is None:
            return
        miss_queue = self.l2.miss_queue
        if not miss_queue.empty and self.sched_queue.can_push():
            request = miss_queue.pop(now)
            request.stamp("dram_in", now)
            # Cache the bank/row coordinates once; the scheduler's
            # first-ready scan consults them every cycle the request waits.
            request.dram_bank = self._mapper.dram_bank(request.line)
            request.dram_row = self._mapper.dram_row(request.line)
            self.sched_queue.push(request, now)

    def _issue(self, now: int) -> None:
        if self.sched_queue.empty:
            return
        # Both command kinds need a bank whose timing has expired, so a
        # channel with every bank mid-access can skip the queue scan.
        bank_file = self.bank_file
        if bank_file.min_busy() > now:
            return
        timing = self._config.dram
        headroom = self.return_queue.capacity - len(self.return_queue)
        # The bus may be booked up to ``bus_window_transfers`` transfers
        # beyond the earliest possible data arrival (now + tCAS); measuring
        # from ``now`` alone would lock the channel whenever tCAS exceeds
        # the window.
        bus_window = timing.bus_window_transfers * self._transfer_cycles
        bus_gate_ok = self._bus_free_at - (now + timing.t_cas) <= bus_window

        def cas_ok(request: MemoryRequest) -> bool:
            if not bus_gate_ok:
                return False
            if request.kind is AccessKind.WRITEBACK:
                return True
            return self._reads_in_flight < headroom

        choice = self._scheduler.select(
            self.sched_queue,
            bank_file.busy_until,
            bank_file.open_row,
            now,
            cas_ok,
        )
        if choice is None:
            return
        command, request = choice
        bank = request.dram_bank
        row = request.dram_row
        if command == ACTIVATE:
            # Precharge (if a row is open) + activate; the request stays in
            # the scheduler queue until its CAS.
            if bank_file.open_row[bank] < 0:
                bank_file.row_closed[bank] += 1
                bank_file.busy_until[bank] = now + timing.t_rcd
            else:
                bank_file.row_conflicts[bank] += 1
                bank_file.busy_until[bank] = now + timing.t_rp + timing.t_rcd
            bank_file.open_row[bank] = row
            request.timestamps.setdefault("dram_act", now)
            return
        # CAS: dequeue, book the data bus, schedule completion.
        if "dram_act" not in request.timestamps:
            bank_file.row_hits[bank] += 1
        data_start = max(now + timing.t_cas, self._bus_free_at)
        done = data_start + self._transfer_cycles
        self._bus_free_at = done
        self.bus_busy_cycles += self._transfer_cycles
        self.sched_queue.remove(request, now)
        self.service_latency.add(done - now)
        if request.kind is not AccessKind.WRITEBACK:
            self._reads_in_flight += 1
            self.reads += 1
        self._completions.insert_at(request, done)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return (
            self.sched_queue.empty
            and self.return_queue.empty
            and self._completions.empty
        )

    def finalize(self, now: int) -> None:
        self.sched_queue.finalize(now)
        self.return_queue.finalize(now)

    # ------------------------------------------------------------------
    # sanitizer introspection
    # ------------------------------------------------------------------
    def inspect_queues(self):
        return (self.sched_queue, self.return_queue)

    def inspect_inflight(self):
        yield from self._completions

    # ------------------------------------------------------------------
    # telemetry sampling
    # ------------------------------------------------------------------
    def sample_queues(self):
        return (
            ("dram_schedq", self.sched_queue),
            ("dram_returnq", self.return_queue),
        )

    def sample_counters(self):
        return (
            ("dram_bus_busy_cycles", self.bus_busy_cycles),
            ("dram_reads", self.reads),
            ("dram_writes", self.writes),
        )

    @property
    def row_hit_rate(self) -> float:
        total = sum(b.accesses for b in self.banks)
        hits = sum(b.row_hits for b in self.banks)
        return hits / total if total else 0.0

    @property
    def total_accesses(self) -> int:
        return sum(b.accesses for b in self.banks)
