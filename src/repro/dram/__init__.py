"""DRAM channel model: bank state machines, scheduling policies, controller."""

from repro.dram.bankstate import BankFile, BankState
from repro.dram.scheduler import FCFSScheduler, FRFCFSScheduler, make_scheduler
from repro.dram.controller import DRAMChannel

__all__ = [
    "BankFile",
    "BankState",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "make_scheduler",
    "DRAMChannel",
]
