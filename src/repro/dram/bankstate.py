"""Per-bank DRAM state.

Each bank tracks its open row and the cycle until which it is busy with the
current access (including the data transfer).  Service latency for a new
access depends on the row-buffer state:

* **row hit** — the requested row is open: CAS latency only.
* **row closed** — no row open: activate (tRCD) + CAS.
* **row conflict** — a different row is open: precharge (tRP) + activate
  (tRCD) + CAS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import DRAMConfig


@dataclass(slots=True)
class BankState:
    """Dynamic state of one DRAM bank."""

    bank_id: int
    open_row: int | None = None
    busy_until: int = 0
    #: Statistics: accesses served by row-buffer state.
    row_hits: int = 0
    row_conflicts: int = 0
    row_closed: int = 0

    def ready(self, now: int) -> bool:
        """Whether the bank can start a new access at cycle ``now``."""
        return now >= self.busy_until

    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    def access_latency(self, row: int, timing: DRAMConfig) -> int:
        """Command latency (excluding data transfer) to access ``row``."""
        if self.open_row == row:
            return timing.t_cas
        if self.open_row is None:
            return timing.t_rcd + timing.t_cas
        return timing.t_rp + timing.t_rcd + timing.t_cas

    def record_access(self, row: int) -> None:
        """Update row-state statistics for an access about to start."""
        if self.open_row == row:
            self.row_hits += 1
        elif self.open_row is None:
            self.row_closed += 1
        else:
            self.row_conflicts += 1

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_conflicts + self.row_closed

    @property
    def row_hit_rate(self) -> float:
        total = self.accesses
        return self.row_hits / total if total else 0.0
