"""Per-bank DRAM state.

Each bank tracks its open row and the cycle until which it is busy with the
current access (including the data transfer).  Service latency for a new
access depends on the row-buffer state:

* **row hit** — the requested row is open: CAS latency only.
* **row closed** — no row open: activate (tRCD) + CAS.
* **row conflict** — a different row is open: precharge (tRP) + activate
  (tRCD) + CAS.

Storage layout
--------------

The timing-critical state lives in a :class:`BankFile`: flat integer
vectors (``busy_until``, ``open_row``) indexed by bank, which the
controller and the scheduling policies scan every cycle without touching
a Python object per bank.  :class:`BankState` is a property-backed *view*
of one slot — the stable per-bank interface used by statistics, tests and
debugging; mutations through a view are immediately visible to the flat
vectors and vice versa.
"""

from __future__ import annotations

from repro.sim.config import DRAMConfig
from repro.utils.vec import IntVec, int_vec, vec_fill, vec_max_inplace, vec_min

#: ``open_row`` sentinel for a closed (precharged) bank.  Real row ids are
#: non-negative, so equality against a request's row never matches it.
NO_ROW = -1


class BankFile:
    """Flat per-bank state vectors for one DRAM channel."""

    __slots__ = (
        "n_banks",
        "busy_until",
        "open_row",
        "row_hits",
        "row_conflicts",
        "row_closed",
        "views",
    )

    def __init__(self, n_banks: int, make_views: bool = True) -> None:
        self.n_banks = n_banks
        #: Cycle until which each bank is busy with its current command.
        self.busy_until: IntVec = int_vec(n_banks, 0)
        #: Open row per bank (:data:`NO_ROW` = closed).
        self.open_row: IntVec = int_vec(n_banks, NO_ROW)
        #: Row-buffer outcome statistics (cold path: plain lists).
        self.row_hits = [0] * n_banks
        self.row_conflicts = [0] * n_banks
        self.row_closed = [0] * n_banks
        #: Per-bank object views (``channel.banks[i]``).
        self.views = (
            [BankState(i, self) for i in range(n_banks)] if make_views else []
        )

    def min_busy(self) -> int:
        """Earliest cycle at which any bank's timing expires."""
        return vec_min(self.busy_until)

    def lockout(self, until: int) -> None:
        """Refresh: extend every bank's busy window and close its row."""
        vec_max_inplace(self.busy_until, until)
        vec_fill(self.open_row, NO_ROW)


class BankState:
    """View of one bank's slot in a :class:`BankFile`.

    Constructed standalone (``BankState(0)``) it owns a private
    single-slot file, preserving the original value-object behaviour for
    unit tests and ad-hoc use.
    """

    __slots__ = ("bank_id", "_file", "_slot")

    def __init__(self, bank_id: int, file: BankFile | None = None) -> None:
        self.bank_id = bank_id
        if file is None:
            self._file = BankFile(1, make_views=False)
            self._slot = 0
        else:
            self._file = file
            self._slot = bank_id

    # -- flat-vector accessors -----------------------------------------
    @property
    def open_row(self) -> int | None:
        row = self._file.open_row[self._slot]
        return None if row < 0 else int(row)

    @open_row.setter
    def open_row(self, row: int | None) -> None:
        self._file.open_row[self._slot] = NO_ROW if row is None else row

    @property
    def busy_until(self) -> int:
        return int(self._file.busy_until[self._slot])

    @busy_until.setter
    def busy_until(self, cycle: int) -> None:
        self._file.busy_until[self._slot] = cycle

    @property
    def row_hits(self) -> int:
        return self._file.row_hits[self._slot]

    @row_hits.setter
    def row_hits(self, value: int) -> None:
        self._file.row_hits[self._slot] = value

    @property
    def row_conflicts(self) -> int:
        return self._file.row_conflicts[self._slot]

    @row_conflicts.setter
    def row_conflicts(self, value: int) -> None:
        self._file.row_conflicts[self._slot] = value

    @property
    def row_closed(self) -> int:
        return self._file.row_closed[self._slot]

    @row_closed.setter
    def row_closed(self, value: int) -> None:
        self._file.row_closed[self._slot] = value

    # -- behaviour ------------------------------------------------------
    def ready(self, now: int) -> bool:
        """Whether the bank can start a new access at cycle ``now``."""
        return now >= self.busy_until

    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    def access_latency(self, row: int, timing: DRAMConfig) -> int:
        """Command latency (excluding data transfer) to access ``row``."""
        open_row = self._file.open_row[self._slot]
        if open_row == row:
            return timing.t_cas
        if open_row < 0:
            return timing.t_rcd + timing.t_cas
        return timing.t_rp + timing.t_rcd + timing.t_cas

    def record_access(self, row: int) -> None:
        """Update row-state statistics for an access about to start."""
        open_row = self._file.open_row[self._slot]
        if open_row == row:
            self._file.row_hits[self._slot] += 1
        elif open_row < 0:
            self._file.row_closed[self._slot] += 1
        else:
            self._file.row_conflicts[self._slot] += 1

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_conflicts + self.row_closed

    @property
    def row_hit_rate(self) -> float:
        total = self.accesses
        return self.row_hits / total if total else 0.0
