"""Interconnect: flit-based crossbars between SMs and memory partitions."""

from repro.icnt.crossbar import Crossbar, PacketSink
from repro.icnt.ring import RingNetwork

__all__ = ["Crossbar", "PacketSink", "RingNetwork"]
