"""Flit-based crossbar.

Two instances connect the SMs to the memory partitions: a *request* network
(L1 miss queues -> L2 access queues) and a *response* network (L2 response
queues -> L1 fill ports).  Each network port consists of
``config.icnt.channel_lanes`` parallel links, each moving one flit of
``config.icnt.flit_bytes`` per cycle — the Table I "Flit size (crossbar)"
parameter is therefore the per-port bandwidth of the L1<->L2 path.  With
the baseline 4-byte flit and 4 lanes, a 128-byte line response occupies a
port for 9 cycles, making the response network a first-order bandwidth
constraint (exactly the L1<->L2 congestion the paper characterizes).

Switching is wormhole-like: once a packet wins an output, both its input
and the output stay locked to it until the tail flit is delivered, and the
tail flit is only sent when the destination can accept the packet — so a
congested destination exerts back-pressure through the switch to the
source queues.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.mem.queue import StatQueue
from repro.mem.request import MemoryRequest
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import GPUConfig


@dataclass(slots=True)
class PacketSink:
    """Destination-port behaviour: admission test + delivery action."""

    can_accept: Callable[[MemoryRequest], bool]
    accept: Callable[[MemoryRequest, int], None]


@dataclass(slots=True)
class _Packet:
    request: MemoryRequest
    dest: int
    flits_left: int


class _InputPort:
    def __init__(self, capacity_pkts: int) -> None:
        self.fifo: deque[_Packet] = deque()
        self.capacity = capacity_pkts
        self.locked_to: int | None = None

    @property
    def has_room(self) -> bool:
        return len(self.fifo) < self.capacity


class Crossbar(Component):
    """N-input x M-output crossbar moving one flit per port per cycle."""

    def __init__(
        self,
        name: str,
        config: GPUConfig,
        sources: list[StatQueue[MemoryRequest]],
        sinks: list[PacketSink],
        route: Callable[[MemoryRequest], int],
        flit_count: Callable[[MemoryRequest], int],
        stamp_hop: str = "icnt",
    ) -> None:
        lanes = config.icnt.channel_lanes
        self.name = name
        self._sources = sources
        self._sinks = sinks
        self._route = route
        self._flit_count = flit_count
        #: Packet port-occupancy in cycles: ceil(flits / lanes).
        self._cycles_of = lambda req: max(1, -(-flit_count(req) // lanes))
        self._lanes = lanes
        self._stamp_hop = stamp_hop
        self._inputs = [
            _InputPort(config.icnt.input_queue_pkts) for _ in sources
        ]
        #: Source deque aliases (mutated in place by StatQueue), saving an
        #: attribute hop in the per-cycle injection/wake scans.
        self._src_items = [src._items for src in self._sources]
        #: (index, source queue, its deque, input port) rows for injection.
        self._pairs = list(
            zip(
                range(len(self._sources)),
                self._sources,
                self._src_items,
                self._inputs,
            )
        )
        #: Per-step wake-edge records for the event engine: which source
        #: queues were popped and which sinks received a packet.
        self._injected_sources: list[int] = []
        self._delivered_sinks: list[int] = []
        #: Number of input ports holding at least one packet.
        self._active_inputs = 0
        #: Output -> input currently locked to it (None = free).
        self._out_lock: list[int | None] = [None] * len(sinks)
        self._rr: list[int] = [0] * len(sinks)
        #: Per-output count of *unlocked* input ports whose head packet
        #: targets it — the flat-array grant index: an output with a zero
        #: count and no lock has no work, so arbitration skips it without
        #: scanning the input ports.
        self._head_dests: list[int] = [0] * len(sinks)
        # --- statistics ---
        self.flits_sent: int = 0
        self.packets_delivered: int = 0
        #: Output-port cycles wasted with a tail flit blocked by its sink.
        self.delivery_blocked_cycles: int = 0
        self.cycles: int = 0

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self.cycles += 1
        self._injected_sources.clear()
        self._delivered_sinks.clear()
        self._inject(now)
        if self._active_inputs:
            self._arbitrate_and_transfer(now)

    def injected_sources(self) -> list[int]:
        """Source indices popped during the last step (event wake edges)."""
        return self._injected_sources

    def delivered_sinks(self) -> list[int]:
        """Sink indices handed a packet during the last step."""
        return self._delivered_sinks

    def next_wake(self, now: int) -> int:
        if self._active_inputs:
            return now
        for items in self._src_items:
            if items:  # non-empty source: _inject acts this cycle
                return now
        return WAKE_NEVER

    def fast_forward(self, cycles: int) -> None:
        self.cycles += cycles  # the denominator of `utilization`

    def _inject(self, now: int) -> None:
        """Move packets from source queues into input-port FIFOs."""
        for idx, src, items, port in self._pairs:
            if not items:
                continue
            popped = False
            while port.has_room and not src.empty:
                request = src.pop(now)
                popped = True
                request.stamp(f"{self._stamp_hop}_in", now)
                dest = self._route(request)
                if not port.fifo:
                    self._active_inputs += 1
                    if port.locked_to is None:
                        self._head_dests[dest] += 1
                port.fifo.append(
                    _Packet(
                        request=request,
                        dest=dest,
                        flits_left=self._cycles_of(request),
                    )
                )
            if popped:
                self._injected_sources.append(idx)

    def _arbitrate_and_transfer(self, now: int) -> None:
        n_inputs = len(self._inputs)
        head_dests = self._head_dests
        out_lock = self._out_lock
        for out_idx, sink in enumerate(self._sinks):
            in_idx = out_lock[out_idx]
            if in_idx is None:
                if not head_dests[out_idx]:
                    continue  # no unlocked head targets this output
                in_idx = self._grant(out_idx, n_inputs)
                if in_idx is None:  # pragma: no cover - count says one exists
                    continue
            port = self._inputs[in_idx]
            packet = port.fifo[0]
            if packet.flits_left > 1:
                packet.flits_left -= 1
                self.flits_sent += 1
                continue
            # Tail flit: deliver only if the sink can take the packet.
            if not sink.can_accept(packet.request):
                self.delivery_blocked_cycles += 1
                continue
            self.flits_sent += 1
            self.packets_delivered += 1
            packet.request.stamp(f"{self._stamp_hop}_out", now)
            sink.accept(packet.request, now)
            self._delivered_sinks.append(out_idx)
            port.fifo.popleft()
            if not port.fifo:
                self._active_inputs -= 1
            else:
                head_dests[port.fifo[0].dest] += 1
            port.locked_to = None
            out_lock[out_idx] = None

    def _grant(self, out_idx: int, n_inputs: int) -> int | None:
        """Round-robin pick of an unlocked input whose head targets out_idx."""
        start = self._rr[out_idx]
        inputs = self._inputs
        for offset in range(n_inputs):
            in_idx = (start + offset) % n_inputs
            port = inputs[in_idx]
            if port.locked_to is not None or not port.fifo:
                continue
            if port.fifo[0].dest != out_idx:
                continue
            port.locked_to = out_idx
            self._out_lock[out_idx] = in_idx
            self._rr[out_idx] = (in_idx + 1) % n_inputs
            self._head_dests[out_idx] -= 1
            return in_idx
        return None

    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return all(not port.fifo for port in self._inputs)

    def inspect_inflight(self):
        for port in self._inputs:
            for packet in port.fifo:
                yield packet.request

    def sample_counters(self):
        return (
            (f"{self.name}_flits_sent", self.flits_sent),
            (f"{self.name}_packets_delivered", self.packets_delivered),
            (
                f"{self.name}_delivery_blocked_cycles",
                self.delivery_blocked_cycles,
            ),
        )

    @property
    def utilization(self) -> float:
        """Flits moved per output-port cycle (0..1 per port on average)."""
        total_port_cycles = self.cycles * len(self._sinks)
        return self.flits_sent / total_port_cycles if total_port_cycles else 0.0
