"""Bidirectional ring interconnect (alternative to the crossbar).

GPUs with few memory partitions sometimes use ring NoCs instead of
crossbars; the ring trades wiring cost for hop latency and for *shared*
link bandwidth — traffic between distant stations occupies every link on
its path.  Provided as an ablation topology: the same Table I flit-size
lever applies, but congestion forms on links instead of ports, so the
L1<->L2 bottleneck is sharper at equal raw bandwidth.

Model
-----
Stations (SM side and partition side, interleaved around the ring) are
connected by directed links in both rotation directions; a packet takes
the direction with fewer hops.  Each link carries ``channel_lanes`` flits
per cycle, so a packet serializes for ``ceil(flits/lanes)`` cycles per
link and additionally pays ``ring_hop_latency`` pipeline cycles per hop.
Link occupancy is booked at injection in path order — an approximation of
wormhole flow (documented; acceptable for topology ablations).  Arrivals
wait in a bounded arrival buffer when the destination queue is full,
blocking that buffer's future arrivals (back-pressure).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.errors import ConfigError
from repro.mem.pipe import DelayPipe
from repro.mem.queue import StatQueue
from repro.mem.request import MemoryRequest
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import GPUConfig
from repro.icnt.crossbar import PacketSink


class _Link:
    __slots__ = ("free_at", "busy_cycles")

    def __init__(self) -> None:
        self.free_at = 0
        self.busy_cycles = 0


class RingNetwork(Component):
    """One-direction-choice bidirectional ring."""

    #: Arrival-buffer capacity per output station.
    ARRIVAL_BUFFER = 4

    def __init__(
        self,
        name: str,
        config: GPUConfig,
        sources: list[StatQueue[MemoryRequest]],
        sinks: list[PacketSink],
        route: Callable[[MemoryRequest], int],
        flit_count: Callable[[MemoryRequest], int],
        stamp_hop: str = "icnt",
        hop_latency: int = 2,
    ) -> None:
        if hop_latency < 0:
            raise ConfigError("ring hop latency must be >= 0")
        self.name = name
        self._sources = sources
        self._sinks = sinks
        self._route = route
        self._stamp_hop = stamp_hop
        self._hop_latency = hop_latency
        lanes = config.icnt.channel_lanes
        self._cycles_of = lambda req: max(1, -(-flit_count(req) // lanes))

        # Interleave source and sink stations around the ring.
        self._n_stations = len(sources) + len(sinks)
        self._source_pos: list[int] = []
        self._sink_pos: list[int] = []
        src, dst = list(range(len(sources))), list(range(len(sinks)))
        position = 0
        while src or dst:
            if src:
                self._source_pos.append(position)
                position += 1
                src.pop()
            if dst:
                self._sink_pos.append(position)
                position += 1
                dst.pop()
        # Directed links: cw[i] is station i -> i+1; ccw[i] is i+1 -> i.
        self._cw = [_Link() for _ in range(self._n_stations)]
        self._ccw = [_Link() for _ in range(self._n_stations)]
        self._in_flight: DelayPipe[tuple[MemoryRequest, int]] = DelayPipe(
            f"{name}.flight", 0
        )
        self._arrivals: list[deque[MemoryRequest]] = [
            deque() for _ in sinks
        ]
        #: Per-step wake-edge records for the event engine (same contract
        #: as Crossbar.injected_sources / delivered_sinks).
        self._injected_sources: list[int] = []
        self._delivered_sinks: list[int] = []
        # --- statistics ---
        self.packets_delivered = 0
        self.total_hops = 0
        self.delivery_blocked_cycles = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    def _path(self, src_pos: int, dst_pos: int):
        """(links, hops) for the shorter rotation direction."""
        n = self._n_stations
        cw_hops = (dst_pos - src_pos) % n
        ccw_hops = (src_pos - dst_pos) % n
        if cw_hops <= ccw_hops:
            return (
                [self._cw[(src_pos + i) % n] for i in range(cw_hops)],
                cw_hops,
            )
        return (
            [self._ccw[(src_pos - 1 - i) % n] for i in range(ccw_hops)],
            ccw_hops,
        )

    def step(self, now: int) -> None:
        self.cycles += 1
        self._injected_sources.clear()
        self._delivered_sinks.clear()
        self._deliver(now)
        self._inject(now)

    def injected_sources(self) -> list[int]:
        """Source indices popped during the last step (event wake edges)."""
        return self._injected_sources

    def delivered_sinks(self) -> list[int]:
        """Sink indices handed a packet during the last step."""
        return self._delivered_sinks

    def next_wake(self, now: int) -> int:
        for buffer in self._arrivals:
            if buffer:
                return now  # arrivals retry their sink every cycle
        for src in self._sources:
            if src._items:
                return now
        wake = self._in_flight.next_ready_time()
        if wake is None:
            return WAKE_NEVER
        return wake if wake > now else now

    def fast_forward(self, cycles: int) -> None:
        self.cycles += cycles  # the denominator of `utilization`

    def _inject(self, now: int) -> None:
        for idx, source in enumerate(self._sources):
            if source.empty:
                continue
            request = source.peek()
            out_idx = self._route(request)
            links, hops = self._path(
                self._source_pos[idx], self._sink_pos[out_idx])
            serialize = self._cycles_of(request)
            # Back-pressure: refuse injection while the first link is booked
            # too far ahead or the destination's arrival buffer is full.
            if links and links[0].free_at - now > 4 * serialize:
                continue
            if len(self._arrivals[out_idx]) >= self.ARRIVAL_BUFFER:
                continue
            source.pop(now)
            self._injected_sources.append(idx)
            request.stamp(f"{self._stamp_hop}_in", now)
            arrive = now
            for link in links:
                start = max(arrive, link.free_at)
                link.free_at = start + serialize
                link.busy_cycles += serialize
                arrive = start + serialize + self._hop_latency
            self.total_hops += hops
            self._in_flight.insert_at((request, out_idx), arrive)

    def _deliver(self, now: int) -> None:
        for request, out_idx in self._in_flight.drain_ready(now):
            self._arrivals[out_idx].append(request)
        for out_idx, buffer in enumerate(self._arrivals):
            if not buffer:
                continue
            sink = self._sinks[out_idx]
            accepted = False
            while buffer and sink.can_accept(buffer[0]):
                request = buffer.popleft()
                request.stamp(f"{self._stamp_hop}_out", now)
                sink.accept(request, now)
                self.packets_delivered += 1
                accepted = True
            if accepted:
                self._delivered_sinks.append(out_idx)
            if buffer:
                self.delivery_blocked_cycles += 1

    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        return self._in_flight.empty and all(
            not buffer for buffer in self._arrivals
        )

    def inspect_inflight(self):
        for request, _ in self._in_flight:
            yield request
        for buffer in self._arrivals:
            yield from buffer

    def sample_counters(self):
        return (
            (f"{self.name}_packets_delivered", self.packets_delivered),
            (f"{self.name}_total_hops", self.total_hops),
            (
                f"{self.name}_delivery_blocked_cycles",
                self.delivery_blocked_cycles,
            ),
        )

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.packets_delivered \
            if self.packets_delivered else 0.0

    @property
    def utilization(self) -> float:
        """Average busy fraction across all directed links."""
        if not self.cycles:
            return 0.0
        links = self._cw + self._ccw
        return sum(l.busy_cycles for l in links) / (len(links) * self.cycles)
