"""Command-line interface.

Every experiment in the paper can be regenerated from the shell::

    repro suite                     # list the benchmark models
    repro table1                    # print Table I
    repro run lbm                   # run one benchmark, print its metrics
    repro run lbm --timeline        # ... plus per-window telemetry sparklines
    repro profile lbm               # top-down cycle accounting + blame chains
    repro profile lbm --diff baseline l2  # explain a speedup as reclaimed stalls
    repro congestion                # Section III queue-occupancy study
    repro latency-profile           # Figure 1
    repro explore                   # Section IV design-space exploration
    repro diagnose                  # classify each benchmark's bottleneck
    repro breakdown lbm             # per-hop latency breakdown of one kernel
    repro trace lbm --out trace.json  # Chrome/Perfetto trace of sampled requests
    repro replicate sc              # seed-sensitivity of one benchmark
    repro export out.csv            # dump suite metrics as CSV
    repro export out.json --format json  # ... or nested JSON
    repro validate                  # evaluate every claim of the paper
    repro campaign run DIR --configs baseline l2 --seeds 1 2  # sharded sweep
    repro campaign status DIR       # done/failed/claimed/pending + workers
    repro campaign resume DIR       # pick up a killed campaign, no rework
    repro serve --socket repro.sock           # simulation-as-a-service daemon
    repro submit --socket repro.sock --benchmarks nn sc --wait --out runs.csv
    repro status ID --socket repro.sock       # poll one submission
    repro results ID --socket repro.sock --out runs.csv
    repro cancel ID --socket repro.sock

All experiment commands accept ``--scale`` (iteration scale, default 1.0;
smaller is faster), ``--config`` (small / fermi / tiny) and ``--seed``.

Batch commands (``run``, ``congestion``, ``latency-profile``, ``explore``,
``replicate``, ``export``) additionally accept ``--jobs N`` (process-pool
fan-out; ``--jobs 1`` stays in-process), ``--no-cache`` and ``--cache-dir``.
Results are cached on disk keyed by config + kernel + seed + code version;
``repro cache info`` / ``repro cache clear`` / ``repro cache evict``
manage the store (``info`` also reports lifetime hit-rate statistics and
orphaned temp files).  Report output on stdout is byte-identical whatever
the parallelism or cache state — cache notes and truncation warnings go
to stderr.

``repro campaign run|status|resume`` shards a sweep (Section IV config
labels x benchmarks x seeds) into a persistent campaign directory that
any number of worker processes execute cooperatively: work units are
claimed through atomic claim files (stale claims of dead workers are
taken over after a heartbeat timeout), results land in one shared store,
and a killed campaign resumes from exactly what is done.  The merged
export (``--out``) is byte-identical to running the same sweep serially.

``repro serve`` runs the simulation service: a long-lived daemon
listening on a unix socket (``--socket PATH``) or loopback TCP
(``--port N``) whose JSON job API ``repro submit|status|results|cancel``
speaks.  Identical in-flight submissions from concurrent clients
coalesce onto one simulation pass; the submission queue is bounded
(typed ``queue-full`` backpressure); SIGTERM drains gracefully.  Results
fetched from the daemon are byte-identical to a local ``repro export``
of the same sweep.

Observability: ``repro run --timeline`` attaches the
:class:`repro.telemetry.TimeSeriesProbe` and renders cycle-windowed IPC /
queue-congestion / occupancy sparklines (``--window`` sets the window
length); ``repro profile`` attaches the
:class:`repro.telemetry.AttributionProbe` and renders the top-down
cycle-accounting tree plus back-pressure blame chains (``--diff A B``
explains the speedup between two Section IV config labels as reclaimed
stall cycles; ``--json`` exports the document); ``repro trace`` attaches
the :class:`repro.telemetry.RequestTracer` and writes Chrome trace-event
JSON (open in chrome://tracing or https://ui.perfetto.dev) along with a
per-hop latency digest (``--stride`` / ``--limit`` control sampling).
Batch commands additionally accept ``--events PATH`` (append a JSONL
runner event log: job start/finish with wall times, cache hits, retries,
pool utilization) and ``--progress`` (a one-line stderr ticker).

Errors deriving from :class:`repro.errors.ReproError` (bad usage, cycle
limits, sanitizer violations) print as ``error: ...`` on stderr with exit
code 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.core.bottleneck import diagnose_suite, render_diagnoses
from repro.core.congestion import measure_congestion
from repro.core.latency_breakdown import (
    congestion_share,
    measure_latency_breakdown,
)
from repro.core.design_space import render_table_i
from repro.core.explorer import explore_design_space
from repro.core.latency_profile import profile_latency_tolerance
from repro.core.metrics import run_kernel
from repro.core.profile import config_for_label, profile_diff, profile_kernel
from repro.core.replication import replicate
from repro.core.validation import validate_reproduction
from repro.core.export import export_runs, write_text
from repro.errors import ReproError, UsageError
from repro.core.report import (
    render_congestion,
    render_figure1,
    render_profile,
    render_profile_diff,
    render_section_iv,
    render_timeline,
)
from repro.core.synergy import analyze_synergy
from repro.runner import (
    BatchRunner,
    CampaignManifest,
    CampaignWorker,
    EventLog,
    Job,
    ResultCache,
    campaign_results,
    campaign_status,
    render_status,
)
from repro.runner.campaign import (
    DEFAULT_POLL,
    DEFAULT_STALE_AFTER,
    default_store,
)
from repro.service import (
    DEFAULT_QUEUE_DEPTH,
    ReproDaemon,
    ServiceClient,
    serve as service_serve,
    sweep_spec,
)
from repro.runner.cache import default_cache_dir
from repro.sim.config import (
    ENGINE_MODES,
    GPUConfig,
    fermi_gtx480,
    small_gpu,
    tiny_gpu,
)
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE, SPECS, get_benchmark

_CONFIGS = {
    "small": small_gpu,
    "fermi": fermi_gtx480,
    "tiny": tiny_gpu,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", choices=sorted(_CONFIGS), default="small",
        help="architecture configuration (default: small)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="benchmark iteration scale; < 1 runs faster (default: 1.0)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(PAPER_SUITE),
        metavar="NAME", help="subset of the suite to run")
    parser.add_argument(
        "--engine-mode", choices=ENGINE_MODES, default=None,
        help="simulation engine: 'ticked' steps every component every "
             "cycle, 'event' runs the event-calendar scheduler; results "
             "are byte-identical (default: $REPRO_ENGINE_MODE or ticked)")


def _add_runner(parser: argparse.ArgumentParser) -> None:
    """Batch-execution flags for commands ported onto repro.runner."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the batch (default: all CPUs; 1 runs "
             "in-process)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache for this invocation")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append a JSONL runner event log (job start/finish with wall "
             "times, cache hits, retries, pool utilization) to PATH")
    parser.add_argument(
        "--progress", action="store_true",
        help="show a one-line progress ticker on stderr while the batch "
             "runs (stdout output is unaffected)")


def _make_runner(args: argparse.Namespace) -> BatchRunner:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    events = EventLog(args.events) if args.events else None
    return BatchRunner(
        jobs=args.jobs, cache=cache, events=events, progress=args.progress)


def _note_batch(runner: BatchRunner, *metrics_groups) -> None:
    """Post-batch stderr notes: cache reuse and truncated runs.

    Notes go to stderr so report output on stdout stays byte-identical
    across ``--jobs`` settings and cold/warm cache runs.
    """
    stats = runner.total_stats
    if stats.cache_hits:
        print(
            f"cache: {stats.cache_hits} of {stats.unique} job(s) served "
            f"from cache ({stats.executed} executed)",
            file=sys.stderr)
    truncated = sum(
        1 for group in metrics_groups for m in group if m.truncated
    )
    if truncated:
        print(
            f"warning: {truncated} run(s) hit the cycle limit; their "
            "metrics are truncated lower bounds",
            file=sys.stderr)


def _config(args: argparse.Namespace) -> GPUConfig:
    return _CONFIGS[args.config]()


def _report_sim_profile(profiler, args: argparse.Namespace) -> None:
    """Print the cProfile top-N to stderr; optionally dump pstats data.

    Output goes to stderr so the metrics table on stdout stays
    byte-identical with and without profiling.
    """
    import pstats

    top = args.profile_sim if args.profile_sim is not None else 25
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative").print_stats(top)
    if args.profile_out:
        profiler.dump_stats(args.profile_out)
        print(f"wrote profile data to {args.profile_out}", file=sys.stderr)


def _cmd_suite(_args: argparse.Namespace) -> int:
    rows = [
        [name, spec.pattern, spec.iterations,
         spec.loads_per_iter * spec.txns_per_load, spec.compute_per_iter,
         spec.description[:58]]
        for name, spec in SPECS.items()
    ]
    print(render_table(
        ["benchmark", "pattern", "iters", "txns/iter", "compute/iter",
         "description"],
        rows, title="Synthetic models of the paper's benchmark suite",
        align="llrrrl"))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table_i())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    if args.magic_latency is not None:
        config = config.with_magic_memory(args.magic_latency)
    instrumented = args.sanitize or args.timeline
    profiling = args.profile_sim is not None or args.profile_out is not None
    if instrumented or profiling:
        # Observers hook simulator objects directly, and cProfile must
        # see the simulation frames, so these runs stay on the in-process
        # path regardless of --jobs (see docs/architecture.md, "Parallel
        # execution & caching").
        profiler = None
        if profiling:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        metrics = run_kernel(
            config, get_benchmark(args.benchmark, args.scale), seed=args.seed,
            sanitize=args.sanitize, sanitize_interval=args.sanitize_interval,
            timeline=args.timeline, timeline_window=args.window)
        if profiler is not None:
            profiler.disable()
            _report_sim_profile(profiler, args)
    else:
        runner = _make_runner(args)
        [metrics] = runner.run([
            Job(config, args.benchmark, seed=args.seed,
                iteration_scale=args.scale)
        ])
        _note_batch(runner, [metrics])
    rows = [
        ["cycles", metrics.cycles],
        ["instructions", metrics.instructions],
        ["IPC", f"{metrics.ipc:.3f}"],
        ["L1 hit rate", f"{metrics.l1_hit_rate:.1%}"],
        ["L2 hit rate", f"{metrics.l2_hit_rate:.1%}"],
        ["avg L1 miss latency", f"{metrics.l1_avg_miss_latency:.0f} cy"],
        ["L1 missQ full (of busy)", f"{metrics.l1_missq.full_fraction:.1%}"],
        ["L2 accessQ full (of busy)", f"{metrics.l2_accessq.full_fraction:.1%}"],
        ["L2 respQ full (of busy)", f"{metrics.l2_respq.full_fraction:.1%}"],
        ["DRAM schedQ full (of busy)", f"{metrics.dram_schedq.full_fraction:.1%}"],
        ["DRAM row-hit rate", f"{metrics.dram_row_hit_rate:.1%}"],
        ["DRAM bus utilization", f"{metrics.dram_bus_utilization:.1%}"],
        ["DRAM reads / writes", f"{metrics.dram_reads} / {metrics.dram_writes}"],
        ["mem-pipeline stall cycles", metrics.mem_pipeline_stall_cycles],
    ] + [
        [f"  {cause}", cycles]
        for cause, cycles in metrics.mem_stall_cycles_by_cause.items()
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"{args.benchmark} on {args.config} (scale {args.scale})"))
    sanitizer = metrics.extras.get("sanitizer")
    if sanitizer:
        print(
            f"\nsanitizer: {sanitizer['checks_run']} checks, "
            f"{sanitizer['requests_tracked']} requests tracked, "
            f"{sanitizer['requests_retired']} retired, "
            f"{sanitizer['requests_in_flight']} in flight — all invariants held"
        )
    timeline = metrics.extras.get("timeline")
    if timeline is not None:
        print()
        print(render_timeline(timeline))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    config = _config(args)
    if args.diff is not None:
        label_a, label_b = args.diff
        profiles = [
            profile_kernel(
                config_for_label(config, label),
                args.benchmark,
                config_label=label,
                iteration_scale=args.scale,
                seed=args.seed,
                window=args.window,
            )
            for label in (label_a, label_b)
        ]
        document = profile_diff(*profiles)
        print(render_profile_diff(document))
    else:
        document = profile_kernel(
            config_for_label(config, args.config_label),
            args.benchmark,
            config_label=args.config_label,
            iteration_scale=args.scale,
            seed=args.seed,
            window=args.window,
        )
        print(render_profile(document))
    if args.json:
        path = write_text(args.json, json.dumps(document, indent=2) + "\n")
        print(f"\nwrote profile JSON to {path}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = _config(args)
    metrics = run_kernel(
        config, get_benchmark(args.benchmark, args.scale), seed=args.seed,
        trace=True, trace_stride=args.stride, trace_limit=args.limit)
    trace = metrics.extras["trace"]
    path = write_text(
        args.out, json.dumps(trace, separators=(",", ":")) + "\n")
    meta = trace["otherData"]
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(
        f"wrote {path}: {spans} spans from {meta['requests_sampled']} "
        f"sampled requests (of {meta['requests_created']} created, "
        f"stride {meta['stride']}) — open in chrome://tracing or "
        "https://ui.perfetto.dev"
    )
    hops = metrics.extras["trace_hops"]
    if hops:
        rows = [
            [h["hop"], h["count"], f"{h['mean']:.1f}",
             f"{h['p50']:.0f}", f"{h['p95']:.0f}"]
            for h in hops
        ]
        print()
        print(render_table(
            ["hop", "requests", "mean cy", "p50", "p95"], rows,
            title="Per-hop latencies over the sampled requests",
            align="lrrrr"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.static or args.update_baseline:
        from repro.analysis.static import run_static

        return run_static(
            args.paths,
            fmt=args.format,
            output=args.output,
            baseline_path=args.baseline,
            update_baseline=args.update_baseline,
            no_baseline=args.no_baseline,
        )
    from repro.analysis.lint import run_lint

    return run_lint(args.paths)


def _cmd_congestion(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    report = measure_congestion(
        _config(args), benchmarks=args.benchmarks,
        iteration_scale=args.scale, seed=args.seed, runner=runner)
    print(render_congestion(report))
    _note_batch(runner, report.runs.values())
    return 0


def _cmd_latency_profile(args: argparse.Namespace) -> int:
    config = _config(args)
    runner = _make_runner(args)
    latencies = args.latencies or list(range(0, 801, args.step))
    profiles = [
        profile_latency_tolerance(
            name, config, latencies=latencies,
            iteration_scale=args.scale, seed=args.seed, runner=runner)
        for name in args.benchmarks
    ]
    print(render_figure1(profiles))
    _note_batch(
        runner,
        [p.baseline for p in profiles],
        [pt for p in profiles for pt in p.points],
    )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = explore_design_space(
        _config(args), benchmarks=args.benchmarks,
        iteration_scale=args.scale, seed=args.seed, runner=runner)
    print(render_section_iv(result, analyze_synergy(result)))
    _note_batch(
        runner, [m for per in result.runs.values() for m in per.values()])
    degraded = result.degraded_benchmarks("l1")
    if degraded:
        print(f"\nIsolated L1 scaling degraded: {', '.join(degraded)} "
              "(the paper's counter-productive case)")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    diagnoses = diagnose_suite(
        _config(args), benchmarks=args.benchmarks,
        iteration_scale=args.scale, seed=args.seed)
    print(render_diagnoses(diagnoses))
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    config = _config(args)
    breakdown = measure_latency_breakdown(
        config, args.benchmark, iteration_scale=args.scale, seed=args.seed)
    print(breakdown.to_table())
    share = congestion_share(breakdown, config)
    print(
        f"\ncongestion share of the L2-miss round trip: {share:.0%} "
        "(latency beyond the unloaded path)"
    )
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    report = replicate(
        _config(args), args.benchmark, seeds=tuple(args.seeds),
        iteration_scale=args.scale, runner=runner)
    print(report.to_table())
    print(f"\nworst coefficient of variation: {report.worst_cv():.1%}")
    _note_batch(runner)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    config = _config(args)
    runner = _make_runner(args)
    runs = runner.run([
        Job(config, name, seed=args.seed, iteration_scale=args.scale)
        for name in args.benchmarks
    ])
    path = export_runs(runs, args.output, args.format)
    print(f"wrote {len(runs)} runs to {path} ({args.format})")
    _note_batch(runner, runs)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        orphans = len(cache.orphan_temps())
        removed = cache.clear()
        note = f" (swept {orphans} orphaned temp file(s))" if orphans else ""
        print(
            f"removed {removed} cached result(s) from {cache.directory}{note}"
        )
    elif args.action == "evict":
        if args.max_bytes is None:
            raise UsageError("cache evict requires --max-bytes")
        evicted = cache.evict(args.max_bytes)
        count, size, _ = cache.stats()
        print(
            f"evicted {len(evicted)} entr(ies); cache {cache.directory}: "
            f"{count} entries, {size} bytes"
        )
    else:
        count, size, orphans = cache.stats()
        print(f"cache {cache.directory}: {count} entries, {size} bytes")
        if orphans:
            print(
                f"warning: {orphans} orphaned temp file(s) from killed "
                "writers (cache clear sweeps them)"
            )
        usage = cache.usage_stats()
        lookups = usage["hits"] + usage["misses"]
        if lookups:
            print(
                f"lifetime lookups: {lookups} ({usage['hits']} hits, "
                f"{usage['misses']} misses, "
                f"{usage['hits'] / lookups:.1%} hit rate over "
                f"{usage['batches']} batches)"
            )
    return 0


def _campaign_store(args: argparse.Namespace) -> ResultCache:
    """The campaign's shared store (default: ``<dir>/store``).

    Either way the store's eviction is manifest-protected: a size bound
    can never delete entries the campaign counts as done.
    """
    return default_store(
        args.directory,
        max_bytes=getattr(args, "store_max_bytes", None),
        cache_dir=args.cache_dir or None,
    )


def _campaign_jobs(args: argparse.Namespace) -> list[Job]:
    """The sweep matrix: Section IV config labels x benchmarks x seeds."""
    base = _CONFIGS[args.config]()
    return [
        Job(config_for_label(base, label), name, seed=seed,
            iteration_scale=args.scale)
        for label in args.configs
        for name in args.benchmarks
        for seed in args.seeds
    ]


def _cmd_campaign(args: argparse.Namespace) -> int:
    store = _campaign_store(args)
    if args.action == "status":
        print(render_status(campaign_status(args.directory, cache=store)))
        return 0

    if args.action == "run":
        jobs = _campaign_jobs(args)

        def _verify_join() -> None:
            # Joining an existing campaign: the requested sweep must be
            # the same work list, otherwise results would not line up.
            manifest = CampaignManifest.load(args.directory)
            requested: list[str] = []
            seen: set[str] = set()
            for job in jobs:
                key = job.key()
                if key not in seen:
                    seen.add(key)
                    requested.append(key)
            if manifest.keys() != requested:
                raise UsageError(
                    f"campaign at {args.directory} exists with a different "
                    "work list; resume it without sweep flags, or use a "
                    "fresh directory"
                )

        if CampaignManifest.path_for(args.directory).exists():
            _verify_join()
        else:
            try:
                CampaignManifest.create(args.directory, jobs)
            except UsageError:
                # Lost the creation race to a concurrently started
                # worker: join its manifest instead of bailing out.
                if not CampaignManifest.path_for(args.directory).exists():
                    raise
                _verify_join()

    worker = CampaignWorker(
        args.directory,
        worker=args.worker,
        jobs=args.jobs,
        cache=store,
        stale_after=args.stale_after,
        poll=args.poll,
        retry_failed=getattr(args, "retry_failed", False),
    )
    report = worker.run(wait=not args.no_wait)
    status = campaign_status(args.directory, cache=store)
    print(
        f"worker {worker.worker}: executed {report.executed}, "
        f"failed {report.failed} "
        f"({report.skipped_done} already done)", file=sys.stderr)
    print(render_status(status))
    if args.out and status.done == status.total:
        results = campaign_results(args.directory, cache=store)
        path = export_runs(results, args.out, args.format)
        print(f"wrote {len(results)} runs to {path} ({args.format})")
    return 0 if status.done == status.total else 1


def _service_client(args: argparse.Namespace) -> ServiceClient:
    if not args.socket and args.port is None:
        raise UsageError(
            "connect with --socket PATH or --port N (matching `repro serve`)")
    return ServiceClient(
        socket_path=args.socket or None, port=args.port, host=args.host)


def _render_submission(status: dict) -> str:
    line = (
        f"submission {status['id']}: {status['state']} "
        f"({status['done']}/{status['total']} done, "
        f"{status['clients']} client(s))"
    )
    if status.get("error"):
        line += f"\n  error: {status['error']}"
    return line


def _cmd_serve(args: argparse.Namespace) -> int:
    state_dir = args.state_dir or (default_cache_dir() / "service")
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    daemon = ReproDaemon(
        state_dir,
        cache=cache,
        workers=args.workers,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
    )
    # Build the listener before announcing, so the printed address is
    # already accepting connections (CI waits on this line).
    print(
        f"repro service: state dir {daemon.state_dir}, "
        f"{args.workers} worker(s), queue depth {args.queue_depth}",
        file=sys.stderr)
    server = service_serve(
        daemon, socket_path=args.socket or None, port=args.port,
        host=args.host)
    print(
        f"repro service: drained and stopped ({server.address})",
        file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _service_client(args)
    spec = sweep_spec(
        config=args.config,
        configs=args.configs,
        benchmarks=args.benchmarks,
        seeds=args.seeds,
        scale=args.scale,
    )
    response = client.submit(spec)
    if response.get("coalesced"):
        print(
            f"coalesced onto in-flight submission {response['id']}",
            file=sys.stderr)
    print(_render_submission(response))
    if not (args.wait or args.out):
        return 0
    status = client.wait_done(
        response["id"], poll=args.poll, timeout=args.timeout)
    print(_render_submission(status))
    if status["state"] != "done":
        return 1
    if args.out:
        result = client.results(status["id"], args.format)
        path = write_text(args.out, result["text"])
        print(f"wrote {status['total']} runs to {path} ({args.format})")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.follow:
        state = None
        for message in client.stream_events(args.id):
            if "done" in message:
                state = message.get("state")
                break
            event = message.get("event", {})
            print(json.dumps(event, separators=(",", ":")))
        status = client.status(args.id)
        print(_render_submission(status))
        return 0 if state == "done" else 1
    status = client.status(args.id)
    print(_render_submission(status))
    if args.events:
        for record in client.events(args.id)["events"]:
            print(json.dumps(record, separators=(",", ":")))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    client = _service_client(args)
    result = client.results(args.id, args.format)
    if args.out:
        path = write_text(args.out, result["text"])
        print(f"wrote results of {args.id} to {path} ({args.format})")
    else:
        sys.stdout.write(result["text"])
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _service_client(args)
    status = client.cancel(args.id)
    print(_render_submission(status))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    report = validate_reproduction(
        _config(args), iteration_scale=args.scale, seed=args.seed)
    print(report.to_table())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Characterizing Memory Bottlenecks in "
                    "GPGPU Workloads' (IISWC 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="list the benchmark models").set_defaults(
        func=_cmd_suite)
    sub.add_parser("table1", help="print Table I").set_defaults(
        func=_cmd_table1)

    run = sub.add_parser("run", help="run one benchmark and print metrics")
    run.add_argument("benchmark", choices=sorted(SPECS))
    run.add_argument(
        "--magic-latency", type=int, default=None,
        help="use the fixed-latency magic memory below L1 (Figure 1 mode)")
    run.add_argument(
        "--sanitize", action="store_true",
        help="attach the invariant sanitizer (request conservation, MSHR "
             "leaks, queue bounds, deadlock); fails loudly on violations")
    run.add_argument(
        "--sanitize-interval", type=int, default=64, metavar="CYCLES",
        help="cycles between sanitizer epochs (default: 64; 1 checks "
             "every cycle)")
    run.add_argument(
        "--timeline", action="store_true",
        help="attach the telemetry probe and print per-window IPC / "
             "queue-congestion / occupancy sparklines")
    run.add_argument(
        "--window", type=int, default=None, metavar="CYCLES",
        help="telemetry window length in cycles (default: 2000)")
    run.add_argument(
        "--profile-sim", type=int, nargs="?", const=25, default=None,
        metavar="N",
        help="profile the simulation with cProfile and print the top N "
             "functions by cumulative time to stderr (default N: 25; "
             "forces the in-process path)")
    run.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="also dump the raw pstats profile data to PATH (for "
             "snakeviz / pstats post-processing; implies profiling)")
    _add_common(run)
    _add_runner(run)
    run.set_defaults(func=_cmd_run)

    profile = sub.add_parser(
        "profile",
        help="top-down cycle accounting and bottleneck blame chains for "
             "one benchmark")
    profile.add_argument("benchmark", choices=sorted(SPECS))
    profile.add_argument(
        "--config-label", default="baseline", metavar="LABEL",
        help="Section IV scaling label to profile (baseline, l1, l2, "
             "dram, l1+l2, l2+dram; default: baseline)")
    profile.add_argument(
        "--diff", nargs=2, default=None, metavar=("A", "B"),
        help="profile two Section IV labels and explain B's speedup over "
             "A as reclaimed stall cycles (overrides --config-label)")
    profile.add_argument(
        "--window", type=int, default=None, metavar="CYCLES",
        help="attribution window length in cycles (default: 2000)")
    profile.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the profile (or diff) document as JSON to PATH")
    _add_common(profile)
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace",
        help="run one benchmark and write a Chrome/Perfetto trace of "
             "sampled requests")
    trace.add_argument("benchmark", choices=sorted(SPECS))
    trace.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output path for the trace-event JSON (default: trace.json)")
    trace.add_argument(
        "--stride", type=int, default=None, metavar="N",
        help="trace every N-th coalescer-issued request (default: 16; "
             "1 traces everything)")
    trace.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap on traced requests (default: 4096)")
    _add_common(trace)
    trace.set_defaults(func=_cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="run the repo's custom lint rules (REP001-005), or the "
             "whole-program static verifier with --static (REP001-012)")
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    lint.add_argument(
        "--static", action="store_true",
        help="run the whole-program verifier: component contracts "
             "(REP006-008), determinism (REP009-011) and layering "
             "(REP012) on top of the classic rules, with baseline and "
             "SARIF support")
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format for --static (default: text)")
    lint.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the --static report to a file instead of stdout")
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file for --static (default: "
             ".repro-static-baseline.json in the working directory, "
             "if present)")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: report every finding")
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings (preserving "
             "justifications of surviving entries) and exit 0")
    lint.set_defaults(func=_cmd_lint)

    cong = sub.add_parser(
        "congestion", help="Section III: queue-occupancy measurement")
    _add_common(cong)
    _add_runner(cong)
    cong.set_defaults(func=_cmd_congestion)

    prof = sub.add_parser(
        "latency-profile", help="Figure 1: latency tolerance profile")
    prof.add_argument(
        "--latencies", nargs="*", type=int, default=None,
        help="explicit latency points (default 0..800)")
    prof.add_argument(
        "--step", type=int, default=100,
        help="latency grid step when --latencies not given (default 100)")
    _add_common(prof)
    _add_runner(prof)
    prof.set_defaults(func=_cmd_latency_profile)

    explore = sub.add_parser(
        "explore", help="Section IV: design-space exploration")
    _add_common(explore)
    _add_runner(explore)
    explore.set_defaults(func=_cmd_explore)

    diagnose = sub.add_parser(
        "diagnose", help="classify each benchmark's dominant bottleneck")
    _add_common(diagnose)
    diagnose.set_defaults(func=_cmd_diagnose)

    breakdown = sub.add_parser(
        "breakdown", help="per-hop latency breakdown of one benchmark")
    breakdown.add_argument("benchmark", choices=sorted(SPECS))
    _add_common(breakdown)
    breakdown.set_defaults(func=_cmd_breakdown)

    repl = sub.add_parser(
        "replicate", help="seed-sensitivity of one benchmark's metrics")
    repl.add_argument("benchmark", choices=sorted(SPECS))
    repl.add_argument(
        "--seeds", nargs="*", type=int, default=[1, 2, 3, 4, 5])
    _add_common(repl)
    _add_runner(repl)
    repl.set_defaults(func=_cmd_replicate)

    export = sub.add_parser(
        "export", help="run the suite and export metrics as CSV or JSON")
    export.add_argument("output", help="output path")
    export.add_argument(
        "--format", choices=["csv", "json"], default="csv",
        help="export format: flat csv or nested json preserving the "
             "queue families (default: csv)")
    _add_common(export)
    _add_runner(export)
    export.set_defaults(func=_cmd_export)

    validate = sub.add_parser(
        "validate",
        help="run the full battery and evaluate every claim of the paper")
    _add_common(validate)
    validate.set_defaults(func=_cmd_validate)

    cache = sub.add_parser(
        "cache", help="inspect, clear or size-bound the on-disk result cache")
    cache.add_argument(
        "action", choices=["info", "clear", "evict"],
        help="info: entry count, size, orphans and lifetime hit rate; "
             "clear: delete every entry (sweeping orphaned temp files); "
             "evict: drop least-recently-used entries past --max-bytes")
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="size bound for the evict action")
    cache.set_defaults(func=_cmd_cache)

    campaign = sub.add_parser(
        "campaign",
        help="distributed, resumable sweep campaigns over a shared "
             "result store")
    csub = campaign.add_subparsers(dest="action", required=True)

    def _add_campaign_worker(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("directory", help="campaign directory")
        parser.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for this worker's batches (default: "
                 "all CPUs)")
        parser.add_argument(
            "--worker", default=None, metavar="NAME",
            help="worker name for claims/ledger/event log (default: "
                 "worker-<pid>)")
        parser.add_argument(
            "--stale-after", type=float, default=DEFAULT_STALE_AFTER,
            metavar="SECONDS",
            help="take over a claim whose heartbeat is older than this "
                 f"(default: {DEFAULT_STALE_AFTER:.0f}s)")
        parser.add_argument(
            "--poll", type=float, default=DEFAULT_POLL, metavar="SECONDS",
            help="poll interval while other workers hold the remaining "
                 f"units (default: {DEFAULT_POLL}s)")
        parser.add_argument(
            "--no-wait", action="store_true",
            help="return when nothing is claimable instead of waiting "
                 "for other workers' units to settle")
        parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="shared result store (default: <directory>/store)")
        parser.add_argument(
            "--store-max-bytes", type=int, default=None, metavar="N",
            help="size-bound the shared store: LRU-evict entries past N "
                 "bytes after each write")
        parser.add_argument(
            "--out", default=None, metavar="PATH",
            help="export the merged results here once every unit is done")
        parser.add_argument(
            "--format", choices=["csv", "json"], default="csv",
            help="export format for --out (default: csv)")

    crun = csub.add_parser(
        "run",
        help="create the campaign manifest (config labels x benchmarks x "
             "seeds) if absent, then work it; rerunning the same command "
             "joins as another worker")
    crun.add_argument(
        "--config", choices=sorted(_CONFIGS), default="small",
        help="architecture configuration (default: small)")
    crun.add_argument(
        "--scale", type=float, default=1.0,
        help="benchmark iteration scale (default: 1.0)")
    crun.add_argument(
        "--benchmarks", nargs="*", default=list(PAPER_SUITE),
        metavar="NAME", help="benchmarks in the sweep (default: the suite)")
    crun.add_argument(
        "--seeds", nargs="*", type=int, default=[1], metavar="SEED",
        help="seeds in the sweep (default: 1)")
    crun.add_argument(
        "--configs", nargs="*", default=["baseline"], metavar="LABEL",
        help="Section IV scaling labels in the sweep (baseline, l1, l2, "
             "dram, l1+l2, l2+dram; default: baseline)")
    _add_campaign_worker(crun)
    crun.set_defaults(func=_cmd_campaign)

    cresume = csub.add_parser(
        "resume",
        help="work an existing campaign: completed units are never "
             "re-simulated, stale claims are taken over")
    cresume.add_argument(
        "--retry-failed", action="store_true",
        help="re-attempt units whose latest ledger record is a failure")
    _add_campaign_worker(cresume)
    cresume.set_defaults(func=_cmd_campaign)

    cstatus = csub.add_parser(
        "status",
        help="merged campaign view: unit counts, per-worker event-log "
             "summaries, live claims")
    cstatus.add_argument("directory", help="campaign directory")
    cstatus.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result store (default: <directory>/store)")
    cstatus.set_defaults(func=_cmd_campaign)

    def _add_service_conn(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--socket", default=None, metavar="PATH",
            help="unix socket the daemon listens on")
        parser.add_argument(
            "--port", type=int, default=None, metavar="N",
            help="loopback TCP port the daemon listens on (instead of "
                 "--socket; 0 picks a free port)")
        parser.add_argument(
            "--host", default="127.0.0.1", metavar="HOST",
            help="TCP bind/connect host for --port (default: 127.0.0.1)")

    srv = sub.add_parser(
        "serve",
        help="run the simulation service: a daemon that coalesces "
             "identical submissions, queues with backpressure and drains "
             "gracefully on SIGTERM")
    _add_service_conn(srv)
    srv.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="daemon state (store + per-submission event logs; default: "
             "<cache dir>/service)")
    srv.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent submissions executed (default: 1)")
    srv.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="process-pool width per submission (default: all CPUs; "
             "1 runs in-process)")
    srv.add_argument(
        "--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH, metavar="N",
        help="bound on queued submissions; submits past it are rejected "
             f"with the typed queue-full error (default: {DEFAULT_QUEUE_DEPTH})")
    srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store for the daemon (default: <state-dir>/store)")
    srv.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running daemon; identical concurrent "
             "submissions coalesce onto one simulation pass")
    _add_service_conn(submit)
    submit.add_argument(
        "--config", choices=sorted(_CONFIGS), default="small",
        help="architecture configuration (default: small)")
    submit.add_argument(
        "--scale", type=float, default=1.0,
        help="benchmark iteration scale (default: 1.0)")
    submit.add_argument(
        "--benchmarks", nargs="*", default=list(PAPER_SUITE),
        metavar="NAME", help="benchmarks in the sweep (default: the suite)")
    submit.add_argument(
        "--seeds", nargs="*", type=int, default=[1], metavar="SEED",
        help="seeds in the sweep (default: 1)")
    submit.add_argument(
        "--configs", nargs="*", default=["baseline"], metavar="LABEL",
        help="Section IV scaling labels in the sweep (default: baseline)")
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the submission settles (implied by --out)")
    submit.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="status poll interval with --wait (default: 0.2s)")
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (default: wait forever)")
    submit.add_argument(
        "--out", default=None, metavar="PATH",
        help="wait, then write the merged results here")
    submit.add_argument(
        "--format", choices=["csv", "json"], default="csv",
        help="export format for --out (default: csv)")
    submit.set_defaults(func=_cmd_submit)

    sstatus = sub.add_parser(
        "status", help="show one submission's state and progress")
    sstatus.add_argument("id", help="submission id (from `repro submit`)")
    _add_service_conn(sstatus)
    sstatus.add_argument(
        "--events", action="store_true",
        help="also print the submission's event log as JSON lines")
    sstatus.add_argument(
        "--follow", action="store_true",
        help="stream events as they happen until the submission settles")
    sstatus.set_defaults(func=_cmd_status)

    results = sub.add_parser(
        "results",
        help="fetch a completed submission's merged results "
             "(byte-identical to a local `repro export` of the sweep)")
    results.add_argument("id", help="submission id (from `repro submit`)")
    _add_service_conn(results)
    results.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the results here (default: stdout)")
    results.add_argument(
        "--format", choices=["csv", "json"], default="csv",
        help="export format (default: csv)")
    results.set_defaults(func=_cmd_results)

    cancel = sub.add_parser(
        "cancel",
        help="cancel a submission (queued: immediately; running: at the "
             "next chunk boundary)")
    cancel.add_argument("id", help="submission id (from `repro submit`)")
    _add_service_conn(cancel)
    cancel.set_defaults(func=_cmd_cancel)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "engine_mode", None):
        # Exported (not just passed down) so forked pool workers and
        # subprocesses inherit the choice via default_sim_config().
        os.environ["REPRO_ENGINE_MODE"] = args.engine_mode
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (`... | head`, `... | grep -q`) closed the
        # pipe: the conventional quiet exit, not a traceback.  Detach
        # stdout so interpreter shutdown does not re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except ReproError as exc:
        # One line per error (multi-line diagnostics are indented under
        # it) instead of a traceback; exit code 2 distinguishes simulator
        # failures from the validation-failed exit code 1.
        message = str(exc).splitlines() or [exc.__class__.__name__]
        print(f"error: {message[0]}", file=sys.stderr)
        for line in message[1:]:
            print(f"  {line}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
