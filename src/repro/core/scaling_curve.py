"""Scaling-coefficient curves.

Table I uses a ~4x scaling "just to demonstrate the potential of resolving
congestion at each level"; the paper notes the *actual* scaling would
weigh costs.  This analysis sweeps the scaling coefficient itself —
applying every parameter of a level at 1x, 2x, 4x, 8x of its baseline —
to locate where each level's benefit saturates, which is the input a
cost-aware designer needs.

The bus-width exception is preserved: the paper scales it 2x where other
parameters scale 4x, i.e. at coefficient ``k`` the bus scales ``sqrt(k)``
(rounded to a power of two).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.core.design_space import parameters_for_level
from repro.core.metrics import RunMetrics, run_kernel
from repro.errors import ConfigError
from repro.sim.config import GPUConfig
from repro.utils.means import arithmetic_mean
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE, get_benchmark
from repro.runner import BatchRunner, Job


def _pow2_at_least(x: float) -> int:
    return 1 << max(0, math.ceil(math.log2(max(1.0, x))))


def scale_level_by(config: GPUConfig, level: str, factor: int) -> GPUConfig:
    """Scale every Table I parameter of ``level`` by ``factor``.

    ``factor`` must be a power of two >= 1 so banked/width parameters stay
    powers of two.  The DRAM bus width scales by ``sqrt(factor)`` (paper's
    2x-at-4x exception).
    """
    if factor < 1 or factor & (factor - 1):
        raise ConfigError(f"scaling factor must be a power of two, got {factor}")
    for parameter in parameters_for_level(level):
        if parameter.key == "dram_bus_width":
            value = parameter.baseline * _pow2_at_least(math.sqrt(factor))
        else:
            value = parameter.baseline * factor
        config = parameter.apply(config, value)
    return config


@dataclass(frozen=True)
class ScalingCurve:
    """Average speedup of one level across scaling coefficients."""

    level: str
    #: coefficient -> benchmark -> metrics.
    runs: Mapping[int, Mapping[str, RunMetrics]]

    def average_speedup(self, factor: int) -> float:
        base = self.runs[1]
        scaled = self.runs[factor]
        return arithmetic_mean(
            scaled[b].ipc / base[b].ipc for b in base
        )

    def saturation_factor(self, threshold: float = 0.05) -> int:
        """Smallest coefficient whose doubling adds < ``threshold`` gain."""
        factors = sorted(self.runs)
        for factor, nxt in zip(factors, factors[1:]):
            if self.average_speedup(nxt) - self.average_speedup(factor) < threshold:
                return factor
        return factors[-1]


def sweep_scaling_coefficient(
    config: GPUConfig,
    level: str,
    factors: Sequence[int] = (1, 2, 4, 8),
    benchmarks: Sequence[str] = PAPER_SUITE,
    iteration_scale: float = 1.0,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    runner: BatchRunner | None = None,
) -> ScalingCurve:
    """Run ``level`` at several scaling coefficients over ``benchmarks``.

    With ``runner``, the (factor x benchmark) grid executes as one batch
    (parallel and/or cached), merged back by position.
    """
    if 1 not in factors:
        factors = (1, *factors)
    benchmarks = list(benchmarks)
    runs: dict[int, dict[str, RunMetrics]] = {}
    if runner is not None:
        jobs: list[Job] = []
        index: list[tuple[int, str]] = []
        for factor in factors:
            scaled = scale_level_by(config, level, factor)
            for name in benchmarks:
                jobs.append(
                    Job(scaled, name, seed=seed,
                        iteration_scale=iteration_scale, max_cycles=max_cycles)
                )
                index.append((factor, name))
        results = runner.run(jobs)
        for (factor, name), metrics in zip(index, results):
            runs.setdefault(factor, {})[name] = metrics
    else:
        kernels = {b: get_benchmark(b, iteration_scale) for b in benchmarks}
        for factor in factors:
            scaled = scale_level_by(config, level, factor)
            runs[factor] = {
                name: run_kernel(
                    scaled, kernel, seed=seed, max_cycles=max_cycles
                )
                for name, kernel in kernels.items()
            }
    return ScalingCurve(level=level, runs=runs)


def render_scaling_curves(curves: Sequence[ScalingCurve]) -> str:
    factors = sorted(curves[0].runs)
    rows = []
    for curve in curves:
        row = [curve.level]
        for factor in factors:
            row.append(f"{curve.average_speedup(factor):.2f}x")
        row.append(f"{curve.saturation_factor()}x")
        rows.append(row)
    return render_table(
        ["level", *[f"{f}x" for f in factors], "saturates at"],
        rows,
        title="Average speedup vs scaling coefficient",
    )
