"""Top-down profile construction for ``repro profile``.

:func:`profile_kernel` runs one benchmark with the
:class:`~repro.telemetry.AttributionProbe` attached and distils the
result into a flat, JSON-ready profile document: the exact cycle-class
partition, the memory-pipeline stall cycles by cause, and the blame
vector charging each stalled cycle to the deepest congested stage.

:func:`profile_diff` subtracts two profiles of the same benchmark and
explains a speedup the way Section IV narrates it: as stall cycles
*reclaimed* per cause and per blamed stage (where the +59% from L2
scaling comes from, why L1-alone reclaims nothing).  Config labels come
from the Section IV matrix (``baseline``, ``l1``, ``l2``, ``dram``,
``l1+l2``, ``l2+dram``).
"""

from __future__ import annotations

from typing import Any

from repro.core.design_space import scale_levels
from repro.core.explorer import SECTION_IV_CONFIGS
from repro.core.metrics import run_kernel
from repro.errors import UsageError
from repro.sim.config import GPUConfig
from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.workloads.suite import get_benchmark

#: Bumped when the profile document layout changes.
PROFILE_SCHEMA = 1


def config_for_label(config: GPUConfig, label: str) -> GPUConfig:
    """Apply one Section IV scaling label to a base configuration."""
    try:
        levels = SECTION_IV_CONFIGS[label]
    except KeyError:
        raise UsageError(
            f"unknown config label {label!r}; choose from "
            + ", ".join(SECTION_IV_CONFIGS)
        ) from None
    return scale_levels(config, levels)


def profile_kernel(
    config: GPUConfig,
    benchmark: str,
    *,
    config_label: str = "baseline",
    iteration_scale: float = 1.0,
    seed: int = 1,
    window: int | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> dict[str, Any]:
    """Run ``benchmark`` with attribution attached; return the profile.

    ``config`` is profiled as given; ``config_label`` is recorded in the
    document (apply :func:`config_for_label` first to profile a scaled
    point).  The returned dict is self-contained and JSON-serializable.
    """
    metrics = run_kernel(
        config,
        get_benchmark(benchmark, iteration_scale),
        seed=seed,
        max_cycles=max_cycles,
        attribution=True,
        attribution_window=window,
    )
    attribution = metrics.extras["attribution"]
    return {
        "schema": PROFILE_SCHEMA,
        "benchmark": benchmark,
        "config": config_label,
        "scale": iteration_scale,
        "seed": seed,
        "cycles": metrics.cycles,
        "instructions": metrics.instructions,
        "ipc": metrics.ipc,
        "truncated": metrics.truncated,
        "sm_cycles": metrics.sm_cycles,
        "classes": dict(attribution["classes"]),
        "stalls": dict(metrics.mem_stall_cycles_by_cause),
        "blame": dict(attribution["blame"]),
        "conserved": attribution["conserved"],
        "window": attribution["window"],
        "blame_threshold": attribution["blame_threshold"],
        "windows": attribution["windows"],
    }


def profile_diff(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Explain ``b``'s speedup over ``a`` as reclaimed stall cycles.

    Both profiles must come from :func:`profile_kernel` on the *same*
    benchmark/scale/seed, so instruction counts match and every cycle
    difference is attributable.  Positive "reclaimed" numbers mean ``b``
    spends fewer cycles there than ``a``.
    """
    for key in ("benchmark", "scale", "seed"):
        if a.get(key) != b.get(key):
            raise UsageError(
                f"profile diff requires matching {key}: "
                f"{a.get(key)!r} vs {b.get(key)!r}"
            )
    def keys_of(field: str) -> dict[str, None]:
        # Ordered union of the two profiles' keys for this field.
        return dict.fromkeys(list(a.get(field, {})) + list(b.get(field, {})))

    reclaimed = {
        field: {
            key: a.get(field, {}).get(key, 0) - b.get(field, {}).get(key, 0)
            for key in keys_of(field)
        }
        for field in ("classes", "stalls", "blame")
    }
    return {
        "schema": PROFILE_SCHEMA,
        "benchmark": a["benchmark"],
        "scale": a["scale"],
        "seed": a["seed"],
        "a": {
            "config": a["config"],
            "cycles": a["cycles"],
            "ipc": a["ipc"],
        },
        "b": {
            "config": b["config"],
            "cycles": b["cycles"],
            "ipc": b["ipc"],
        },
        "speedup": b["ipc"] / a["ipc"] if a["ipc"] else 0.0,
        "cycles_saved": a["cycles"] - b["cycles"],
        "sm_cycles_saved": a["sm_cycles"] - b["sm_cycles"],
        "classes_reclaimed": reclaimed["classes"],
        "stalls_reclaimed": reclaimed["stalls"],
        "blame_reclaimed": reclaimed["blame"],
    }
