"""Run-level metric extraction.

:func:`run_kernel` builds a GPU, runs a kernel to completion and distils
every statistic the paper's analyses need into a flat, picklable
:class:`RunMetrics` — performance (IPC), latency (average L1 miss round
trip), congestion (full fractions of every Table I queue), cache behaviour
(hit rates, MSHR pressure, reservation failures) and DRAM behaviour (row
locality, bus utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.l1 import AccessResult
from repro.errors import CycleLimitExceeded
from repro.gpu import GPU
from repro.sim.config import GPUConfig, SimConfig
from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.utils.means import arithmetic_mean
from repro.workloads.program import KernelProgram

#: Stable string keys for the memory-pipeline stall causes, in a fixed
#: order so exports/CSV columns never depend on which causes a run hit.
STALL_CAUSE_KEYS: tuple[str, ...] = tuple(
    result.value for result in AccessResult if result.is_stall
)


@dataclass(frozen=True)
class QueueMetrics:
    """Aggregated congestion statistics for one queue family."""

    #: Fraction of usage lifetime the queues were full (Section III metric),
    #: averaged across instances.
    full_fraction: float
    #: Fraction of total run time the queues held at least one entry.
    busy_fraction: float
    #: Pushes refused because the queue was full.
    rejections: int
    pushes: int


@dataclass(frozen=True)
class RunMetrics:
    """Everything measured from one simulation run."""

    benchmark: str
    cycles: int
    instructions: int
    ipc: float
    # --- L1 ---
    l1_hit_rate: float
    l1_avg_miss_latency: float
    #: Tail of the L1 miss round-trip distribution.
    l1_p50_miss_latency: float
    l1_p95_miss_latency: float
    l1_miss_count: int
    l1_mshr_stall_cycles: int
    l1_missq: QueueMetrics
    # --- interconnect ---
    req_xbar_utilization: float
    resp_xbar_utilization: float
    resp_xbar_blocked_cycles: int
    # --- L2 ---
    l2_hit_rate: float
    l2_accessq: QueueMetrics
    l2_missq: QueueMetrics
    l2_respq: QueueMetrics
    l2_mshr_full_fraction: float
    l2_reservation_fails: int
    l2_writebacks: int
    # --- DRAM ---
    dram_schedq: QueueMetrics
    dram_row_hit_rate: float
    dram_bus_utilization: float
    dram_reads: int
    dram_writes: int
    # --- core ---
    mem_pipeline_stall_cycles: int
    no_ready_warp_fraction: float
    # --- cycle accounting (summed over SMs; see telemetry.attribution) ---
    #: Total SM-cycles stepped (= cycles * SM count): the accounting
    #: denominator the four classes below partition exactly.
    sm_cycles: int = 0
    #: SM-cycles that issued at least one instruction.
    issue_cycles: int = 0
    #: SM-cycles with ready warps but nothing issued (LD/ST queue full).
    issue_starved_cycles: int = 0
    #: SM-cycles with no ready warp (all warps blocked on memory).
    no_ready_warp_cycles: int = 0
    #: SM-cycles after an SM quiesced while others still ran.
    drained_cycles: int = 0
    #: Memory-pipeline stall cycles keyed by stable cause string
    #: (``stall_mshr_full`` / ``stall_merge_full`` / ``stall_missq_full``);
    #: always zero-filled with every key so exports are column-stable.
    mem_stall_cycles_by_cause: dict = field(default_factory=dict)
    #: True when the run hit its ``max_cycles`` budget before completing
    #: (or draining).  Truncated metrics are lower bounds and must not be
    #: silently averaged into aggregates — reports mark them.
    truncated: bool = False
    extras: dict = field(default_factory=dict)

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """IPC ratio vs a baseline run of the same kernel."""
        return self.ipc / baseline.ipc if baseline.ipc else 0.0


def _queue_family(queues, cycles: int) -> QueueMetrics:
    queues = list(queues)
    if not queues or cycles == 0:
        return QueueMetrics(0.0, 0.0, 0, 0)
    return QueueMetrics(
        full_fraction=arithmetic_mean(q.full_fraction() for q in queues),
        busy_fraction=arithmetic_mean(q.busy_cycles() / cycles for q in queues),
        rejections=sum(q.rejections for q in queues),
        pushes=sum(q.pushes for q in queues),
    )


def collect_metrics(gpu: GPU, benchmark: str = "") -> RunMetrics:
    """Extract a :class:`RunMetrics` from a finished (finalized) GPU."""
    cycles = gpu.cycles
    sms = gpu.sms
    l1s = [sm.l1 for sm in sms]
    total_l1_lookups = sum(l1.tags.lookups.denominator for l1 in l1s)
    total_l1_hits = sum(l1.tags.lookups.numerator for l1 in l1s)
    miss_lat_total = sum(l1.miss_latency.total for l1 in l1s)
    miss_lat_count = sum(l1.miss_latency.count for l1 in l1s)
    from repro.utils.stats import Histogram

    merged_hist = Histogram("l1_miss_latency")
    for l1 in l1s:
        merged_hist.merge(l1.miss_latency_hist)

    stall_by_cause: dict = {key: 0 for key in STALL_CAUSE_KEYS}
    for sm in sms:
        for cause, stalled in sm.stall_cycles_by_cause.items():
            stall_by_cause[cause.value] += stalled

    magic = gpu.config.magic_memory
    if magic:
        l2_hit_rate = 0.0
        l2_accessq = l2_missq = l2_respq = QueueMetrics(0.0, 0.0, 0, 0)
        l2_mshr_full = 0.0
        l2_resfails = 0
        l2_writebacks = 0
        dram_schedq = QueueMetrics(0.0, 0.0, 0, 0)
        dram_row_hit = 0.0
        dram_bus_util = 0.0
        dram_reads = dram_writes = 0
        req_util = resp_util = 0.0
        resp_blocked = 0
    else:
        l2s = gpu.l2_slices
        drams = gpu.dram_channels
        l2_lookups = sum(l2.tags.lookups.denominator for l2 in l2s)
        l2_hits = sum(l2.tags.lookups.numerator for l2 in l2s)
        l2_hit_rate = l2_hits / l2_lookups if l2_lookups else 0.0
        l2_accessq = _queue_family((l2.access_queue for l2 in l2s), cycles)
        l2_missq = _queue_family((l2.miss_queue for l2 in l2s), cycles)
        l2_respq = _queue_family((l2.response_queue for l2 in l2s), cycles)
        l2_mshr_full = arithmetic_mean(
            l2.mshr.full_fraction() for l2 in l2s
        )
        l2_resfails = sum(l2.tags.reservation_fails for l2 in l2s)
        l2_writebacks = sum(l2.writebacks for l2 in l2s)
        dram_schedq = _queue_family((d.sched_queue for d in drams), cycles)
        total_acc = sum(d.total_accesses for d in drams)
        dram_row_hit = (
            sum(d.row_hit_rate * d.total_accesses for d in drams) / total_acc
            if total_acc
            else 0.0
        )
        dram_bus_util = (
            arithmetic_mean(d.bus_busy_cycles / cycles for d in drams)
            if cycles
            else 0.0
        )
        dram_reads = sum(d.reads for d in drams)
        dram_writes = sum(d.writes for d in drams)
        req_util = gpu.request_xbar.utilization
        resp_util = gpu.response_xbar.utilization
        resp_blocked = gpu.response_xbar.delivery_blocked_cycles

    return RunMetrics(
        benchmark=benchmark or gpu.kernel.name,
        cycles=cycles,
        instructions=gpu.instructions,
        ipc=gpu.ipc,
        l1_hit_rate=total_l1_hits / total_l1_lookups if total_l1_lookups else 0.0,
        l1_avg_miss_latency=miss_lat_total / miss_lat_count if miss_lat_count else 0.0,
        l1_p50_miss_latency=merged_hist.percentile(0.50),
        l1_p95_miss_latency=merged_hist.percentile(0.95),
        l1_miss_count=miss_lat_count,
        l1_mshr_stall_cycles=sum(l1.total_stalls for l1 in l1s),
        l1_missq=_queue_family((l1.miss_queue for l1 in l1s), cycles),
        req_xbar_utilization=req_util,
        resp_xbar_utilization=resp_util,
        resp_xbar_blocked_cycles=resp_blocked,
        l2_hit_rate=l2_hit_rate,
        l2_accessq=l2_accessq,
        l2_missq=l2_missq,
        l2_respq=l2_respq,
        l2_mshr_full_fraction=l2_mshr_full,
        l2_reservation_fails=l2_resfails,
        l2_writebacks=l2_writebacks,
        dram_schedq=dram_schedq,
        dram_row_hit_rate=dram_row_hit,
        dram_bus_utilization=dram_bus_util,
        dram_reads=dram_reads,
        dram_writes=dram_writes,
        mem_pipeline_stall_cycles=sum(
            sm.mem_pipeline_stall_cycles for sm in sms
        ),
        no_ready_warp_fraction=(
            arithmetic_mean(sm.no_ready_warp_cycles / cycles for sm in sms)
            if cycles
            else 0.0
        ),
        sm_cycles=sum(sm.cycles for sm in sms),
        issue_cycles=sum(sm.issue_cycles for sm in sms),
        issue_starved_cycles=sum(sm.issue_starved_cycles for sm in sms),
        no_ready_warp_cycles=sum(sm.no_ready_warp_cycles for sm in sms),
        drained_cycles=sum(sm.drained_cycles for sm in sms),
        mem_stall_cycles_by_cause=stall_by_cause,
    )


def run_kernel(
    config: GPUConfig,
    kernel: KernelProgram,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    sanitize: bool = False,
    sanitize_interval: int = 64,
    timeline: bool = False,
    timeline_window: int | None = None,
    timeline_max_windows: int | None = None,
    trace: bool = False,
    trace_stride: int | None = None,
    trace_limit: int | None = None,
    attribution: bool = False,
    attribution_window: int | None = None,
    fast_forward: bool = True,
    engine_mode: str | None = None,
) -> RunMetrics:
    """Build, run and measure one kernel on one configuration.

    ``fast_forward`` controls the engine's event-horizon jump over
    provably idle cycles (byte-identical metrics either way; it is
    suspended automatically while sanitizer/telemetry observers are
    attached).  Disabling it forces the naive cycle loop — the reference
    the determinism tests compare against.

    ``engine_mode`` selects ``"ticked"`` or ``"event"`` execution (see
    :mod:`repro.sim.engine`); None defers to the ``REPRO_ENGINE_MODE``
    environment variable, then the ticked default.  Results are
    byte-identical across modes, so the mode is not part of any cache
    key.

    With ``sanitize``, a :class:`repro.analysis.Sanitizer` checks the
    model's invariants every ``sanitize_interval`` cycles and raises
    :class:`~repro.errors.SanitizerError` on any violation; its counters
    land in ``RunMetrics.extras['sanitizer']``.

    With ``timeline``, a :class:`repro.telemetry.TimeSeriesProbe` samples
    cycle-windowed series (IPC, queue congestion, MSHR occupancy, DRAM
    bus utilization) into ``RunMetrics.extras['timeline']``; with
    ``trace``, a :class:`repro.telemetry.RequestTracer` stride-samples
    requests into a Chrome trace (``extras['trace']``) plus a per-hop
    latency digest (``extras['trace_hops']``); with ``attribution``, an
    :class:`repro.telemetry.AttributionProbe` computes windowed cycle
    accounting and bottleneck blame chains into
    ``extras['attribution']`` (the data behind ``repro profile``).  All
    instrumentation is opt-in: the default run is bit-identical to an
    uninstrumented one.

    A run that exhausts ``max_cycles`` is *not* silently averaged away:
    its statistics intervals are closed at the cut-off, the metrics carry
    ``truncated=True``, and reports/runner mark the point.  (Before this
    flag existed, the :class:`~repro.errors.CycleLimitExceeded` escaped
    and killed whole sweeps; now a single mis-calibrated point degrades
    to a labelled lower bound instead.)
    """
    sim_config = (
        None if engine_mode is None else SimConfig(engine_mode=engine_mode)
    )
    gpu = GPU(config, kernel, seed=seed, sim_config=sim_config)
    gpu.sim.fast_forward_enabled = fast_forward
    sanitizer = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        sanitizer = Sanitizer.attach(gpu, interval=sanitize_interval)
    probe = None
    tracer = None
    attributor = None
    if timeline or trace or attribution:
        from repro import telemetry

        if attribution:
            attributor = telemetry.AttributionProbe.attach(
                gpu,
                window=(
                    telemetry.DEFAULT_WINDOW
                    if attribution_window is None
                    else attribution_window
                ),
            )
        if timeline:
            probe = telemetry.TimeSeriesProbe.attach(
                gpu,
                window=(
                    telemetry.DEFAULT_WINDOW
                    if timeline_window is None
                    else timeline_window
                ),
                max_windows=(
                    telemetry.DEFAULT_MAX_WINDOWS
                    if timeline_max_windows is None
                    else timeline_max_windows
                ),
            )
        if trace:
            tracer = telemetry.RequestTracer.attach(
                gpu,
                stride=(
                    telemetry.DEFAULT_TRACE_STRIDE
                    if trace_stride is None
                    else trace_stride
                ),
                limit=(
                    telemetry.DEFAULT_TRACE_LIMIT
                    if trace_limit is None
                    else trace_limit
                ),
            )
    truncated = False
    try:
        gpu.run(max_cycles=max_cycles)
    except CycleLimitExceeded:
        truncated = True
        gpu.sim.finalize()  # close statistics intervals at the cut-off
    metrics = collect_metrics(gpu)
    if truncated:
        metrics = replace(metrics, truncated=True)
    if sanitizer is not None:
        metrics.extras["sanitizer"] = sanitizer.stats()
    if probe is not None:
        metrics.extras["timeline"] = probe.summary()
    if tracer is not None:
        metrics.extras["trace"] = tracer.to_chrome_trace()
        metrics.extras["trace_hops"] = tracer.hop_summary()
    if attributor is not None:
        metrics.extras["attribution"] = attributor.summary()
    return metrics
