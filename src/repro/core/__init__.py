"""The paper's characterization methodology.

Four instruments, one per artifact of the paper:

* :mod:`repro.core.latency_profile` — Figure 1's latency-tolerance sweep;
* :mod:`repro.core.congestion` — Section III's queue-occupancy measurement;
* :mod:`repro.core.design_space` — Table I's parameter groups and scaling;
* :mod:`repro.core.explorer` / :mod:`repro.core.synergy` — Section IV's
  isolated and synergistic bandwidth-scaling experiments.
"""

from repro.core.metrics import RunMetrics, run_kernel
from repro.core.latency_profile import LatencyProfile, profile_latency_tolerance
from repro.core.congestion import CongestionReport, measure_congestion
from repro.core.design_space import (
    TABLE_I,
    DesignParameter,
    scale_level,
    scale_levels,
    scaled_config,
)
from repro.core.explorer import ExplorationResult, explore_design_space
from repro.core.synergy import SynergyAnalysis, analyze_synergy
from repro.core.latency_breakdown import LatencyBreakdown, measure_latency_breakdown
from repro.core.bottleneck import Bottleneck, Diagnosis, classify, diagnose_suite
from repro.core.cost_model import cost_effectiveness, pareto_frontier
from repro.core.scaling_curve import ScalingCurve, sweep_scaling_coefficient
from repro.core.replication import Replication, ReplicationReport, replicate
from repro.core.validation import Check, ValidationReport, validate_reproduction

__all__ = [
    "RunMetrics",
    "run_kernel",
    "LatencyProfile",
    "profile_latency_tolerance",
    "CongestionReport",
    "measure_congestion",
    "TABLE_I",
    "DesignParameter",
    "scale_level",
    "scale_levels",
    "scaled_config",
    "ExplorationResult",
    "explore_design_space",
    "SynergyAnalysis",
    "analyze_synergy",
    "LatencyBreakdown",
    "measure_latency_breakdown",
    "Bottleneck",
    "Diagnosis",
    "classify",
    "diagnose_suite",
    "cost_effectiveness",
    "pareto_frontier",
    "ScalingCurve",
    "sweep_scaling_coefficient",
    "Replication",
    "ReplicationReport",
    "replicate",
    "Check",
    "ValidationReport",
    "validate_reproduction",
]
