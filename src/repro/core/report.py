"""Report rendering: turn characterization results into paper-style text.

Everything the benchmarks print and EXPERIMENTS.md quotes is produced
here, so the numbers in documentation and benchmark output always come
from the same formatting code.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.congestion import CongestionReport
from repro.core.explorer import ExplorationResult
from repro.core.latency_profile import (
    IDEAL_DRAM_LATENCY,
    IDEAL_L2_LATENCY,
    LatencyProfile,
)
from repro.core.synergy import SynergyAnalysis
from repro.utils.ascii_plot import line_plot, sparkline
from repro.utils.tables import render_table

#: Paper values for side-by-side comparison in reports.
PAPER_AVG_GAINS: Mapping[str, float] = {
    "l1": 0.04,
    "l2": 0.59,
    "dram": 0.11,
    "l1+l2": 0.69,
    "l2+dram": 0.76,
}
PAPER_L2_ACCESSQ_FULL = 0.46
PAPER_DRAM_SCHEDQ_FULL = 0.39


def render_figure1(profiles: Sequence[LatencyProfile], width: int = 78) -> str:
    """ASCII rendition of Figure 1 plus its per-benchmark observations."""
    series = {p.benchmark: p.series() for p in profiles}
    plot = line_plot(
        series,
        width=width,
        height=22,
        title="Fig. 1: Performance variation with increasing L1 miss latency",
        x_label="fixed L1 miss latency (cycles)",
        y_label="IPC (normalized to baseline)",
    )
    rows = []
    for p in profiles:
        intercept = p.intercept_latency()
        rows.append(
            [
                p.benchmark,
                f"{p.peak_normalized_ipc:.2f}x",
                p.plateau_latency(),
                f"{intercept:.0f}" if intercept is not None else ">max",
                f"{p.baseline_avg_miss_latency:.0f}",
            ]
        )
    table = render_table(
        [
            "benchmark",
            "peak norm. IPC",
            "plateau lat",
            "intercept lat",
            "measured baseline miss lat",
        ],
        rows,
        title=(
            f"Ideal latencies (Sec. II): L2 ~{IDEAL_L2_LATENCY} cy, "
            f"DRAM ~{IDEAL_DRAM_LATENCY} cy"
        ),
    )
    text = f"{plot}\n\n{table}"
    truncated = sorted(p.benchmark for p in profiles if p.truncated)
    if truncated:
        text += (
            f"\nwarning: {', '.join(truncated)} hit the cycle limit on at "
            "least one point; those IPCs are truncated lower bounds"
        )
    return text


#: Sparkline width cap for the timeline report.
_TIMELINE_WIDTH = 60


def render_timeline(timeline: Mapping) -> str:
    """ASCII sparkline view of a telemetry timeline.

    ``timeline`` is ``RunMetrics.extras['timeline']`` as produced by
    :meth:`repro.telemetry.TimeSeriesProbe.summary`: one row per series,
    one character per window (long runs are bucket-averaged down to the
    display width), with the series' min/max printed alongside.
    """
    windows = timeline.get("windows", [])
    window_len = timeline.get("window", 0)
    if not windows:
        return "timeline: no windows captured (empty run)"
    dropped = timeline.get("dropped", 0)
    span = f"cycles {windows[0]['start']}..{windows[-1]['end']}"
    header = (
        f"Cycle-windowed telemetry: {len(windows)} windows x "
        f"{window_len} cycles ({span})"
    )
    if dropped:
        header += f"; {dropped} oldest windows dropped"

    rows: list[tuple[str, list[float], str]] = [
        ("IPC", [w["ipc"] for w in windows], "{:.2f}"),
    ]
    for family in timeline.get("queue_families", []):
        rows.append((
            f"{family} full",
            [w["queue_full_fraction"].get(family, 0.0) for w in windows],
            "{:.0%}",
        ))
    for family in windows[0].get("mshr_occupancy", {}):
        rows.append((
            f"{family} occupancy",
            [w["mshr_occupancy"].get(family, 0.0) for w in windows],
            "{:.0%}",
        ))
    rows.append((
        "dram bus util",
        [w["dram_bus_utilization"] for w in windows],
        "{:.0%}",
    ))

    label_width = max(len(label) for label, _, _ in rows)
    lines = [header]
    for label, values, fmt in rows:
        lo, hi = min(values), max(values)
        lines.append(
            f"{label:<{label_width}} |{sparkline(values, _TIMELINE_WIDTH)}| "
            f"[{fmt.format(lo)} .. {fmt.format(hi)}]"
        )
    lines.append(
        "(each column is one window; density ramp ' .:-=+*#%@' scales "
        "min..max per row)"
    )
    return "\n".join(lines)


def render_congestion(report: CongestionReport) -> str:
    """Section III comparison against the paper's 46% / 39%."""
    lines = [
        report.to_table(),
        "",
        "Section III headline comparison:",
        (
            f"  L2 access queues full:  measured "
            f"{report.avg_l2_access_queue_full:.0%} of usage lifetime "
            f"(paper: {PAPER_L2_ACCESSQ_FULL:.0%})"
        ),
        (
            f"  DRAM sched queues full: measured "
            f"{report.avg_dram_queue_full:.0%} of usage lifetime "
            f"(paper: {PAPER_DRAM_SCHEDQ_FULL:.0%})"
        ),
    ]
    return "\n".join(lines)


def render_section_iv(
    result: ExplorationResult, synergy: SynergyAnalysis | None = None
) -> str:
    """Section IV speedup summary with paper-value comparison."""
    parts = [result.to_table(), ""]
    rows = []
    for label, paper in PAPER_AVG_GAINS.items():
        if label not in result.runs:
            continue
        measured = result.average_gain(label)
        rows.append([label, f"{measured:+.0%}", f"{paper:+.0%}"])
    parts.append(
        render_table(
            ["configuration", "measured avg gain", "paper avg gain"],
            rows,
            title="Average speedup over the suite vs paper",
        )
    )
    if synergy is not None:
        parts.append("")
        parts.append(synergy.to_table())
    truncated = result.truncated_points()
    if truncated:
        shown = ", ".join(f"{label}/{bench}" for label, bench in truncated[:8])
        if len(truncated) > 8:
            shown += f", ... ({len(truncated) - 8} more)"
        parts.append(
            f"warning: {len(truncated)} run(s) hit the cycle limit "
            f"({shown}); their speedups are computed from truncated metrics"
        )
    return "\n".join(parts)
