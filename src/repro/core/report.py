"""Report rendering: turn characterization results into paper-style text.

Everything the benchmarks print and EXPERIMENTS.md quotes is produced
here, so the numbers in documentation and benchmark output always come
from the same formatting code.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.congestion import CongestionReport
from repro.core.explorer import ExplorationResult
from repro.core.latency_profile import (
    IDEAL_DRAM_LATENCY,
    IDEAL_L2_LATENCY,
    LatencyProfile,
)
from repro.core.synergy import SynergyAnalysis
from repro.utils.ascii_plot import line_plot, sparkline
from repro.utils.tables import render_table

#: Paper values for side-by-side comparison in reports.
PAPER_AVG_GAINS: Mapping[str, float] = {
    "l1": 0.04,
    "l2": 0.59,
    "dram": 0.11,
    "l1+l2": 0.69,
    "l2+dram": 0.76,
}
PAPER_L2_ACCESSQ_FULL = 0.46
PAPER_DRAM_SCHEDQ_FULL = 0.39


def render_figure1(profiles: Sequence[LatencyProfile], width: int = 78) -> str:
    """ASCII rendition of Figure 1 plus its per-benchmark observations."""
    series = {p.benchmark: p.series() for p in profiles}
    plot = line_plot(
        series,
        width=width,
        height=22,
        title="Fig. 1: Performance variation with increasing L1 miss latency",
        x_label="fixed L1 miss latency (cycles)",
        y_label="IPC (normalized to baseline)",
    )
    rows = []
    for p in profiles:
        intercept = p.intercept_latency()
        rows.append(
            [
                p.benchmark,
                f"{p.peak_normalized_ipc:.2f}x",
                p.plateau_latency(),
                f"{intercept:.0f}" if intercept is not None else ">max",
                f"{p.baseline_avg_miss_latency:.0f}",
            ]
        )
    table = render_table(
        [
            "benchmark",
            "peak norm. IPC",
            "plateau lat",
            "intercept lat",
            "measured baseline miss lat",
        ],
        rows,
        title=(
            f"Ideal latencies (Sec. II): L2 ~{IDEAL_L2_LATENCY} cy, "
            f"DRAM ~{IDEAL_DRAM_LATENCY} cy"
        ),
    )
    text = f"{plot}\n\n{table}"
    truncated = sorted(p.benchmark for p in profiles if p.truncated)
    if truncated:
        text += (
            f"\nwarning: {', '.join(truncated)} hit the cycle limit on at "
            "least one point; those IPCs are truncated lower bounds"
        )
    return text


#: Sparkline width cap for the timeline report.
_TIMELINE_WIDTH = 60


def render_timeline(timeline: Mapping) -> str:
    """ASCII sparkline view of a telemetry timeline.

    ``timeline`` is ``RunMetrics.extras['timeline']`` as produced by
    :meth:`repro.telemetry.TimeSeriesProbe.summary`: one row per series,
    one character per window (long runs are bucket-averaged down to the
    display width), with the series' min/max printed alongside.
    """
    windows = timeline.get("windows", [])
    window_len = timeline.get("window", 0)
    if not windows:
        return "timeline: no windows captured (empty run)"
    dropped = timeline.get("dropped", 0)
    span = f"cycles {windows[0]['start']}..{windows[-1]['end']}"
    header = (
        f"Cycle-windowed telemetry: {len(windows)} windows x "
        f"{window_len} cycles ({span})"
    )
    if dropped:
        header += f"; {dropped} oldest windows dropped"

    rows: list[tuple[str, list[float], str]] = [
        ("IPC", [w["ipc"] for w in windows], "{:.2f}"),
    ]
    for family in timeline.get("queue_families", []):
        rows.append((
            f"{family} full",
            [w["queue_full_fraction"].get(family, 0.0) for w in windows],
            "{:.0%}",
        ))
    for family in windows[0].get("mshr_occupancy", {}):
        rows.append((
            f"{family} occupancy",
            [w["mshr_occupancy"].get(family, 0.0) for w in windows],
            "{:.0%}",
        ))
    rows.append((
        "dram bus util",
        [w["dram_bus_utilization"] for w in windows],
        "{:.0%}",
    ))

    label_width = max(len(label) for label, _, _ in rows)
    lines = [header]
    for label, values, fmt in rows:
        lo, hi = min(values), max(values)
        lines.append(
            f"{label:<{label_width}} |{sparkline(values, _TIMELINE_WIDTH)}| "
            f"[{fmt.format(lo)} .. {fmt.format(hi)}]"
        )
    lines.append(
        "(each column is one window; density ramp ' .:-=+*#%@' scales "
        "min..max per row)"
    )
    return "\n".join(lines)


#: Human-readable glosses for the cycle-accounting classes.
_CLASS_GLOSS: Mapping[str, str] = {
    "issue": "issued >= 1 instruction",
    "issue_starved": "ready warps, LD/ST queue full",
    "no_ready_warp": "all warps blocked on memory",
    "drained": "SM finished, GPU still running",
}

#: Human-readable glosses for the memory-pipeline stall causes.
_STALL_GLOSS: Mapping[str, str] = {
    "stall_mshr_full": "no free MSHR for a new miss",
    "stall_merge_full": "MSHR merge list full",
    "stall_missq_full": "L1 miss queue full (downstream back-pressure)",
}

#: Human-readable glosses for the blame stages.
_BLAME_GLOSS: Mapping[str, str] = {
    "dram": "DRAM sched queue / L2 miss queue full",
    "l2": "L2 access queue full",
    "icnt": "request crossbar delivery blocked",
    "l1": "L1 miss bandwidth (nothing below congested)",
    "mem_latency": "raw fill latency, no queueing",
}


def _share_rows(
    counts: Mapping[str, int],
    total: int,
    windows: Sequence[Mapping],
    window_field: str,
    gloss: Mapping[str, str],
) -> list[list[str]]:
    """Table rows: count, share of ``total`` and a per-window sparkline."""
    rows = []
    for key, count in counts.items():
        share = count / total if total else 0.0
        spark = ""
        if len(windows) > 1:
            series = []
            for w in windows:
                values = w.get(window_field, {})
                denominator = sum(values.values())
                series.append(
                    values.get(key, 0) / denominator if denominator else 0.0
                )
            spark = sparkline(series, _TIMELINE_WIDTH, lo=0.0, hi=1.0)
        rows.append(
            [key, f"{count}", f"{share:.1%}", spark, gloss.get(key, "")]
        )
    return rows


def render_profile(profile: Mapping) -> str:
    """Render a ``profile_kernel`` document as the accounting tree."""
    windows = profile.get("windows", [])
    sm_cycles = profile.get("sm_cycles", 0)
    lines = [
        (
            f"Top-down cycle accounting: {profile['benchmark']} "
            f"({profile['config']}, scale {profile['scale']}, "
            f"seed {profile['seed']})"
        ),
        (
            f"  {profile['cycles']} cycles, {profile['instructions']} "
            f"instructions, IPC {profile['ipc']:.3f}"
            + (" [truncated]" if profile.get("truncated") else "")
        ),
        "",
    ]

    classes = profile.get("classes", {})
    rows = _share_rows(classes, sm_cycles, windows, "classes", _CLASS_GLOSS)
    lines.append(render_table(
        ["class", "SM-cycles", "share", "over time", "meaning"],
        rows,
        title=f"Cycle classes (partition {sm_cycles} SM-cycles exactly; "
              f"conserved={str(profile.get('conserved', False)).lower()})",
        align="lrrll"))

    stalls = profile.get("stalls", {})
    stall_total = sum(stalls.values())
    lines.append("")
    if stall_total:
        blame = profile.get("blame", {})
        stall_rows = [
            row[:3] + [_STALL_GLOSS.get(row[0], "")]
            for row in _share_rows(stalls, stall_total, [], "stalls", {})
        ]
        lines.append(render_table(
            ["cause", "stall cycles", "share", "meaning"],
            stall_rows,
            title=f"Memory-pipeline stalls: {stall_total} SM-cycles "
                  "(back-pressure on the LD/ST pipe; overlaps the classes "
                  "above)",
            align="lrrl"))
        lines.append("")
        lines.append(render_table(
            ["blamed stage", "stall cycles", "share", "over time",
             "evidence"],
            _share_rows(blame, stall_total, windows, "blame", _BLAME_GLOSS),
            title="Blame chains (deepest congested stage per window, "
                  f"threshold "
                  f"{100 * profile.get('blame_threshold', 0.25):.0f}% full)",
            align="lrrll"))
        congestion = sum(
            blame.get(stage, 0) for stage in ("dram", "l2", "icnt")
        )
        lines.append(
            f"\n{congestion / stall_total:.0%} of stall cycles blamed on "
            "downstream congestion (paper Sec. III: L2 access queues full "
            f"{PAPER_L2_ACCESSQ_FULL:.0%}, DRAM sched queues full "
            f"{PAPER_DRAM_SCHEDQ_FULL:.0%} of usage lifetime)"
        )
    else:
        lines.append("Memory-pipeline stalls: none (compute-bound)")
    return "\n".join(lines)


def render_profile_diff(diff: Mapping) -> str:
    """Render a ``profile_diff`` document: the speedup, explained."""
    a, b = diff["a"], diff["b"]
    lines = [
        (
            f"Profile diff: {diff['benchmark']} "
            f"(scale {diff['scale']}, seed {diff['seed']}) — "
            f"{a['config']} -> {b['config']}"
        ),
        (
            f"  cycles {a['cycles']} -> {b['cycles']} "
            f"({diff['cycles_saved']:+d} saved), "
            f"IPC {a['ipc']:.3f} -> {b['ipc']:.3f} "
            f"(speedup {diff['speedup']:.2f}x)"
        ),
        "",
    ]
    saved = diff["sm_cycles_saved"]
    sections = (
        ("classes_reclaimed", "Cycle classes reclaimed "
         f"(sum to the {saved} saved SM-cycles)", _CLASS_GLOSS),
        ("stalls_reclaimed", "Stall cycles reclaimed by cause", _STALL_GLOSS),
        ("blame_reclaimed", "Stall cycles reclaimed by blamed stage",
         _BLAME_GLOSS),
    )
    for field, title, gloss in sections:
        rows = [
            [key, f"{value:+d}", gloss.get(key, "")]
            for key, value in diff[field].items()
        ]
        lines.append(render_table(
            [field.split("_")[0], "SM-cycles reclaimed", "meaning"],
            rows, title=title, align="lrl"))
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def render_congestion(report: CongestionReport) -> str:
    """Section III comparison against the paper's 46% / 39%."""
    lines = [
        report.to_table(),
        "",
        "Section III headline comparison:",
        (
            f"  L2 access queues full:  measured "
            f"{report.avg_l2_access_queue_full:.0%} of usage lifetime "
            f"(paper: {PAPER_L2_ACCESSQ_FULL:.0%})"
        ),
        (
            f"  DRAM sched queues full: measured "
            f"{report.avg_dram_queue_full:.0%} of usage lifetime "
            f"(paper: {PAPER_DRAM_SCHEDQ_FULL:.0%})"
        ),
    ]
    return "\n".join(lines)


def render_section_iv(
    result: ExplorationResult, synergy: SynergyAnalysis | None = None
) -> str:
    """Section IV speedup summary with paper-value comparison."""
    parts = [result.to_table(), ""]
    rows = []
    for label, paper in PAPER_AVG_GAINS.items():
        if label not in result.runs:
            continue
        measured = result.average_gain(label)
        rows.append([label, f"{measured:+.0%}", f"{paper:+.0%}"])
    parts.append(
        render_table(
            ["configuration", "measured avg gain", "paper avg gain"],
            rows,
            title="Average speedup over the suite vs paper",
        )
    )
    if synergy is not None:
        parts.append("")
        parts.append(synergy.to_table())
    truncated = result.truncated_points()
    if truncated:
        shown = ", ".join(f"{label}/{bench}" for label, bench in truncated[:8])
        if len(truncated) > 8:
            shown += f", ... ({len(truncated) - 8} more)"
        parts.append(
            f"warning: {len(truncated)} run(s) hit the cycle limit "
            f"({shown}); their speedups are computed from truncated metrics"
        )
    return "\n".join(parts)
