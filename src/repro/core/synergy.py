"""Synergistic-vs-isolated scaling analysis.

The paper's closing argument: the speedup from scaling two adjacent levels
together exceeds the *sum* of the individual speedups ("average speedup of
69% and 75% on increasing the combined bandwidth of L1-L2 and L2-DRAM
respectively, which is greater than the respective sum of the individual
gains"), because relieving one level in isolation simply moves the
congestion elsewhere.

:func:`analyze_synergy` computes, per benchmark and on average, the gain
of each combination against the sum of its parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explorer import ExplorationResult
from repro.errors import ReproError
from repro.utils.means import arithmetic_mean
from repro.utils.tables import render_table


@dataclass(frozen=True)
class SynergyPair:
    """One combination measured against the sum of its parts."""

    combined_label: str
    part_labels: tuple[str, ...]
    #: Average gain of the combination (e.g. 0.69 for +69%).
    combined_gain: float
    #: Sum of the parts' average gains.
    sum_of_parts: float

    @property
    def synergy(self) -> float:
        """Extra gain beyond additive (> 0 means super-additive)."""
        return self.combined_gain - self.sum_of_parts

    @property
    def is_super_additive(self) -> bool:
        return self.synergy > 0.0


@dataclass(frozen=True)
class SynergyAnalysis:
    """Synergy across the Section IV combinations."""

    pairs: tuple[SynergyPair, ...]

    @property
    def all_super_additive(self) -> bool:
        return all(p.is_super_additive for p in self.pairs)

    @property
    def mean_synergy(self) -> float:
        return arithmetic_mean(p.synergy for p in self.pairs)

    def to_table(self) -> str:
        rows = [
            [
                p.combined_label,
                " + ".join(p.part_labels),
                f"{p.combined_gain:+.0%}",
                f"{p.sum_of_parts:+.0%}",
                f"{p.synergy:+.1%}",
            ]
            for p in self.pairs
        ]
        return render_table(
            ["combined", "parts", "combined gain", "sum of parts", "synergy"],
            rows,
            title="Synergistic vs isolated bandwidth scaling",
        )


#: The paper's two combinations and their constituent levels.
DEFAULT_PAIRS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("l1+l2", ("l1", "l2")),
    ("l2+dram", ("l2", "dram")),
)


def analyze_synergy(
    result: ExplorationResult,
    pairs: tuple[tuple[str, tuple[str, ...]], ...] = DEFAULT_PAIRS,
) -> SynergyAnalysis:
    """Compare each combined configuration with the sum of its parts."""
    out = []
    for combined_label, part_labels in pairs:
        missing = [
            label
            for label in (combined_label, *part_labels)
            if label not in result.runs
        ]
        if missing:
            raise ReproError(
                f"exploration result lacks configurations {missing}; run "
                "explore_design_space with the Section IV matrix first"
            )
        out.append(
            SynergyPair(
                combined_label=combined_label,
                part_labels=part_labels,
                combined_gain=result.average_gain(combined_label),
                sum_of_parts=sum(
                    result.average_gain(label) for label in part_labels
                ),
            )
        )
    return SynergyAnalysis(pairs=tuple(out))
