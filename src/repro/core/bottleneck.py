"""Automated bottleneck classification.

Formalizes the reading of a run's congestion signature into one of the
levels the paper reasons about.  The classifier looks at the same
indicators the paper uses — queue full-times, back-pressure counters and
the latency-tolerance margin — and names the *dominant* constraint:

``compute``
    The memory system keeps up: high IPC fraction, idle queues.
``latency``
    Queues are calm but warps still spend most cycles waiting — exposed
    round-trip latency with too little parallelism to cover it (nw-like).
``l1_l2_bandwidth``
    L1 miss queues / L2 access queues / L2 response queues run full — the
    cache-hierarchy bandwidth wall the paper highlights.
``dram_bandwidth``
    The DRAM scheduler queues run full or the data bus saturates.

Classification thresholds are deliberately coarse: the goal is the
paper-style qualitative statement ("this workload is L2-bound"), not a
regression model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.metrics import RunMetrics, run_kernel
from repro.sim.config import GPUConfig
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE, get_benchmark


class Bottleneck(enum.Enum):
    COMPUTE = "compute"
    LATENCY = "latency"
    L1_L2_BANDWIDTH = "l1_l2_bandwidth"
    DRAM_BANDWIDTH = "dram_bandwidth"


@dataclass(frozen=True)
class Diagnosis:
    """Classification plus the evidence it rests on."""

    benchmark: str
    bottleneck: Bottleneck
    #: indicator name -> value backing the verdict.
    evidence: Mapping[str, float]

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v:.2f}" for k, v in self.evidence.items())
        return f"{self.benchmark}: {self.bottleneck.value} ({parts})"


def classify(metrics: RunMetrics, peak_ipc: float) -> Diagnosis:
    """Classify one run given the architecture's peak issue rate."""
    ipc_fraction = metrics.ipc / peak_ipc if peak_ipc else 0.0
    dram_pressure = max(
        metrics.dram_schedq.full_fraction, metrics.dram_bus_utilization)
    cache_pressure = max(
        metrics.l2_accessq.full_fraction,
        metrics.l2_respq.full_fraction,
        metrics.l1_missq.full_fraction,
    )
    evidence = {
        "ipc_fraction": ipc_fraction,
        "cache_pressure": cache_pressure,
        "dram_pressure": dram_pressure,
        "avg_miss_latency": metrics.l1_avg_miss_latency,
        "no_ready_warp_fraction": metrics.no_ready_warp_fraction,
    }
    if ipc_fraction > 0.7:
        verdict = Bottleneck.COMPUTE
    elif dram_pressure >= 0.6 and dram_pressure >= cache_pressure:
        verdict = Bottleneck.DRAM_BANDWIDTH
    elif cache_pressure >= 0.4:
        verdict = Bottleneck.L1_L2_BANDWIDTH
    else:
        verdict = Bottleneck.LATENCY
    return Diagnosis(
        benchmark=metrics.benchmark, bottleneck=verdict, evidence=evidence)


def peak_issue_rate(config: GPUConfig) -> float:
    """Architectural IPC ceiling: total issue slots per cycle."""
    return config.core.n_sms * config.core.issue_width


def diagnose_suite(
    config: GPUConfig,
    benchmarks: Sequence[str] = PAPER_SUITE,
    iteration_scale: float = 1.0,
    seed: int = 1,
) -> list[Diagnosis]:
    """Run and classify a set of suite benchmarks."""
    peak = peak_issue_rate(config)
    out = []
    for name in benchmarks:
        metrics = run_kernel(
            config, get_benchmark(name, iteration_scale), seed=seed)
        out.append(classify(metrics, peak))
    return out


def render_diagnoses(diagnoses: Sequence[Diagnosis]) -> str:
    rows = [
        [
            d.benchmark,
            d.bottleneck.value,
            f"{d.evidence['ipc_fraction']:.0%}",
            f"{d.evidence['cache_pressure']:.0%}",
            f"{d.evidence['dram_pressure']:.0%}",
            f"{d.evidence['avg_miss_latency']:.0f}",
        ]
        for d in diagnoses
    ]
    return render_table(
        ["benchmark", "bottleneck", "IPC/peak", "cache pressure",
         "DRAM pressure", "miss latency"],
        rows,
        title="Bottleneck classification",
    )
