"""Cost-effectiveness analysis of the design space (the paper's future work).

The paper closes: "In future, we plan to assess the complexity and cost of
the various design configurations in order to evaluate most cost-effective
ways to mitigate the bandwidth bottleneck."  This module implements that
assessment over the same Table I design space.

Cost model
----------
Each Table I parameter gets a *relative area/complexity cost* for its ~4x
scaling, in arbitrary units normalized so the full Table I scaling costs
1.0.  The weights follow standard VLSI intuition rather than a specific
technology: storage structures (queues, MSHRs) cost in proportion to the
entries x width added; wiring-dominated structures (buses, ports, flits,
crossbar datapath) cost super-linearly in width; DRAM banks are nearly
free on-die (the dies already contain the arrays) but cost in the
controller/IO.  The weights are data, not code — pass a custom
``Mapping`` to study a different technology assumption.

Analyses
--------
* :func:`configuration_cost` — cost of a set of scaled levels;
* :func:`cost_effectiveness` — gain per unit cost for each Section IV
  configuration, from an :class:`ExplorationResult`;
* :func:`pareto_frontier` — the (cost, gain) points not dominated by any
  other configuration.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.design_space import TABLE_I, parameters_for_level
from repro.core.explorer import ExplorationResult
from repro.errors import ConfigError
from repro.utils.tables import render_table

#: Relative cost of each Table I row's ~4x scaling (arbitrary units).
DEFAULT_COSTS: Mapping[str, float] = {
    # (a) DRAM
    "dram_sched_queue": 0.02,   # CAM-ish queue, modest width
    "dram_banks": 0.05,         # controller state machines + IO scheduling
    "dram_bus_width": 0.22,     # pins/PHY: the expensive off-chip resource
    # (b) L2
    "l2_miss_queue": 0.02,
    "l2_response_queue": 0.02,
    "l2_mshr": 0.06,            # wide CAM entries x4
    "l2_access_queue": 0.02,
    "l2_data_port": 0.12,       # SRAM port widening
    "flit_size": 0.18,          # crossbar datapath width x4
    "l2_banks": 0.12,           # bank replication incl. tag logic
    # (c) L1 (replicated per SM -> weights already account for it)
    "l1_miss_queue": 0.03,
    "l1_mshr": 0.08,
    "mem_pipeline_width": 0.06,
}


def _validate_costs(costs: Mapping[str, float]) -> None:
    known = {p.key for p in TABLE_I}
    missing = known - set(costs)
    if missing:
        raise ConfigError(f"cost model missing parameters: {sorted(missing)}")
    bad = [k for k, v in costs.items() if v < 0]
    if bad:
        raise ConfigError(f"negative costs for: {bad}")


def level_cost(
    level: str, costs: Mapping[str, float] = DEFAULT_COSTS
) -> float:
    """Total cost of scaling one Table I level."""
    _validate_costs(costs)
    return sum(costs[p.key] for p in parameters_for_level(level))


def configuration_cost(
    levels: Sequence[str], costs: Mapping[str, float] = DEFAULT_COSTS
) -> float:
    """Cost of scaling several levels together (costs are additive)."""
    return sum(level_cost(level, costs) for level in levels)


@dataclass(frozen=True)
class CostEffectiveness:
    """One configuration's gain, cost and efficiency."""

    label: str
    levels: tuple[str, ...]
    gain: float
    cost: float

    @property
    def efficiency(self) -> float:
        """Average gain per unit cost (inf for free configurations)."""
        if self.cost == 0.0:
            return float("inf") if self.gain > 0 else 0.0
        return self.gain / self.cost


def cost_effectiveness(
    result: ExplorationResult,
    configs: Mapping[str, tuple[str, ...]],
    costs: Mapping[str, float] = DEFAULT_COSTS,
) -> list[CostEffectiveness]:
    """Gain-per-cost for each non-baseline configuration in ``result``."""
    out = []
    for label, levels in configs.items():
        if label == "baseline" or label not in result.runs:
            continue
        out.append(
            CostEffectiveness(
                label=label,
                levels=tuple(levels),
                gain=result.average_gain(label),
                cost=configuration_cost(levels, costs),
            )
        )
    return sorted(out, key=lambda ce: ce.efficiency, reverse=True)


def pareto_frontier(
    points: Sequence[CostEffectiveness],
) -> list[CostEffectiveness]:
    """Configurations not dominated in (lower cost, higher gain)."""
    frontier = []
    for p in points:
        dominated = any(
            (q.cost <= p.cost and q.gain > p.gain)
            or (q.cost < p.cost and q.gain >= p.gain)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda ce: ce.cost)


def render_cost_effectiveness(
    points: Sequence[CostEffectiveness],
    frontier: Sequence[CostEffectiveness] | None = None,
) -> str:
    on_frontier = {p.label for p in frontier} if frontier else set()
    rows = [
        [
            p.label,
            "+".join(p.levels),
            f"{p.gain:+.0%}",
            f"{p.cost:.2f}",
            f"{p.efficiency:.2f}",
            "yes" if p.label in on_frontier else "",
        ]
        for p in points
    ]
    return render_table(
        ["config", "levels", "avg gain", "relative cost", "gain/cost",
         "pareto"],
        rows,
        title="Cost-effectiveness of the Table I design space "
              "(paper's future work)",
    )
