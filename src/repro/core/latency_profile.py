"""Figure 1: the latency tolerance profile.

The paper's methodology: keep the SMs and L1s, replace everything below
the L1 with a responder that returns every miss after a *fixed* latency,
sweep that latency (x-axis) and plot IPC normalized to the true baseline
architecture (y-axis).  Two observations fall out of each curve:

* the **intercept** — the fixed latency at which the curve crosses 1.0x —
  estimates the baseline's *effective* average memory latency, and for
  most benchmarks sits far above the unloaded L2/DRAM latencies, revealing
  congestion;
* the **plateau** — the latency below which performance stops improving —
  marks where the benchmark's own parallelism saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.core.metrics import RunMetrics, run_kernel
from repro.sim.config import GPUConfig
from repro.workloads.program import KernelProgram
from repro.workloads.suite import get_benchmark
from repro.runner import BatchRunner, Job

#: The paper's x-axis: 0..800 cycles in steps of 50.
DEFAULT_LATENCIES: tuple[int, ...] = tuple(range(0, 801, 50))
#: Unloaded access latencies quoted in Section II.
IDEAL_L2_LATENCY = 120
IDEAL_DRAM_LATENCY = 220


@dataclass(frozen=True)
class LatencyPoint:
    """One x-axis point of Figure 1."""

    latency: int
    ipc: float
    normalized_ipc: float
    #: True when this point's run hit the cycle limit (IPC is a lower bound).
    truncated: bool = False


@dataclass(frozen=True)
class LatencyProfile:
    """Figure 1 curve for one benchmark."""

    benchmark: str
    baseline: RunMetrics
    points: tuple[LatencyPoint, ...]

    @property
    def baseline_ipc(self) -> float:
        return self.baseline.ipc

    @property
    def baseline_avg_miss_latency(self) -> float:
        """Measured average L1 miss round trip of the true baseline."""
        return self.baseline.l1_avg_miss_latency

    @property
    def peak_normalized_ipc(self) -> float:
        return max(p.normalized_ipc for p in self.points)

    @property
    def truncated(self) -> bool:
        """True when any contributing run hit the cycle limit."""
        return self.baseline.truncated or any(p.truncated for p in self.points)

    def plateau_latency(self, tolerance: float = 0.05) -> int:
        """Largest swept latency still within ``tolerance`` of peak IPC."""
        peak = self.peak_normalized_ipc
        plateau = self.points[0].latency
        for point in self.points:
            if point.normalized_ipc >= peak * (1.0 - tolerance):
                plateau = max(plateau, point.latency)
        return plateau

    def intercept_latency(self) -> float | None:
        """Fixed latency at which normalized IPC crosses 1.0.

        Linearly interpolated between swept points; None when the curve
        never crosses (benchmark insensitive over the swept range).
        """
        pts = sorted(self.points, key=lambda p: p.latency)
        for left, right in zip(pts, pts[1:]):
            if left.normalized_ipc >= 1.0 >= right.normalized_ipc:
                dy = left.normalized_ipc - right.normalized_ipc
                if dy == 0:
                    return float(left.latency)
                frac = (left.normalized_ipc - 1.0) / dy
                return left.latency + frac * (right.latency - left.latency)
        if pts and pts[-1].normalized_ipc > 1.0:
            return None  # still above baseline at the largest swept latency
        if pts and pts[0].normalized_ipc < 1.0:
            return float(pts[0].latency)
        return None

    def congestion_excess(self) -> float | None:
        """Cycles of baseline latency beyond the unloaded DRAM latency.

        Positive values are congestion-added latency (Section II's second
        observation).
        """
        intercept = self.intercept_latency()
        if intercept is None:
            return None
        return intercept - IDEAL_DRAM_LATENCY

    def series(self) -> list[tuple[float, float]]:
        """(latency, normalized IPC) pairs for plotting."""
        return [(float(p.latency), p.normalized_ipc) for p in self.points]


def profile_latency_tolerance(
    benchmark: str | KernelProgram,
    config: GPUConfig,
    latencies: Sequence[int] = DEFAULT_LATENCIES,
    iteration_scale: float = 1.0,
    seed: int = 1,
    baseline: RunMetrics | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    runner: BatchRunner | None = None,
) -> LatencyProfile:
    """Produce one benchmark's Figure 1 curve.

    ``baseline`` may be supplied to reuse an existing baseline run (e.g.
    shared with the congestion measurement); otherwise the true baseline
    configuration is simulated first.

    With ``runner``, the baseline and every swept point execute as one
    batch (parallel and/or cached); this requires a suite benchmark
    *name*, since ad-hoc :class:`KernelProgram` objects cannot cross
    process boundaries.
    """
    latencies = list(latencies)
    if runner is not None and isinstance(benchmark, str):
        name = benchmark
        jobs = [
            Job(config.with_magic_memory(latency), benchmark, seed=seed,
                iteration_scale=iteration_scale, max_cycles=max_cycles)
            for latency in latencies
        ]
        if baseline is None:
            jobs.insert(
                0,
                Job(config, benchmark, seed=seed,
                    iteration_scale=iteration_scale, max_cycles=max_cycles),
            )
            results = runner.run(jobs)
            baseline, point_metrics = results[0], results[1:]
        else:
            point_metrics = runner.run(jobs)
    else:
        if isinstance(benchmark, str):
            kernel = get_benchmark(benchmark, iteration_scale)
        else:
            kernel = benchmark
        name = kernel.name
        if baseline is None:
            baseline = run_kernel(
                config, kernel, seed=seed, max_cycles=max_cycles
            )
        point_metrics = [
            run_kernel(
                config.with_magic_memory(latency), kernel, seed=seed,
                max_cycles=max_cycles,
            )
            for latency in latencies
        ]
    points = [
        LatencyPoint(
            latency=latency,
            ipc=metrics.ipc,
            normalized_ipc=metrics.ipc / baseline.ipc if baseline.ipc else 0.0,
            truncated=metrics.truncated,
        )
        for latency, metrics in zip(latencies, point_metrics)
    ]
    return LatencyProfile(benchmark=name, baseline=baseline, points=tuple(points))
