"""Table I: the consolidated design space to mitigate congestion.

Every row of the paper's Table I is a :class:`DesignParameter` carrying its
level — (a) DRAM, (b) L2 cache, (c) L1 cache — its type ('+' parameters
raise the peak throughput of the level, '=' parameters let the level reach
its existing peak), its baseline value and its ~4x scaled value, plus the
function that applies the scaling to a :class:`GPUConfig`.

The Section IV experiments scale whole levels at a time
(:func:`scale_level`) or combinations (:func:`scale_levels`); individual
parameters can be scaled for ablations (:func:`scaled_config`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.sim.config import GPUConfig
from repro.utils.tables import render_table

Apply = Callable[[GPUConfig, int | float], GPUConfig]


def _dram(config: GPUConfig, **kw) -> GPUConfig:
    return replace(config, dram=replace(config.dram, **kw))


def _l2(config: GPUConfig, **kw) -> GPUConfig:
    return replace(config, l2=replace(config.l2, **kw))


def _l1(config: GPUConfig, **kw) -> GPUConfig:
    return replace(config, l1=replace(config.l1, **kw))


def _icnt(config: GPUConfig, **kw) -> GPUConfig:
    return replace(config, icnt=replace(config.icnt, **kw))


def _core(config: GPUConfig, **kw) -> GPUConfig:
    return replace(config, core=replace(config.core, **kw))


@dataclass(frozen=True)
class DesignParameter:
    """One row of Table I."""

    key: str
    #: Human-readable name as printed in the paper.
    label: str
    #: "dram", "l2" or "l1" — the level whose bandwidth it affects.
    level: str
    #: '+' increases peak throughput; '=' enables reaching existing peak.
    kind: str
    baseline: int
    scaled: int
    unit: str
    _apply: Apply

    def apply(self, config: GPUConfig, value: int | None = None) -> GPUConfig:
        """Return ``config`` with this parameter set to ``value``
        (defaults to the Table I scaled value)."""
        return self._apply(config, self.scaled if value is None else value)


#: Table I, row for row.  Scaled values are the paper's (~4x; bus width is
#: the paper's stated exception at 2x).
TABLE_I: tuple[DesignParameter, ...] = (
    # (a) DRAM
    DesignParameter(
        "dram_sched_queue", "Scheduler queue", "dram", "=", 16, 64, "entries",
        lambda c, v: _dram(c, sched_queue_depth=int(v)),
    ),
    DesignParameter(
        "dram_banks", "DRAM Banks", "dram", "=", 16, 64, "banks/chip",
        lambda c, v: _dram(c, banks=int(v)),
    ),
    DesignParameter(
        "dram_bus_width", "Bus width", "dram", "+", 4, 8, "bytes/chip",
        lambda c, v: _dram(c, bus_bytes=int(v)),
    ),
    # (b) L2 cache
    DesignParameter(
        "l2_miss_queue", "L2 miss queue", "l2", "=", 8, 32, "entries",
        lambda c, v: _l2(c, miss_queue_depth=int(v)),
    ),
    DesignParameter(
        "l2_response_queue", "L2 response queue", "l2", "=", 8, 32, "entries",
        lambda c, v: _l2(c, response_queue_depth=int(v)),
    ),
    DesignParameter(
        "l2_mshr", "MSHR (L2)", "l2", "=", 32, 128, "entries",
        lambda c, v: _l2(c, mshr_entries=int(v)),
    ),
    DesignParameter(
        "l2_access_queue", "L2 access queue", "l2", "=", 8, 32, "entries",
        lambda c, v: _l2(c, access_queue_depth=int(v)),
    ),
    DesignParameter(
        "l2_data_port", "L2 data port", "l2", "+", 32, 128, "bytes",
        lambda c, v: _l2(c, data_port_bytes=int(v)),
    ),
    DesignParameter(
        "flit_size", "Flit size (crossbar)", "l2", "+", 4, 16, "bytes",
        lambda c, v: _icnt(c, flit_bytes=int(v)),
    ),
    DesignParameter(
        "l2_banks", "L2 banks", "l2", "+", 2, 8, "banks/partition",
        lambda c, v: _l2(c, banks=int(v)),
    ),
    # (c) L1 cache
    DesignParameter(
        "l1_miss_queue", "L1 miss queue", "l1", "=", 8, 32, "entries",
        lambda c, v: _l1(c, miss_queue_depth=int(v)),
    ),
    DesignParameter(
        "l1_mshr", "MSHR (L1D)", "l1", "=", 32, 128, "entries",
        lambda c, v: _l1(c, mshr_entries=int(v)),
    ),
    DesignParameter(
        "mem_pipeline_width", "Memory pipeline width", "l1", "=", 10, 40, "",
        lambda c, v: _core(c, mem_pipeline_width=int(v)),
    ),
)

LEVELS: tuple[str, ...] = ("dram", "l2", "l1")

_BY_KEY = {p.key: p for p in TABLE_I}


def get_parameter(key: str) -> DesignParameter:
    """Look up a Table I parameter by key."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise ConfigError(
            f"unknown design parameter {key!r}; choose from {sorted(_BY_KEY)}"
        ) from None


def parameters_for_level(level: str) -> list[DesignParameter]:
    """All Table I rows belonging to one memory level."""
    if level not in LEVELS:
        raise ConfigError(f"unknown level {level!r}; choose from {LEVELS}")
    return [p for p in TABLE_I if p.level == level]


def scale_level(config: GPUConfig, level: str) -> GPUConfig:
    """Apply every Table I scaling belonging to ``level``."""
    for parameter in parameters_for_level(level):
        config = parameter.apply(config)
    return config


def scale_levels(config: GPUConfig, levels: Iterable[str]) -> GPUConfig:
    """Apply the Table I scalings of several levels (e.g. L1+L2)."""
    for level in levels:
        config = scale_level(config, level)
    return config


def scaled_config(
    config: GPUConfig, key: str, value: int | None = None
) -> GPUConfig:
    """Scale a single Table I parameter (ablation helper)."""
    return get_parameter(key).apply(config, value)


def render_table_i() -> str:
    """Render Table I as the paper prints it."""
    section_names = {"dram": "(a) DRAM", "l2": "(b) L2 Cache", "l1": "(c) L1 Cache"}
    rows = []
    for level in LEVELS:
        rows.append([section_names[level], "", "", ""])
        for p in parameters_for_level(level):
            unit = f" {p.unit}" if p.unit else ""
            rows.append(
                [f"  {p.label}", p.kind, f"{p.baseline}{unit}", f"{p.scaled}{unit}"]
            )
    return render_table(
        ["Design Parameter", "Type", "Baseline value", "Scaled value (~4x)"],
        rows,
        title="TABLE I: CONSOLIDATED DESIGN SPACE TO MITIGATE CONGESTION",
        align="lrrr",
    )
