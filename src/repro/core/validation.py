"""Self-validation: the paper's claims as named, runnable checks.

`validate_reproduction` runs the full experiment battery and evaluates
every qualitative claim the reproduction stands on — the same assertions
the benchmark harness makes, packaged as a structured report so CI
pipelines and the CLI (``repro validate``) can consume them.

Checks (all *shape* claims, per the reproduction brief):

=====================  ==================================================
check                  paper claim
=====================  ==================================================
fig1_curves_fall       IPC decreases with fixed L1 miss latency
fig1_compute_flat      the compute-bound benchmark's curve is ~flat
fig1_intercepts_high   effective baseline latencies >> ideal L2 latency
sec3_l2_congested      L2 access queues full a substantial fraction
sec3_dram_congested    DRAM scheduler queues full a substantial fraction
sec4_l2_dominates      L2-level scaling >> DRAM-level >> L1-level
sec4_superadditive     both combined scalings exceed the sum of parts
sec4_l1_backfires      isolated L1 scaling degrades >= 1 benchmark
sec4_cache_beats_dram  L1+L2 scaling beats high-bandwidth DRAM alone
=====================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.congestion import measure_congestion
from repro.core.explorer import explore_design_space
from repro.core.latency_profile import (
    IDEAL_L2_LATENCY,
    profile_latency_tolerance,
)
from repro.core.synergy import analyze_synergy
from repro.sim.config import GPUConfig
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE

#: Benchmarks treated as memory-intensive for the Figure 1 checks.
MEMORY_BOUND: tuple[str, ...] = ("cfd", "dwt2d", "nn", "sc", "lbm", "ss")
COMPUTE_BOUND = "leukocyte"


@dataclass(frozen=True)
class Check:
    """One named claim with its verdict and supporting evidence."""

    name: str
    passed: bool
    evidence: str


@dataclass(frozen=True)
class ValidationReport:
    checks: tuple[Check, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.passed]

    def to_table(self) -> str:
        rows = [
            [c.name, "PASS" if c.passed else "FAIL", c.evidence]
            for c in self.checks
        ]
        verdict = "REPRODUCED" if self.passed else "NOT REPRODUCED"
        return render_table(
            ["check", "verdict", "evidence"], rows,
            title=f"Reproduction validation: {verdict}", align="lll")


def validate_reproduction(
    config: GPUConfig,
    iteration_scale: float = 0.5,
    seed: int = 1,
    latencies: Sequence[int] = (0, 200, 400, 800),
) -> ValidationReport:
    """Run the experiment battery and evaluate every claim."""
    checks: list[Check] = []

    # --- Figure 1 -----------------------------------------------------
    profiles = {
        name: profile_latency_tolerance(
            name, config, latencies=latencies,
            iteration_scale=iteration_scale, seed=seed)
        for name in PAPER_SUITE
    }
    falling = [
        name
        for name, p in profiles.items()
        if all(
            later.ipc <= earlier.ipc * 1.05
            for earlier, later in zip(p.points, p.points[1:])
        )
    ]
    checks.append(Check(
        "fig1_curves_fall",
        len(falling) == len(profiles),
        f"{len(falling)}/{len(profiles)} curves non-increasing",
    ))
    compute_peak = profiles[COMPUTE_BOUND].peak_normalized_ipc
    checks.append(Check(
        "fig1_compute_flat",
        compute_peak < 1.5,
        f"{COMPUTE_BOUND} peak {compute_peak:.2f}x",
    ))
    high = [
        name for name in MEMORY_BOUND
        if (i := profiles[name].intercept_latency()) is not None
        and i > IDEAL_L2_LATENCY
    ]
    checks.append(Check(
        "fig1_intercepts_high",
        len(high) == len(MEMORY_BOUND),
        f"{len(high)}/{len(MEMORY_BOUND)} intercepts above "
        f"{IDEAL_L2_LATENCY} cy",
    ))

    # --- Section III ----------------------------------------------------
    congestion = measure_congestion(
        config, iteration_scale=iteration_scale, seed=seed)
    l2_full = congestion.avg_l2_access_queue_full
    dram_full = congestion.avg_dram_queue_full
    checks.append(Check(
        "sec3_l2_congested", 0.10 <= l2_full <= 0.80,
        f"L2 access queues full {l2_full:.0%} (paper 46%)"))
    checks.append(Check(
        "sec3_dram_congested", 0.10 <= dram_full <= 0.80,
        f"DRAM sched queues full {dram_full:.0%} (paper 39%)"))

    # --- Section IV -----------------------------------------------------
    result = explore_design_space(
        config, iteration_scale=iteration_scale, seed=seed)
    gains = {l: result.average_gain(l) for l in ("l1", "l2", "dram")}
    checks.append(Check(
        "sec4_l2_dominates",
        gains["l2"] > gains["dram"] > gains["l1"],
        "gains: " + ", ".join(f"{l} {g:+.0%}" for l, g in gains.items()),
    ))
    synergy = analyze_synergy(result)
    checks.append(Check(
        "sec4_superadditive",
        synergy.all_super_additive,
        ", ".join(
            f"{p.combined_label} {p.synergy:+.1%}" for p in synergy.pairs),
    ))
    degraded = result.degraded_benchmarks("l1")
    checks.append(Check(
        "sec4_l1_backfires",
        bool(degraded),
        f"degraded: {', '.join(degraded) or 'none'}",
    ))
    cache_gain = result.average_gain("l1+l2")
    checks.append(Check(
        "sec4_cache_beats_dram",
        cache_gain > gains["dram"],
        f"L1+L2 {cache_gain:+.0%} vs DRAM {gains['dram']:+.0%}",
    ))

    return ValidationReport(checks=tuple(checks))
