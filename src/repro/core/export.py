"""CSV / JSON export of run metrics and experiment results.

Every analysis object renders to text tables for the console; this module
exports the same data in machine-readable form so results can be plotted
or post-processed outside the library.

(Historically ``repro.utils.export``; moved here because the exporters
are views over ``repro.core`` result types — the static verifier's
layering pass (REP012) rejects ``utils`` importing upward into ``core``.
The old module lazily forwards for compatibility.)
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from collections.abc import Sequence
from typing import Any

from pathlib import Path

from repro.core.explorer import ExplorationResult
from repro.core.latency_profile import LatencyProfile
from repro.core.metrics import STALL_CAUSE_KEYS, QueueMetrics, RunMetrics
from repro.errors import UsageError
from repro.utils.export import write_text

__all__ = [
    "exploration_to_dict",
    "exploration_to_json",
    "export_runs",
    "metrics_to_csv",
    "metrics_to_dict",
    "metrics_to_json",
    "metrics_to_nested_dict",
    "profile_to_csv",
    "runs_to_text",
    "write_text",
]


def runs_to_text(runs: Sequence[RunMetrics], fmt: str = "csv") -> str:
    """Render ``runs`` in the stable export schema, as text.

    The single formatting authority behind every run-sequence export
    surface (``repro export``, campaign exports, the service's
    ``results`` endpoint): ``csv`` is the flat :func:`metrics_to_dict`
    column schema, ``json`` the nested :func:`metrics_to_nested_dict`
    document.  Because all surfaces share this function, a daemon's
    streamed results are byte-identical to a local export of the same
    runs.
    """
    if fmt == "json":
        return metrics_to_json(runs)
    if fmt == "csv":
        return metrics_to_csv(runs)
    raise UsageError(f"unknown export format {fmt!r}; use csv or json")


def export_runs(
    runs: Sequence[RunMetrics], output: str | Path, fmt: str = "csv"
) -> Path:
    """Write ``runs`` to ``output`` in the stable export schema.

    File-writing wrapper over :func:`runs_to_text`; returns the path
    written.
    """
    return write_text(output, runs_to_text(runs, fmt))


def metrics_to_dict(metrics: RunMetrics) -> dict[str, Any]:
    """Flatten a RunMetrics into a one-level dict of scalars."""
    out: dict[str, Any] = {}
    for field in dataclasses.fields(metrics):
        value = getattr(metrics, field.name)
        if isinstance(value, QueueMetrics):
            out[f"{field.name}_full_fraction"] = value.full_fraction
            out[f"{field.name}_busy_fraction"] = value.busy_fraction
            out[f"{field.name}_rejections"] = value.rejections
            out[f"{field.name}_pushes"] = value.pushes
        elif field.name == "mem_stall_cycles_by_cause":
            # Column-stable: every cause key always present (zero-filled).
            for cause in STALL_CAUSE_KEYS:
                out[f"mem_stall_{cause[len('stall_'):]}_cycles"] = (
                    value.get(cause, 0)
                )
        elif isinstance(value, dict):
            continue  # extras: caller-defined, not schema-stable
        else:
            out[field.name] = value
    return out


def metrics_to_nested_dict(metrics: RunMetrics) -> dict[str, Any]:
    """Structured rendition of a RunMetrics, queue families kept nested.

    Unlike :func:`metrics_to_dict` (whose flat scalars suit CSV columns),
    each :class:`QueueMetrics` becomes a sub-object and ``extras`` rides
    along untouched, so JSON consumers see the full queue-family structure
    plus any sanitizer/telemetry payloads.
    """
    out: dict[str, Any] = {}
    for field in dataclasses.fields(metrics):
        value = getattr(metrics, field.name)
        if isinstance(value, QueueMetrics):
            out[field.name] = dataclasses.asdict(value)
        else:
            out[field.name] = value
    return out


def metrics_to_json(runs: Sequence[RunMetrics], indent: int = 2) -> str:
    """Render runs as a JSON array, one object per run (nested queues)."""
    return json.dumps([metrics_to_nested_dict(m) for m in runs], indent=indent)


def metrics_to_csv(runs: Sequence[RunMetrics]) -> str:
    """Render runs as CSV text, one row per run."""
    if not runs:
        return ""
    rows = [metrics_to_dict(m) for m in runs]
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return out.getvalue()


def profile_to_csv(profile: LatencyProfile) -> str:
    """Figure 1 series as CSV (latency, ipc, normalized_ipc)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["benchmark", "latency", "ipc", "normalized_ipc"])
    for point in profile.points:
        writer.writerow(
            [profile.benchmark, point.latency, point.ipc, point.normalized_ipc]
        )
    return out.getvalue()


def exploration_to_dict(result: ExplorationResult) -> dict[str, Any]:
    """Section IV results as a JSON-ready structure."""
    return {
        "benchmarks": list(result.benchmarks),
        "configs": list(result.config_labels),
        "speedups": {
            label: result.speedups(label)
            for label in result.config_labels
            if label != "baseline"
        },
        "average_gains": {
            label: result.average_gain(label)
            for label in result.config_labels
            if label != "baseline"
        },
        "runs": {
            label: {
                bench: metrics_to_dict(metrics)
                for bench, metrics in by_bench.items()
            }
            for label, by_bench in result.runs.items()
        },
    }


def exploration_to_json(result: ExplorationResult, indent: int = 2) -> str:
    return json.dumps(exploration_to_dict(result), indent=indent)
