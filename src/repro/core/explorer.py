"""Section IV: design-space exploration.

Runs every benchmark on the baseline and on scaled configurations —
each Table I level alone (L1, L2, DRAM) and the paper's two adjacent
combinations (L1+L2, L2+DRAM) — and aggregates speedups.

Paper results this reproduces (average speedup over the suite):

===========  =======
scaled       speedup
===========  =======
L1 alone       +4%
L2 alone      +59%
DRAM alone    +11%
L1+L2         +69%
L2+DRAM       +76%
===========  =======

with the combinations exceeding the sums of their parts (synergy), and
isolated L1 scaling *hurting* some benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.core.design_space import scale_levels, scaled_config
from repro.core.metrics import RunMetrics, run_kernel
from repro.sim.config import GPUConfig
from repro.utils.means import arithmetic_mean, geometric_mean
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE, get_benchmark
from repro.runner import BatchRunner, Job

#: The experiment matrix of Section IV: label -> levels scaled together.
SECTION_IV_CONFIGS: dict[str, tuple[str, ...]] = {
    "baseline": (),
    "l1": ("l1",),
    "l2": ("l2",),
    "dram": ("dram",),
    "l1+l2": ("l1", "l2"),
    "l2+dram": ("l2", "dram"),
}


@dataclass(frozen=True)
class ExplorationResult:
    """All runs of a design-space exploration."""

    #: config label -> benchmark -> metrics.
    runs: Mapping[str, Mapping[str, RunMetrics]]
    config_labels: tuple[str, ...]
    benchmarks: tuple[str, ...]

    # ------------------------------------------------------------------
    def speedup(self, label: str, benchmark: str) -> float:
        """IPC of ``label`` over the baseline for one benchmark."""
        base = self.runs["baseline"][benchmark]
        return self.runs[label][benchmark].speedup_over(base)

    def speedups(self, label: str) -> dict[str, float]:
        return {b: self.speedup(label, b) for b in self.benchmarks}

    def average_speedup(self, label: str, mean: str = "arithmetic") -> float:
        """Suite-average speedup of a configuration over baseline."""
        values = list(self.speedups(label).values())
        if mean == "geometric":
            return geometric_mean(values)
        return arithmetic_mean(values)

    def average_gain(self, label: str) -> float:
        """Average speedup expressed as a gain (paper's "+59%" = 0.59)."""
        return self.average_speedup(label) - 1.0

    def degraded_benchmarks(self, label: str) -> list[str]:
        """Benchmarks slowed down by the scaling (counter-productive cases)."""
        return [b for b, s in self.speedups(label).items() if s < 1.0]

    def truncated_points(self) -> tuple[tuple[str, str], ...]:
        """(config label, benchmark) pairs whose run hit the cycle limit."""
        return tuple(
            (label, benchmark)
            for label in self.config_labels
            for benchmark in self.benchmarks
            if self.runs[label][benchmark].truncated
        )

    def to_table(self) -> str:
        rows = []
        for benchmark in self.benchmarks:
            row = [benchmark]
            for label in self.config_labels:
                if label == "baseline":
                    continue
                row.append(f"{self.speedup(label, benchmark):.2f}x")
            rows.append(row)
        avg_row = ["average"]
        headers = ["benchmark"]
        for label in self.config_labels:
            if label == "baseline":
                continue
            headers.append(label)
            avg_row.append(f"{self.average_speedup(label):.2f}x")
        rows.append(avg_row)
        return render_table(
            headers, rows, title="Speedup over baseline (IPC ratio)"
        )


def explore_design_space(
    config: GPUConfig,
    benchmarks: Sequence[str] = PAPER_SUITE,
    configs: Mapping[str, tuple[str, ...]] | None = None,
    iteration_scale: float = 1.0,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    runner: BatchRunner | None = None,
) -> ExplorationResult:
    """Run the Section IV experiment matrix.

    ``configs`` maps labels to tuples of levels to scale together; the
    default is the paper's matrix (baseline, each level alone, L1+L2,
    L2+DRAM).

    With ``runner``, the whole (config x benchmark) matrix executes as
    one batch (parallel and/or cached); results merge back by position,
    never by completion order.
    """
    if configs is None:
        configs = SECTION_IV_CONFIGS
    if "baseline" not in configs:
        configs = {"baseline": (), **configs}
    benchmarks = list(benchmarks)
    runs: dict[str, dict[str, RunMetrics]] = {}
    if runner is not None:
        jobs: list[Job] = []
        index: list[tuple[str, str]] = []
        for label, levels in configs.items():
            scaled = scale_levels(config, levels)
            for name in benchmarks:
                jobs.append(
                    Job(scaled, name, seed=seed,
                        iteration_scale=iteration_scale, max_cycles=max_cycles)
                )
                index.append((label, name))
        results = runner.run(jobs)
        for (label, name), metrics in zip(index, results):
            runs.setdefault(label, {})[name] = metrics
    else:
        kernels = {
            name: get_benchmark(name, iteration_scale) for name in benchmarks
        }
        for label, levels in configs.items():
            scaled = scale_levels(config, levels)
            runs[label] = {
                name: run_kernel(
                    scaled, kernel, seed=seed, max_cycles=max_cycles
                )
                for name, kernel in kernels.items()
            }
    return ExplorationResult(
        runs=runs,
        config_labels=tuple(configs),
        benchmarks=tuple(benchmarks),
    )


@dataclass(frozen=True)
class ParameterSweep:
    """Result of sweeping one Table I parameter (ablation)."""

    parameter: str
    benchmark: str
    #: value -> metrics.
    points: Mapping[int, RunMetrics] = field(default_factory=dict)

    def speedups(self) -> dict[int, float]:
        values = sorted(self.points)
        base = self.points[values[0]]
        return {v: self.points[v].speedup_over(base) for v in values}


def sweep_parameter(
    config: GPUConfig,
    key: str,
    values: Sequence[int],
    benchmark: str,
    iteration_scale: float = 1.0,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> ParameterSweep:
    """Run one benchmark across several values of one Table I parameter."""
    kernel = get_benchmark(benchmark, iteration_scale)
    points = {}
    for value in values:
        cfg = scaled_config(config, key, value)
        points[value] = run_kernel(cfg, kernel, seed=seed, max_cycles=max_cycles)
    return ParameterSweep(parameter=key, benchmark=benchmark, points=points)
