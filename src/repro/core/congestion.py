"""Section III: measuring the bandwidth bottleneck.

"We quantify the congestion between L1 and L2 by measuring the occupancy
of the L2 access queues.  We observe that on average, the L2 access queues
are full for 46% of their usage lifetime.  Similarly ... the DRAM access
queues are full for 39% of their usage lifetime."

:func:`measure_congestion` runs the suite on the baseline configuration
and reports, per benchmark and averaged, the full-fraction of every queue
in the hierarchy, plus the supporting congestion indicators (MSHR
pressure, crossbar blockage, reservation failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.core.metrics import RunMetrics, run_kernel
from repro.sim.config import GPUConfig
from repro.utils.means import arithmetic_mean
from repro.utils.tables import render_table
from repro.workloads.suite import PAPER_SUITE, get_benchmark
from repro.runner import BatchRunner, Job


@dataclass(frozen=True)
class CongestionReport:
    """Queue congestion across the memory hierarchy."""

    #: Per-benchmark run metrics on the baseline configuration.
    runs: Mapping[str, RunMetrics]

    # -- Section III headline numbers -----------------------------------
    @property
    def avg_l2_access_queue_full(self) -> float:
        """Paper: 46% on the GTX480 baseline."""
        return arithmetic_mean(
            m.l2_accessq.full_fraction for m in self.runs.values()
        )

    @property
    def avg_dram_queue_full(self) -> float:
        """Paper: 39% on the GTX480 baseline."""
        return arithmetic_mean(
            m.dram_schedq.full_fraction for m in self.runs.values()
        )

    @property
    def avg_l1_miss_queue_full(self) -> float:
        return arithmetic_mean(
            m.l1_missq.full_fraction for m in self.runs.values()
        )

    @property
    def avg_l2_miss_queue_full(self) -> float:
        return arithmetic_mean(
            m.l2_missq.full_fraction for m in self.runs.values()
        )

    @property
    def avg_l2_response_queue_full(self) -> float:
        return arithmetic_mean(
            m.l2_respq.full_fraction for m in self.runs.values()
        )

    @property
    def truncated_benchmarks(self) -> tuple[str, ...]:
        """Benchmarks whose run hit the cycle limit (metrics are bounds)."""
        return tuple(name for name, m in self.runs.items() if m.truncated)

    def to_table(self) -> str:
        """Per-benchmark queue full-fractions as an ASCII table."""
        rows = []
        for name, m in self.runs.items():
            rows.append(
                [
                    name + (" *" if m.truncated else ""),
                    f"{m.l1_missq.full_fraction:.0%}",
                    f"{m.l2_accessq.full_fraction:.0%}",
                    f"{m.l2_missq.full_fraction:.0%}",
                    f"{m.l2_respq.full_fraction:.0%}",
                    f"{m.dram_schedq.full_fraction:.0%}",
                    f"{m.l1_avg_miss_latency:.0f}",
                ]
            )
        rows.append(
            [
                "average",
                f"{self.avg_l1_miss_queue_full:.0%}",
                f"{self.avg_l2_access_queue_full:.0%}",
                f"{self.avg_l2_miss_queue_full:.0%}",
                f"{self.avg_l2_response_queue_full:.0%}",
                f"{self.avg_dram_queue_full:.0%}",
                "",
            ]
        )
        table = render_table(
            [
                "benchmark",
                "L1 missQ full",
                "L2 accessQ full",
                "L2 missQ full",
                "L2 respQ full",
                "DRAM schedQ full",
                "avg L1 miss lat",
            ],
            rows,
            title="Queue full-fraction of usage lifetime (baseline)",
        )
        if self.truncated_benchmarks:
            table += (
                "\n* hit the cycle limit; truncated metrics are lower bounds"
            )
        return table


def measure_congestion(
    config: GPUConfig,
    benchmarks: Sequence[str] = PAPER_SUITE,
    iteration_scale: float = 1.0,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    runner: BatchRunner | None = None,
) -> CongestionReport:
    """Run the suite on ``config`` and gather the Section III measurements.

    With ``runner``, the per-benchmark runs execute as one batch
    (parallel and/or cached); results merge back in ``benchmarks`` order
    regardless of completion order.
    """
    benchmarks = list(benchmarks)
    if runner is not None:
        results = runner.run(
            [
                Job(config, name, seed=seed, iteration_scale=iteration_scale,
                    max_cycles=max_cycles)
                for name in benchmarks
            ]
        )
        runs = dict(zip(benchmarks, results))
    else:
        runs = {}
        for name in benchmarks:
            kernel = get_benchmark(name, iteration_scale)
            runs[name] = run_kernel(
                config, kernel, seed=seed, max_cycles=max_cycles
            )
    return CongestionReport(runs=runs)
