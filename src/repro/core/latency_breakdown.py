"""Per-hop latency breakdown.

Section II argues that baseline memory latencies are "critically higher
than the ideal access latencies" and attributes the excess to congestion.
This analyzer shows *where* the excess accrues: every request carries
per-hop timestamps, and the breakdown averages the time spent in each
segment of the round trip, separately for L2 hits and L2 misses.

Segments (L1 miss -> fill):

=================  =====================================================
segment            boundary timestamps
=================  =====================================================
l1_to_l2           l1_miss -> l2_in   (L1 miss queue + request crossbar)
l2_queue           l2_in -> l2_probed (access queue + bank pipeline)
l2_to_dram         l2_miss -> dram_in (L2 miss queue admission)
dram_service       dram_in -> dram_done (scheduler queue + bank + bus)
dram_to_l2         dram_done -> l2_out (return queue, fill, data port)
l2_hit_out         l2_probed -> l2_out (data port + response queue, hits)
response_network   l2_out -> l1_fill (response crossbar + network)
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.gpu import GPU
from repro.mem.request import MemoryRequest
from repro.sim.config import GPUConfig
from repro.utils.stats import Accumulator
from repro.utils.tables import render_table
from repro.workloads.program import KernelProgram
from repro.workloads.suite import get_benchmark

#: segment name -> (start hop, end hop)
SEGMENTS: dict[str, tuple[str, str]] = {
    "l1_to_l2": ("l1_miss", "l2_in"),
    "l2_queue": ("l2_in", "l2_probed"),
    "l2_to_dram": ("l2_miss", "dram_in"),
    "dram_service": ("dram_in", "dram_done"),
    "dram_to_l2": ("dram_done", "l2_out"),
    "l2_hit_out": ("l2_probed", "l2_out"),
    "response_network": ("l2_out", "l1_fill"),
}


@dataclass
class LatencyBreakdown:
    """Average per-segment latencies for one run."""

    benchmark: str
    #: segment -> Accumulator over requests that traversed it.
    segments: dict[str, Accumulator] = field(default_factory=dict)
    total_l2_hit: Accumulator = field(
        default_factory=lambda: Accumulator("total_l2_hit"))
    total_l2_miss: Accumulator = field(
        default_factory=lambda: Accumulator("total_l2_miss"))

    def observe(self, request: MemoryRequest) -> None:
        """Fold one completed load's timestamps into the breakdown."""
        for name, (start, end) in SEGMENTS.items():
            delta = request.latency(start, end)
            if delta is not None:
                self.segments.setdefault(name, Accumulator(name)).add(delta)
        total = request.latency("l1_miss", "l1_fill")
        if total is None:
            return
        if request.l2_miss:
            self.total_l2_miss.add(total)
        else:
            self.total_l2_hit.add(total)

    def mean(self, segment: str) -> float:
        acc = self.segments.get(segment)
        return acc.mean if acc else 0.0

    def to_table(self) -> str:
        rows = []
        for name in SEGMENTS:
            acc = self.segments.get(name)
            if acc is None or not acc.count:
                continue
            rows.append([name, f"{acc.mean:.1f}", acc.count])
        rows.append([
            "TOTAL (L2 hits)", f"{self.total_l2_hit.mean:.1f}",
            self.total_l2_hit.count,
        ])
        rows.append([
            "TOTAL (L2 misses)", f"{self.total_l2_miss.mean:.1f}",
            self.total_l2_miss.count,
        ])
        return render_table(
            ["segment", "avg cycles", "requests"], rows,
            title=f"Latency breakdown: {self.benchmark}")


def measure_latency_breakdown(
    config: GPUConfig,
    benchmark: str | KernelProgram,
    iteration_scale: float = 1.0,
    seed: int = 1,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> LatencyBreakdown:
    """Run a kernel and collect its per-hop latency breakdown.

    Hooks every SM's L1 access path to observe each load transaction after
    completion (timestamps are final once the fill lands).
    """
    if isinstance(benchmark, str):
        kernel = get_benchmark(benchmark, iteration_scale)
    else:
        kernel = benchmark
    gpu = GPU(config, kernel, seed=seed)
    breakdown = LatencyBreakdown(benchmark=kernel.name)

    for sm in gpu.sms:
        original = sm.l1.collect_completions

        def observing(now, _original=original):
            completed = _original(now)
            for request in completed:
                if "l1_fill" in request.timestamps:
                    breakdown.observe(request)
            return completed

        sm.l1.collect_completions = observing

    gpu.run(max_cycles=max_cycles)
    return breakdown


def congestion_share(breakdown: LatencyBreakdown, config: GPUConfig) -> float:
    """Fraction of the average L2-miss round trip beyond the unloaded one.

    Uses the configured ideal latencies; a value of 0.6 means 60% of the
    observed latency is queueing added by congestion — the quantity the
    paper's Section II points at.
    """
    observed = breakdown.total_l2_miss.mean
    if not observed:
        return 0.0
    timing = config.dram
    unloaded = (
        config.l2.bank_latency
        + timing.t_rcd + timing.t_cas + config.dram_transfer_cycles
        + config.response_transfer_cycles()
        + config.icnt.network_latency
        + config.l1.fill_latency
    )
    return max(0.0, (observed - unloaded) / observed)
