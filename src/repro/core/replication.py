"""Multi-seed replication: how seed-sensitive are the results?

The synthetic kernels draw their random address streams from per-warp
seeded generators, so any single number carries sampling noise.  This
module repeats a measurement across seeds and reports mean, standard
deviation and the coefficient of variation — the evidence that the
characterization's conclusions do not hinge on one lucky seed.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.sim.engine import DEFAULT_MAX_CYCLES
from repro.core.metrics import RunMetrics, run_kernel
from repro.runner import BatchRunner, Job
from repro.sim.config import GPUConfig
from repro.utils.tables import render_table
from repro.workloads.program import KernelProgram
from repro.workloads.suite import get_benchmark


@dataclass(frozen=True)
class Replication:
    """Mean/std of one scalar metric across seeds."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / |mean|); 0 for a zero mean.

        The magnitude of the mean is the correct normalizer: dividing by
        a signed mean would make the CV of a negative-mean metric
        negative, which then hides it from ``max()``-style aggregation
        (a large relative spread would rank *below* a perfectly stable
        metric).
        """
        mu = abs(self.mean)
        return self.std / mu if mu else 0.0

    @property
    def spread(self) -> float:
        """max - min of the observations."""
        return max(self.values) - min(self.values)


#: Default metrics replicated (name -> extractor).
DEFAULT_METRICS: dict[str, Callable[[RunMetrics], float]] = {
    "ipc": lambda m: m.ipc,
    "l1_avg_miss_latency": lambda m: m.l1_avg_miss_latency,
    "l2_hit_rate": lambda m: m.l2_hit_rate,
    "l2_accessq_full": lambda m: m.l2_accessq.full_fraction,
    "dram_schedq_full": lambda m: m.dram_schedq.full_fraction,
}


@dataclass(frozen=True)
class ReplicationReport:
    """All replicated metrics for one benchmark/config pair."""

    benchmark: str
    seeds: tuple[int, ...]
    replications: dict[str, Replication]
    #: Seeds whose run hit the cycle limit; their metrics are lower bounds.
    truncated_seeds: tuple[int, ...] = ()

    def worst_cv(self) -> float:
        """Largest CV over the replicated metrics; 0.0 when empty."""
        return max((r.cv for r in self.replications.values()), default=0.0)

    def to_table(self) -> str:
        rows = [
            [name, f"{r.mean:.3f}", f"{r.std:.3f}", f"{r.cv:.1%}"]
            for name, r in self.replications.items()
        ]
        table = render_table(
            ["metric", "mean", "std", "CV"],
            rows,
            title=(
                f"Replication of {self.benchmark} across seeds "
                f"{list(self.seeds)}"
            ),
        )
        if self.truncated_seeds:
            table += (
                f"\nwarning: seeds {list(self.truncated_seeds)} hit the "
                "cycle limit; their metrics are truncated lower bounds"
            )
        return table


def replicate(
    config: GPUConfig,
    benchmark: str | KernelProgram,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    iteration_scale: float = 1.0,
    metrics: dict[str, Callable[[RunMetrics], float]] | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    runner: "BatchRunner | None" = None,
) -> ReplicationReport:
    """Run a benchmark once per seed and aggregate the chosen metrics.

    With ``runner``, the per-seed runs execute as a batch (parallel and/or
    cached); this requires a suite benchmark *name*, since ad-hoc
    :class:`KernelProgram` objects cannot cross process boundaries.
    """
    # Defensive copy: DEFAULT_METRICS is module-level shared state; an
    # aliasing caller mutating it mid-batch must not change this report.
    metrics = dict(DEFAULT_METRICS if metrics is None else metrics)
    seeds = tuple(seeds)
    if runner is not None and isinstance(benchmark, str):
        name = benchmark
        runs = runner.run(
            [
                Job(config, benchmark, seed=seed,
                    iteration_scale=iteration_scale, max_cycles=max_cycles)
                for seed in seeds
            ]
        )
    else:
        if isinstance(benchmark, str):
            kernel = get_benchmark(benchmark, iteration_scale)
        else:
            kernel = benchmark
        name = kernel.name
        runs = [
            run_kernel(config, kernel, seed=seed, max_cycles=max_cycles)
            for seed in seeds
        ]
    replications = {
        metric_name: Replication(
            metric=metric_name, values=tuple(extract(m) for m in runs)
        )
        for metric_name, extract in metrics.items()
    }
    return ReplicationReport(
        benchmark=name,
        seeds=seeds,
        replications=replications,
        truncated_seeds=tuple(
            seed for seed, m in zip(seeds, runs) if m.truncated
        ),
    )
