"""Figure 1: the latency tolerance profile.

Reproduces the paper's headline figure: replace everything below the L1
with a fixed-latency responder, sweep the latency, and plot IPC normalized
to the true baseline.  The observations the paper draws:

* baseline performance sits far below the low-latency plateau, and
* the 1.0x intercept (the effective baseline latency) is far above the
  unloaded L2 (~120 cy) and DRAM (~220 cy) access latencies

both fall out of the printed table.

Usage::

    python examples/latency_tolerance.py [scale] [benchmark ...]
"""

import sys

from repro import PAPER_SUITE, profile_latency_tolerance, small_gpu
from repro.core.report import render_figure1


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    benchmarks = sys.argv[2:] or ["cfd", "leukocyte", "nn", "sc"]
    if benchmarks == ["all"]:
        benchmarks = list(PAPER_SUITE)
    latencies = list(range(0, 801, 100))

    config = small_gpu()
    profiles = []
    for name in benchmarks:
        print(f"profiling {name} ...", flush=True)
        profile = profile_latency_tolerance(
            name, config, latencies=latencies, iteration_scale=scale)
        profiles.append(profile)
        intercept = profile.intercept_latency()
        print(f"  baseline IPC {profile.baseline_ipc:.2f}; "
              f"measured avg miss latency "
              f"{profile.baseline_avg_miss_latency:.0f} cy; "
              f"1.0x intercept at "
              f"{'beyond sweep' if intercept is None else f'{intercept:.0f} cy'}")

    print()
    print(render_figure1(profiles))
    print("\nReading the table: for memory-intensive benchmarks the "
          "intercept (effective baseline latency) sits far above the "
          "~120/~220-cycle unloaded L2/DRAM latencies — that excess is "
          "congestion, the paper's Section II observation.")


if __name__ == "__main__":
    main()
