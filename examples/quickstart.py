"""Quickstart: simulate one GPGPU benchmark and inspect its bottleneck.

Runs the `lbm` model (a DRAM-heavy streaming stencil) on the default
reduced-scale GTX480-like configuration and prints the metrics the paper's
characterization is built from: IPC, cache hit rates, the average L1 miss
round trip, and how full each memory-system queue ran.

Usage::

    python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import get_benchmark, run_kernel, small_gpu

def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    config = small_gpu()
    print(f"Simulating {benchmark!r} (iteration scale {scale}) on "
          f"{config.core.n_sms} SMs / {config.n_partitions} partitions ...")
    metrics = run_kernel(config, get_benchmark(benchmark, scale))

    print(f"\n  cycles               {metrics.cycles:>10}")
    print(f"  instructions         {metrics.instructions:>10}")
    print(f"  IPC                  {metrics.ipc:>10.3f}")
    print(f"  L1 hit rate          {metrics.l1_hit_rate:>10.1%}")
    print(f"  L2 hit rate          {metrics.l2_hit_rate:>10.1%}")
    print(f"  avg L1 miss latency  {metrics.l1_avg_miss_latency:>10.0f} cycles")
    print("\n  Queue full-fractions (of their usage lifetime):")
    print(f"    L1 miss queues     {metrics.l1_missq.full_fraction:>8.1%}")
    print(f"    L2 access queues   {metrics.l2_accessq.full_fraction:>8.1%}")
    print(f"    L2 response queues {metrics.l2_respq.full_fraction:>8.1%}")
    print(f"    DRAM sched queues  {metrics.dram_schedq.full_fraction:>8.1%}")
    print(f"\n  DRAM row-buffer hit rate {metrics.dram_row_hit_rate:.1%}, "
          f"data-bus utilization {metrics.dram_bus_utilization:.1%}")

    # A one-line bottleneck diagnosis from the congestion signature.
    if metrics.dram_schedq.full_fraction > 0.5:
        verdict = "DRAM bandwidth"
    elif metrics.l2_accessq.full_fraction > 0.3 or \
            metrics.l2_respq.full_fraction > 0.3:
        verdict = "the L1<->L2 cache hierarchy bandwidth"
    elif metrics.l1_avg_miss_latency > 300:
        verdict = "memory latency"
    else:
        verdict = "computation (memory system keeps up)"
    print(f"\n  Dominant constraint: {verdict}")


if __name__ == "__main__":
    main()
