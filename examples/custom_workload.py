"""Build a custom workload and architecture, and compare design points.

Shows the library as a tool rather than a fixed reproduction:

1. define a new synthetic kernel (a pointer-chase-like, divergent,
   latency-sensitive workload) from scratch;
2. run it against the baseline, against a doubled-L2 design, and under
   both warp schedulers (LRR vs GTO);
3. sweep one Table I parameter (the DRAM scheduler queue) to see where
   its benefit saturates.

Usage::

    python examples/custom_workload.py
"""

import dataclasses

from repro import (
    GPUConfig,
    SyntheticKernelSpec,
    build_kernel,
    run_kernel,
    small_gpu,
    sweep_parameter,
)

def main() -> None:
    # 1. A divergent, irregular kernel: each load touches 4 scattered lines
    #    over a footprint twice the L2, with little compute to hide latency.
    spec = SyntheticKernelSpec(
        name="graph-walk",
        pattern="random",
        iterations=24,
        compute_per_iter=4,
        loads_per_iter=2,
        txns_per_load=4,
        txn_spread=5,
        working_set_lines=8192,
        mlp_limit=2,
        description="divergent irregular traversal (custom)",
    )
    kernel = build_kernel(spec)
    config = small_gpu()

    print("=== baseline vs doubled L2 capacity ===", flush=True)
    base = run_kernel(config, kernel)
    big_l2 = dataclasses.replace(
        config, l2=dataclasses.replace(config.l2, size_bytes=256 * 1024))
    big = run_kernel(big_l2, kernel)
    print(f"  baseline : IPC {base.ipc:.3f}, L2 hit {base.l2_hit_rate:.1%}, "
          f"miss latency {base.l1_avg_miss_latency:.0f} cy")
    print(f"  2x L2    : IPC {big.ipc:.3f}, L2 hit {big.l2_hit_rate:.1%}, "
          f"miss latency {big.l1_avg_miss_latency:.0f} cy "
          f"({big.speedup_over(base):.2f}x)")

    print("\n=== warp scheduler comparison (LRR vs GTO) ===", flush=True)
    for sched in ("lrr", "gto"):
        k = build_kernel(dataclasses.replace(spec, scheduler=sched))
        m = run_kernel(config, k)
        print(f"  {sched}: IPC {m.ipc:.3f}, L1 hit {m.l1_hit_rate:.1%}, "
              f"L2 hit {m.l2_hit_rate:.1%}")

    print("\n=== DRAM scheduler-queue depth sweep ===", flush=True)
    sweep = sweep_parameter(
        config, "dram_sched_queue", values=(8, 16, 32, 64),
        benchmark="cfd", iteration_scale=0.5)
    for value, speedup in sweep.speedups().items():
        m = sweep.points[value]
        print(f"  {value:>3} entries: {speedup:.2f}x vs shallowest "
              f"(row-hit rate {m.dram_row_hit_rate:.1%})")
    print("\nDeeper scheduler queues expose more row hits (an '='-type "
          "parameter in Table I) until another resource binds.")


if __name__ == "__main__":
    main()
