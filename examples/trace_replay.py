"""Record, inspect and replay memory traces.

Demonstrates the trace infrastructure:

1. record one of the suite benchmarks into a plain-text trace;
2. replay it and confirm the simulation is cycle-identical;
3. build a kernel from a *lane-level* address trace through the Fermi
   coalescer, and inspect its coalescing statistics.

Usage::

    python examples/trace_replay.py [trace_path]
"""

import sys
import tempfile
from pathlib import Path

from repro import run_kernel, small_gpu, get_benchmark
from repro.cores.coalescer import strided_lanes, unit_stride_lanes
from repro.workloads.trace import (
    coalesce_lane_trace,
    load_trace,
    record_program,
    save_trace,
    trace_kernel,
)


def main() -> None:
    config = small_gpu()
    kernel = get_benchmark("sc", 0.25)

    # 1. record
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "sc.trace")
    text = record_program(
        kernel, config.core.n_sms, config.core.warps_per_sm, seed=1)
    save_trace(path, text)
    print(f"recorded {kernel.name!r}: {len(text.splitlines())} trace lines "
          f"-> {path}")

    # 2. replay
    replay = trace_kernel(load_trace(path), mlp_limit=kernel.mlp_limit)
    original = run_kernel(config, kernel, seed=1)
    replayed = run_kernel(config, replay, seed=1)
    print(f"original: {original.cycles} cycles, IPC {original.ipc:.3f}")
    print(f"replayed: {replayed.cycles} cycles, IPC {replayed.ipc:.3f}")
    assert replayed.cycles == original.cycles, "replay must be exact"
    print("replay is cycle-exact.")

    # 3. lane-level trace through the coalescer
    accesses = []
    for i in range(64):
        accesses.append(("load", unit_stride_lanes(i * 4096)))   # coalesced
        accesses.append(("load", strided_lanes(i * 4096, 512)))  # divergent
    instructions, coalescer = coalesce_lane_trace(
        accesses, line_bytes=config.line_bytes, compute_between=4)
    stats = coalescer.stats
    print(f"\nlane-level trace: {stats.accesses} warp accesses -> "
          f"{stats.transactions} transactions "
          f"({stats.mean_transactions_per_access:.1f} per access, "
          f"{stats.fully_coalesced_fraction:.0%} fully coalesced)")
    lane_kernel = trace_kernel(
        {(sm, 0): list(instructions) for sm in range(config.core.n_sms)},
        name="lane-trace", mlp_limit=4)
    metrics = run_kernel(config, lane_kernel)
    print(f"lane-trace run: IPC {metrics.ipc:.3f}, "
          f"L1 hit rate {metrics.l1_hit_rate:.0%}, "
          f"avg miss latency {metrics.l1_avg_miss_latency:.0f} cy")


if __name__ == "__main__":
    main()
