"""Section IV: design-space exploration and synergistic scaling.

Scales the Table I parameters ~4x one memory level at a time (L1, L2,
DRAM) and in the paper's two adjacent combinations (L1+L2, L2+DRAM), then
reports per-benchmark and average speedups, the synergy analysis
(combination vs sum of parts), and the benchmarks for which isolated L1
scaling was counter-productive.

The paper's qualitative results to look for in the output:

* L2-level scaling dominates (paper: +59%), DRAM-alone is modest (+11%),
  L1-alone is marginal (+4%);
* combinations are super-additive (+69% / +76%);
* isolated L1 scaling *hurts* some benchmarks (more outstanding misses ->
  more L1<->L2 congestion);
* scaling the cache hierarchy beats pairing the baseline cache hierarchy
  with high-bandwidth DRAM.

Usage::

    python examples/design_space_exploration.py [scale]
"""

import sys

from repro import analyze_synergy, explore_design_space, render_table_i, small_gpu
from repro.core.report import render_section_iv


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    print(render_table_i())
    print("\nRunning the Section IV experiment matrix "
          "(6 configurations x 8 benchmarks) ...", flush=True)
    result = explore_design_space(small_gpu(), iteration_scale=scale)
    synergy = analyze_synergy(result)
    print()
    print(render_section_iv(result, synergy))

    degraded = result.degraded_benchmarks("l1")
    if degraded:
        print(f"\nIsolated L1 scaling degraded: {', '.join(degraded)}")
        print("  (the paper's counter-productive case: more outstanding L1 "
              "misses congest the L1<->L2 path even further)")

    cache_gain = result.average_gain("l1+l2")
    dram_gain = result.average_gain("dram")
    print(f"\nCache-hierarchy scaling (+{cache_gain:.0%}) vs high-bandwidth "
          f"DRAM on the baseline hierarchy (+{dram_gain:.0%}): "
          f"{'cache hierarchy wins' if cache_gain > dram_gain else 'DRAM wins'}"
          " — the paper's central claim.")


if __name__ == "__main__":
    main()
