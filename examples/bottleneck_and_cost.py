"""Where is each workload bound, where does latency accrue, and what is
the cheapest fix?

Three analyses beyond the paper's headline results, chained together:

1. classify every suite benchmark's dominant bottleneck from its
   congestion signature;
2. break one memory-bound benchmark's average miss round trip into
   per-hop segments (which queue adds the cycles?);
3. rank the Section IV configurations by gain-per-cost and print the
   pareto frontier — the paper's stated future work.

Usage::

    python examples/bottleneck_and_cost.py [scale]
"""

import sys

from repro import (
    congestion_share,
    cost_effectiveness,
    diagnose_suite,
    explore_design_space,
    measure_latency_breakdown,
    pareto_frontier,
    render_cost_effectiveness,
    render_diagnoses,
    small_gpu,
)
from repro.core.explorer import SECTION_IV_CONFIGS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    config = small_gpu()

    print("=== 1. bottleneck classification ===", flush=True)
    diagnoses = diagnose_suite(config, iteration_scale=scale)
    print(render_diagnoses(diagnoses))

    print("\n=== 2. latency breakdown of the most cache-congested "
          "benchmark ===", flush=True)
    cache_bound = [
        d.benchmark for d in diagnoses
        if d.bottleneck.value == "l1_l2_bandwidth"
    ]
    target = cache_bound[0] if cache_bound else "sc"
    breakdown = measure_latency_breakdown(
        config, target, iteration_scale=scale)
    print(breakdown.to_table())
    print(f"congestion share of the round trip: "
          f"{congestion_share(breakdown, config):.0%}")

    print("\n=== 3. cost-effectiveness of the Table I design space ===",
          flush=True)
    result = explore_design_space(config, iteration_scale=scale)
    points = cost_effectiveness(result, SECTION_IV_CONFIGS)
    frontier = pareto_frontier(points)
    print(render_cost_effectiveness(points, frontier))
    best = points[0]
    print(f"\nMost cost-effective configuration: {best.label} "
          f"({best.gain:+.0%} for {best.cost:.2f} cost units)")


if __name__ == "__main__":
    main()
