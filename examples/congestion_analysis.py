"""Section III: measuring the bandwidth bottleneck.

Runs the benchmark suite on the baseline architecture and reports, per
benchmark and on average, the fraction of each queue's usage lifetime for
which it was completely full — the paper's congestion metric (46% for the
L2 access queues and 39% for the DRAM scheduler queues on its GTX480
baseline).

It then repeats the measurement on a configuration with the whole Table I
design space applied, showing that congestion (not raw capacity) was the
limiter: the same workloads leave the scaled queues nearly empty.

Usage::

    python examples/congestion_analysis.py [scale]
"""

import sys

from repro import measure_congestion, scale_levels, small_gpu
from repro.core.report import render_congestion


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    baseline = small_gpu()
    print("=== baseline architecture ===", flush=True)
    report = measure_congestion(baseline, iteration_scale=scale)
    print(render_congestion(report))

    print("\n=== all Table I scalings applied (L1+L2+DRAM) ===", flush=True)
    relieved = scale_levels(baseline, ("l1", "l2", "dram"))
    relieved_report = measure_congestion(relieved, iteration_scale=scale)
    print(relieved_report.to_table())

    print(
        f"\nCongestion drop after scaling:"
        f"\n  L2 access queues : {report.avg_l2_access_queue_full:.0%}"
        f" -> {relieved_report.avg_l2_access_queue_full:.0%}"
        f"\n  DRAM sched queues: {report.avg_dram_queue_full:.0%}"
        f" -> {relieved_report.avg_dram_queue_full:.0%}"
    )


if __name__ == "__main__":
    main()
