#!/usr/bin/env python
"""Run mypy --strict over the typed packages (sim/ and analysis/).

The configuration lives in pyproject.toml ([tool.mypy]); this wrapper
exists so the command is one word locally and in CI, and so environments
without mypy (the simulator itself has zero third-party dependencies)
skip cleanly instead of erroring.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    if importlib.util.find_spec("mypy") is None:
        print(
            "typecheck: mypy is not installed; skipping "
            "(pip install mypy to run locally — CI enforces this)",
            file=sys.stderr,
        )
        return 0
    cmd = [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]
    cmd.extend(argv if argv is not None else sys.argv[1:])
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
