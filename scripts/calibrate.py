"""Calibration helper: baseline + magic-zero-latency stats for the suite."""
import sys, time
from repro import small_gpu, get_benchmark, run_kernel, PAPER_SUITE

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
cfg = small_gpu()
names = sys.argv[2:] or list(PAPER_SUITE)
print(f"{'bench':<10} {'cyc':>7} {'ipc':>6} {'m0ipc':>6} {'peak':>5} "
      f"{'l1hr':>5} {'l2hr':>5} {'mlat':>5} {'accqF':>5} {'dramF':>5} "
      f"{'respF':>5} {'missqF':>6} {'rowHR':>5} {'busU':>5} {'wall':>5}")
for name in names:
    k = get_benchmark(name, scale)
    t = time.time()  # noqa: REP001 - host wall timing, not simulated time
    m = run_kernel(cfg, k)
    m0 = run_kernel(cfg.with_magic_memory(0), k)
    w = time.time() - t  # noqa: REP001 - host wall timing, not simulated time
    print(f"{name:<10} {m.cycles:>7} {m.ipc:>6.2f} {m0.ipc:>6.2f} "
          f"{m0.ipc/m.ipc:>5.1f} {m.l1_hit_rate:>5.2f} {m.l2_hit_rate:>5.2f} "
          f"{m.l1_avg_miss_latency:>5.0f} {m.l2_accessq.full_fraction:>5.2f} "
          f"{m.dram_schedq.full_fraction:>5.2f} {m.l2_respq.full_fraction:>5.2f} "
          f"{m.l2_missq.full_fraction:>6.2f} {m.dram_row_hit_rate:>5.2f} "
          f"{m.dram_bus_utilization:>5.2f} {w:>5.1f}")
