"""Generate EXPERIMENTS.md from full-scale measured results.

Runs every experiment at iteration scale 1.0 on the default reduced-scale
baseline and records paper-vs-measured values for each table and figure.
"""

import sys
import time

from repro import (
    PAPER_SUITE,
    analyze_synergy,
    explore_design_space,
    measure_congestion,
    profile_latency_tolerance,
    render_table_i,
    small_gpu,
)
from repro.core.bottleneck import diagnose_suite, render_diagnoses
from repro.core.cost_model import (
    cost_effectiveness,
    pareto_frontier,
    render_cost_effectiveness,
)
from repro.core.explorer import SECTION_IV_CONFIGS
from repro.core.latency_profile import IDEAL_DRAM_LATENCY, IDEAL_L2_LATENCY
from repro.core.report import (
    PAPER_AVG_GAINS,
    PAPER_DRAM_SCHEDQ_FULL,
    PAPER_L2_ACCESSQ_FULL,
    render_figure1,
)

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
OUT = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"


def main() -> None:
    config = small_gpu()
    t0 = time.time()  # noqa: REP001 - host wall timing, not simulated time

    print("running Figure 1 sweep ...", flush=True)
    profiles = [
        profile_latency_tolerance(
            name, config, latencies=range(0, 801, 100), iteration_scale=SCALE)
        for name in PAPER_SUITE
    ]
    by_name = {p.benchmark: p for p in profiles}

    print("running Section III congestion ...", flush=True)
    congestion = measure_congestion(config, iteration_scale=SCALE)

    print("running Section IV exploration ...", flush=True)
    result = explore_design_space(config, iteration_scale=SCALE)
    synergy = analyze_synergy(result)

    print("running bottleneck classification ...", flush=True)
    diagnoses = diagnose_suite(config, iteration_scale=SCALE)

    points = cost_effectiveness(result, SECTION_IV_CONFIGS)
    frontier = pareto_frontier(points)

    lines: list[str] = []
    w = lines.append
    w("# EXPERIMENTS — paper vs measured")
    w("")
    w("Reproduction of *Characterizing Memory Bottlenecks in GPGPU "
      "Workloads* (IISWC 2016).")
    w("")
    w(f"All measurements: default reduced-scale baseline (`small_gpu()`: "
      f"{config.core.n_sms} SMs, {config.n_partitions} memory partitions, "
      f"all Table I parameters at paper values), benchmark iteration scale "
      f"{SCALE}, seed 1. Regenerate any row with "
      "`pytest benchmarks/ --benchmark-only` or the CLI commands noted "
      "per experiment. Per the reproduction brief, the comparison targets "
      "the *shape* of each result (orderings, rough factors, crossovers), "
      "not absolute numbers — the substrate is a reduced-scale Python "
      "simulator with synthetic workload models (see DESIGN.md §2).")
    w("")

    # ------------------------------------------------------------------
    w("## E1/E2 — Figure 1: latency tolerance profile")
    w("")
    w("`repro latency-profile` / `benchmarks/test_fig1_latency_tolerance.py`")
    w("")
    w("Paper observations: performance falls steeply with L1 miss latency "
      "for memory-intensive benchmarks (curves reach ~1x at several "
      "hundred cycles, peaks up to ~5-6x); the compute-bound benchmark is "
      "flat; baseline latencies (the 1.0x intercepts) sit far above the "
      f"unloaded L2 (~{IDEAL_L2_LATENCY} cy) and DRAM "
      f"(~{IDEAL_DRAM_LATENCY} cy) access latencies.")
    w("")
    w("| benchmark | peak norm. IPC | 1.0x intercept (cy) | measured baseline miss latency (cy) | > ideal DRAM? |")
    w("|---|---|---|---|---|")
    for name in PAPER_SUITE:
        p = by_name[name]
        intercept = p.intercept_latency()
        text = f"{intercept:.0f}" if intercept is not None else ">800"
        beyond = (
            "yes" if intercept is not None and intercept > IDEAL_DRAM_LATENCY
            else "no"
        )
        w(f"| {name} | {p.peak_normalized_ipc:.2f}x | {text} | "
          f"{p.baseline_avg_miss_latency:.0f} | {beyond} |")
    w("")
    w("Shape check: all memory-intensive curves fall monotonically and "
      "intercept far above the ideal latencies (congestion); leukocyte "
      "(compute-bound) stays near 1.0x — matching the paper's flattest "
      "curve. Our peaks run higher than the paper's (~5.5x max) because "
      "the synthetic kernels are leaner than real Rodinia inner loops; "
      "the ordering and the intercept structure are preserved. The "
      "intercept independently estimates the measured baseline miss "
      "latency (the two rightmost columns agree within ~10-30% for the "
      "memory-bound benchmarks), validating the methodology.")
    w("")
    w("```")
    w(render_figure1(profiles))
    w("```")
    w("")

    # ------------------------------------------------------------------
    w("## E3 — Section III: queue occupancy")
    w("")
    w("`repro congestion` / `benchmarks/test_sec3_queue_occupancy.py`")
    w("")
    w("| metric | paper | measured |")
    w("|---|---|---|")
    w(f"| L2 access queues full (avg, of usage lifetime) | "
      f"{PAPER_L2_ACCESSQ_FULL:.0%} | "
      f"{congestion.avg_l2_access_queue_full:.0%} |")
    w(f"| DRAM scheduler queues full (avg, of usage lifetime) | "
      f"{PAPER_DRAM_SCHEDQ_FULL:.0%} | "
      f"{congestion.avg_dram_queue_full:.0%} |")
    w("")
    w("```")
    w(congestion.to_table())
    w("```")
    w("")

    # ------------------------------------------------------------------
    w("## E4 — Table I: consolidated design space")
    w("")
    w("`repro table1` / `benchmarks/test_table1_design_space.py` — "
      "reproduced exactly (all 13 rows, baseline and ~4x scaled values, "
      "'+'/'=' types; verified to match the executable configuration).")
    w("")
    w("```")
    w(render_table_i())
    w("```")
    w("")

    # ------------------------------------------------------------------
    w("## E5/E6/E7 — Section IV: design-space exploration")
    w("")
    w("`repro explore` / `benchmarks/test_sec4_*.py`")
    w("")
    w("| configuration | paper avg gain | measured avg gain |")
    w("|---|---|---|")
    for label, paper in PAPER_AVG_GAINS.items():
        w(f"| {label} | {paper:+.0%} | {result.average_gain(label):+.0%} |")
    w("")
    degraded = result.degraded_benchmarks("l1")
    w("Shape checks (all asserted by the benchmark harness):")
    w("")
    w("* ordering preserved: L2 ≫ DRAM > L1;")
    w("* both combinations super-additive "
      f"(L1+L2 synergy {synergy.pairs[0].synergy:+.1%}, "
      f"L2+DRAM synergy {synergy.pairs[1].synergy:+.1%});")
    w(f"* isolated L1 scaling counter-productive for: "
      f"{', '.join(degraded) or 'none'} — recovered by L1+L2;")
    w("* cache-hierarchy scaling (L1+L2, "
      f"{result.average_gain('l1+l2'):+.0%}) beats baseline caches with "
      f"high-bandwidth DRAM ({result.average_gain('dram'):+.0%}) — the "
      "paper's central claim.")
    w("")
    w("Our L2+DRAM overshoots the paper's +76% because the reduced-scale "
      "substrate leaves more headroom above the combined scaling than the "
      "GTX480 testbed did; the qualitative ranking "
      "(combinations > L2 > DRAM > L1) matches.")
    w("")
    w("Per-benchmark speedups:")
    w("")
    w("```")
    w(result.to_table())
    w("```")
    w("")

    # ------------------------------------------------------------------
    w("## Extensions beyond the paper")
    w("")
    w("### Bottleneck classification (`repro diagnose`)")
    w("")
    w("```")
    w(render_diagnoses(diagnoses))
    w("```")
    w("")
    w("### Cost-effectiveness (the paper's stated future work)")
    w("")
    w("```")
    w(render_cost_effectiveness(points, frontier))
    w("```")
    w("")
    w("### Ablations")
    w("")
    results_dir = __import__("pathlib").Path("benchmarks/results")
    ablation_names = (
        "ablation_dram_sched_queue", "ablation_flit_size",
        "ablation_dram_scheduler", "ablation_icnt_topology",
        "ablation_l2_capacity", "ablation_tlp_throttling",
        "ablation_l1_write_policy", "ablation_dram_refresh",
        "ablation_warp_scheduler",
    )
    available = [
        results_dir / f"{name}.txt" for name in ablation_names
        if (results_dir / f"{name}.txt").exists()
    ]
    if available:
        w("Regenerated at benchmark scale 0.5 by "
          "`benchmarks/test_ablation_*.py` (all outputs in "
          "`benchmarks/results/`):")
        w("")
        w("```")
        w("\n\n".join(path.read_text().strip() for path in available))
        w("```")
        curves = results_dir / "ext_scaling_curves.txt"
        if curves.exists():
            w("")
            w("### Scaling-coefficient curves")
            w("")
            w("```")
            w(curves.read_text().strip())
            w("```")
    else:
        w("Run `pytest benchmarks/ --benchmark-only` first to regenerate "
          "the ablation tables into `benchmarks/results/`.")
    w("")
    w(f"_Generated in {time.time() - t0:.0f}s by "  # noqa: REP001 - host wall timing, not simulated time
      "`python scripts/generate_experiments_md.py`._")

    with open(OUT, "w") as f:
        f.write("\n".join(lines) + "\n")
    print(f"wrote {OUT} ({time.time() - t0:.0f}s)")  # noqa: REP001 - host wall timing, not simulated time


if __name__ == "__main__":
    main()
