#!/usr/bin/env python
"""Run the repo's lint passes (see repro.analysis.lint / .static for rules).

Usage::

    python scripts/lint.py src/ tests/ scripts/   # classic REP001-005
    python scripts/lint.py --static src/          # whole-program verifier
    python scripts/lint.py --static src/ --format sarif --output out.sarif

Exits 0 when clean (baselined findings excluded), 1 when violations were
found.
"""
import argparse
import sys
from pathlib import Path

# Make the in-tree package importable without an install.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument("--static", action="store_true")
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text")
    parser.add_argument("--output", default=None)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--no-baseline", action="store_true")
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)

    if args.static or args.update_baseline:
        from repro.analysis.static import run_static

        return run_static(
            args.paths,
            fmt=args.format,
            output=args.output,
            baseline_path=args.baseline,
            update_baseline=args.update_baseline,
            no_baseline=args.no_baseline,
        )
    from repro.analysis.lint import run_lint

    return run_lint(args.paths)


if __name__ == "__main__":
    sys.exit(main())
