#!/usr/bin/env python
"""Run the repo's custom lint pass (see repro.analysis.lint for the rules).

Usage::

    python scripts/lint.py src/            # what CI runs
    python scripts/lint.py src/repro/cache # any file or directory set

Exits 0 when clean, 1 when violations were found.
"""
import sys
from pathlib import Path

# Make the in-tree package importable without an install.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.lint import run_lint  # noqa: E402

if __name__ == "__main__":
    sys.exit(run_lint(sys.argv[1:]))
