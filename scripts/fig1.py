"""Dev helper: Figure 1 curves for the suite."""
import sys, time
from repro import small_gpu, profile_latency_tolerance, PAPER_SUITE
from repro.core.report import render_figure1

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
lats = [int(x) for x in sys.argv[2:]] or list(range(0, 801, 100))
t = time.time()  # noqa: REP001 - host wall timing, not simulated time
profiles = []
for name in PAPER_SUITE:
    p = profile_latency_tolerance(name, small_gpu(), latencies=lats,
                                  iteration_scale=scale)
    profiles.append(p)
    print(f"{name:<10} base_ipc {p.baseline_ipc:5.2f} mlat {p.baseline_avg_miss_latency:5.0f} "
          f"peak {p.peak_normalized_ipc:4.1f} plateau {p.plateau_latency():>4} "
          f"intercept {p.intercept_latency() if p.intercept_latency() is not None else '>800'}")
print(render_figure1(profiles))
print("wall", round(time.time()-t,1))  # noqa: REP001 - host wall timing, not simulated time
