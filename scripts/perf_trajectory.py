#!/usr/bin/env python
"""Maintain and enforce the committed simulator-perf trajectory.

``BENCH_perf.json`` at the repo root records the simulator's own
throughput (sim kcycles per wall second, from
``benchmarks/test_simulator_performance.py``) as a per-PR append-only
series, so the cost of the harness is reviewed like any other diff
instead of vanishing into CI artifacts.

Two modes, both reading a fresh pytest-benchmark JSON run::

    # after `pytest benchmarks/test_simulator_performance.py
    #        --benchmark-json=perf_run.json`:
    python scripts/perf_trajectory.py append --run perf_run.json
    python scripts/perf_trajectory.py check  --run perf_run.json

``append`` adds one entry (commit, date, rate per benchmark) to the
trajectory; run it on the machine that defines your reference numbers
and commit the result.  ``check`` compares the fresh run against the
most recent entry and fails when any benchmark drops below
``--tolerance`` (default 0.25) of its recorded rate — deliberately loose,
because CI runners are slower and noisier than the reference machine;
the floor exists to catch order-of-magnitude hot-path regressions, not
jitter.  ``check --regress-pct [PCT]`` adds a stricter gate against the
*best* rate in any recorded entry (default 20%), so gradual decay across
entries cannot hide behind the latest-entry tolerance.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import NoReturn

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The committed trajectory file (append-only entries, newest last).
TRAJECTORY = REPO_ROOT / "BENCH_perf.json"

#: Bumped when the trajectory layout changes.
TRAJECTORY_SCHEMA = 1

#: check fails when rate < tolerance * recorded rate.
DEFAULT_TOLERANCE = 0.25


def _fail(message: str) -> NoReturn:
    print(f"perf_trajectory: {message}", file=sys.stderr)
    sys.exit(2)


def read_rates(run_path: Path) -> dict[str, float]:
    """Extract ``sim_kcycles_per_s`` per benchmark from a pytest-benchmark run."""
    data = json.loads(run_path.read_text(encoding="utf-8"))
    rates: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        rate = bench.get("extra_info", {}).get("sim_kcycles_per_s")
        if rate is not None:
            rates[bench["name"]] = float(rate)
    if not rates:
        _fail(f"no sim_kcycles_per_s rates found in {run_path}")
    return rates


def load_trajectory() -> dict:
    if not TRAJECTORY.is_file():
        return {
            "schema": TRAJECTORY_SCHEMA,
            "unit": "sim_kcycles_per_s",
            "entries": [],
        }
    data = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
    if data.get("schema") != TRAJECTORY_SCHEMA:
        _fail(
            f"{TRAJECTORY.name} has schema {data.get('schema')!r}, "
            f"this tool expects {TRAJECTORY_SCHEMA}"
        )
    return data


def git_head() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


def git_date() -> str:
    try:
        proc = subprocess.run(
            ["git", "show", "-s", "--format=%cs", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return proc.stdout.strip() or "unknown"


def cmd_append(args: argparse.Namespace) -> int:
    rates = read_rates(Path(args.run))
    trajectory = load_trajectory()
    entry = {
        "commit": args.commit or git_head(),
        "date": args.date or git_date(),
        "rates": dict(sorted(rates.items())),
    }
    trajectory["entries"].append(entry)
    TRAJECTORY.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
    print(f"appended entry {entry['commit']} ({entry['date']}):")
    for name, rate in entry["rates"].items():
        print(f"  {name}: {rate} kcycles/s")
    print(f"wrote {TRAJECTORY}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    rates = read_rates(Path(args.run))
    trajectory = load_trajectory()
    if not trajectory["entries"]:
        print(
            "perf_trajectory: no recorded entries yet; run append first",
            file=sys.stderr,
        )
        return 0
    latest = trajectory["entries"][-1]
    recorded = latest["rates"]
    print(
        f"comparing against entry {latest['commit']} ({latest['date']}), "
        f"tolerance {args.tolerance}"
    )
    failures = []
    for name in sorted(recorded):
        reference = recorded[name]
        floor = args.tolerance * reference
        current = rates.get(name)
        if current is None:
            failures.append(f"{name}: missing from this run")
            continue
        verdict = "ok" if current >= floor else "REGRESSION"
        print(
            f"  {name}: {current} vs recorded {reference} "
            f"(floor {floor:.1f}) {verdict}"
        )
        if current < floor:
            failures.append(
                f"{name}: {current} kcycles/s is below {floor:.1f} "
                f"({args.tolerance} x recorded {reference})"
            )
    for name in sorted(set(rates) - set(recorded)):
        print(f"  {name}: {rates[name]} (new benchmark, no recorded floor)")
    if args.regress_pct is not None:
        # Stricter gate against the *best* rate ever recorded, so a slow
        # creep across several entries cannot hide behind the loose
        # latest-entry tolerance.
        best: dict[str, tuple[float, str]] = {}
        for entry in trajectory["entries"]:
            for name, rate in entry["rates"].items():
                if rate > best.get(name, (0.0, ""))[0]:
                    best[name] = (float(rate), entry["commit"])
        factor = 1.0 - args.regress_pct / 100.0
        print(f"best-entry gate: within {args.regress_pct}% of the best rate")
        for name in sorted(best):
            reference, commit = best[name]
            floor = factor * reference
            current = rates.get(name)
            if current is None:
                continue  # already reported missing above
            verdict = "ok" if current >= floor else "REGRESSION"
            print(
                f"  {name}: {current} vs best {reference} "
                f"(entry {commit}, floor {floor:.1f}) {verdict}"
            )
            if current < floor:
                failures.append(
                    f"{name}: {current} kcycles/s is more than "
                    f"{args.regress_pct}% below the best recorded rate "
                    f"{reference} (entry {commit})"
                )
    if failures:
        print("perf_trajectory: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf_trajectory: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode", required=True)
    append = sub.add_parser(
        "append", help="record a fresh run as the newest trajectory entry")
    append.add_argument(
        "--run", required=True, metavar="JSON",
        help="pytest-benchmark JSON output to record")
    append.add_argument(
        "--commit", default=None, help="commit id (default: git HEAD)")
    append.add_argument(
        "--date", default=None, help="entry date (default: git HEAD date)")
    append.set_defaults(func=cmd_append)
    check = sub.add_parser(
        "check", help="fail when a fresh run regresses past the floor")
    check.add_argument(
        "--run", required=True, metavar="JSON",
        help="pytest-benchmark JSON output to compare")
    check.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="minimum acceptable fraction of the recorded rate "
             f"(default: {DEFAULT_TOLERANCE})")
    check.add_argument(
        "--regress-pct", type=float, default=None, nargs="?", const=20.0,
        metavar="PCT",
        help="also fail when a rate drops more than PCT%% below the best "
             "rate in any recorded entry (default when given: 20)")
    check.set_defaults(func=cmd_check)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
