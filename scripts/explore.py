"""Dev helper: run the Section IV matrix and print speedups."""
import sys, time
from repro import small_gpu, explore_design_space, analyze_synergy
from repro.core.report import render_section_iv

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
t = time.time()  # noqa: REP001 - host wall timing, not simulated time
result = explore_design_space(small_gpu(), iteration_scale=scale)
print(render_section_iv(result, analyze_synergy(result)))
print("degraded by l1-alone:", result.degraded_benchmarks("l1"))
print("wall", round(time.time() - t, 1))  # noqa: REP001 - host wall timing, not simulated time
