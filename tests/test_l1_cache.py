"""L1D cache behaviour tests."""

import dataclasses

import pytest

from repro.cache.l1 import AccessResult, L1DCache
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import GPUConfig, L1Config, tiny_gpu


def make_l1(magic=False, magic_latency=0, **l1_kwargs):
    cfg = tiny_gpu()
    if l1_kwargs:
        cfg = dataclasses.replace(cfg, l1=L1Config(**l1_kwargs))
    if magic:
        cfg = cfg.with_magic_memory(magic_latency)
    return L1DCache("l1", cfg, sm_id=0)


def load(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=0)


def store(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.STORE, line=line, sm_id=0, warp_id=0)


class TestLoads:
    def test_cold_miss_enters_miss_queue(self):
        l1 = make_l1()
        assert l1.try_access(load(0, 0x100), 0) is AccessResult.QUEUED
        assert len(l1.miss_queue) == 1
        assert l1.misses_issued == 1

    def test_second_load_merges(self):
        l1 = make_l1()
        l1.try_access(load(0, 0x100), 0)
        assert l1.try_access(load(1, 0x100), 1) is AccessResult.QUEUED
        assert len(l1.miss_queue) == 1  # merged, no duplicate traffic
        assert l1.mshr.merges == 1

    def test_fill_completes_all_merged_and_hits_after(self):
        l1 = make_l1()
        first = load(0, 0x100)
        l1.try_access(first, 0)
        l1.try_access(load(1, 0x100), 1)
        l1.miss_queue.pop(2)  # crossbar drains
        first.is_response = True
        l1.deliver_fill(first, 10)
        horizon = 10 + 60
        done = []
        for cycle in range(11, horizon):
            done.extend(l1.collect_completions(cycle))
            if len(done) == 2:
                break
        assert sorted(r.rid for r in done) == [0, 1]
        assert l1.try_access(load(2, 0x100), horizon) is AccessResult.HIT

    def test_hit_latency_applied(self):
        l1 = make_l1()
        first = load(0, 0x100)
        l1.try_access(first, 0)
        l1.miss_queue.pop(0)
        first.is_response = True
        l1.deliver_fill(first, 0)
        # wait for install
        for cycle in range(0, 100):
            if l1.collect_completions(cycle):
                break
        hit = load(1, 0x100)
        assert l1.try_access(hit, 200) is AccessResult.HIT
        lat = l1._config.l1.hit_latency
        assert l1.collect_completions(200 + lat - 1) == []
        assert l1.collect_completions(200 + lat) == [hit]

    def test_mshr_exhaustion_stalls(self):
        l1 = make_l1()
        cap = l1.mshr.capacity
        # Miss queue is smaller than MSHRs; drain it as we go.
        for i in range(cap):
            result = l1.try_access(load(i, 0x1000 + i), i)
            assert result is AccessResult.QUEUED
            if not l1.miss_queue.empty:
                l1.miss_queue.pop(i)
        result = l1.try_access(load(99, 0x9999), 100)
        assert result is AccessResult.STALL_MSHR_FULL
        assert l1.stall_counts[AccessResult.STALL_MSHR_FULL] == 1

    def test_miss_queue_full_stalls(self):
        l1 = make_l1()
        depth = l1.miss_queue.capacity
        for i in range(depth):
            assert l1.try_access(load(i, 0x2000 + i), 0) is AccessResult.QUEUED
        assert (
            l1.try_access(load(99, 0x5000), 1)
            is AccessResult.STALL_MISSQ_FULL
        )

    def test_merge_slots_exhaustion_stalls(self):
        l1 = make_l1(magic=True, magic_latency=10_000)
        merge_cap = l1.mshr.max_merge
        for i in range(merge_cap):
            assert l1.try_access(load(i, 0x100), i).is_stall is False
        assert (
            l1.try_access(load(99, 0x100), 50)
            is AccessResult.STALL_MERGE_FULL
        )


class TestStores:
    def test_store_is_write_through(self):
        l1 = make_l1()
        assert l1.try_access(store(0, 0x100), 0) is AccessResult.STORE_SENT
        assert len(l1.miss_queue) == 1
        assert l1.stores_sent == 1

    def test_store_evicts_local_copy(self):
        l1 = make_l1()
        first = load(0, 0x100)
        l1.try_access(first, 0)
        l1.miss_queue.pop(0)
        first.is_response = True
        l1.deliver_fill(first, 0)
        for cycle in range(0, 100):
            if l1.collect_completions(cycle):
                break
        l1.try_access(store(1, 0x100), 200)
        # next load misses again (write-evict)
        assert l1.try_access(load(2, 0x100), 201) is AccessResult.QUEUED

    def test_store_stalls_on_full_miss_queue(self):
        l1 = make_l1()
        for i in range(l1.miss_queue.capacity):
            l1.try_access(store(i, 0x3000 + i), 0)
        assert (
            l1.try_access(store(99, 0x4000), 1)
            is AccessResult.STALL_MISSQ_FULL
        )


class TestMagicMode:
    def test_magic_fills_after_exact_latency(self):
        l1 = make_l1(magic=True, magic_latency=37)
        r = load(0, 0x100)
        l1.try_access(r, 0)
        assert l1.miss_queue.empty  # bypasses the memory system
        # The response returns after *exactly* the fixed latency.
        assert l1.collect_completions(36) == []
        assert l1.collect_completions(37) == [r]

    def test_magic_zero_latency(self):
        l1 = make_l1(magic=True, magic_latency=0)
        r = load(0, 0x100)
        l1.try_access(r, 0)
        assert l1.collect_completions(0) == [r]

    def test_magic_stores_vanish(self):
        l1 = make_l1(magic=True)
        assert l1.try_access(store(0, 0x1), 0) is AccessResult.STORE_SENT
        assert l1.miss_queue.empty


class TestEpoch:
    def test_resource_epoch_advances_on_events(self):
        l1 = make_l1()
        e0 = l1.resource_epoch()
        r = load(0, 0x100)
        l1.try_access(r, 0)
        assert l1.resource_epoch() == e0  # allocation is not a clearing event
        l1.miss_queue.pop(1)
        assert l1.resource_epoch() == e0 + 1  # miss-queue slot freed
        r.is_response = True
        l1.deliver_fill(r, 2)
        for cycle in range(2, 100):
            if l1.collect_completions(cycle):
                break
        assert l1.resource_epoch() == e0 + 3  # + fill + MSHR release

    def test_miss_latency_accounting(self):
        l1 = make_l1()
        r = load(0, 0x100)
        l1.try_access(r, 5)
        l1.miss_queue.pop(6)
        r.is_response = True
        l1.deliver_fill(r, 105)
        # Fill lands after fill latency plus the response network latency.
        delay = l1._config.l1.fill_latency + l1._config.icnt.network_latency
        assert l1.collect_completions(105 + delay - 1) == []
        assert l1.collect_completions(105 + delay) == [r]
        assert l1.miss_latency.mean == pytest.approx(100 + delay)
