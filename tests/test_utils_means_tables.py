"""Unit tests for means, table rendering and ASCII plots."""

import pytest

from repro.utils.ascii_plot import line_plot
from repro.utils.means import arithmetic_mean, geometric_mean, harmonic_mean
from repro.utils.tables import render_table


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        for fn in (arithmetic_mean, geometric_mean, harmonic_mean):
            with pytest.raises(ValueError):
                fn([])

    def test_nonpositive_raises_for_geo_and_harmonic(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -1.0])

    def test_geometric_le_arithmetic(self):
        values = [0.5, 1.7, 2.3, 9.1]
        assert geometric_mean(values) <= arithmetic_mean(values)

    def test_harmonic_le_geometric(self):
        values = [0.5, 1.7, 2.3, 9.1]
        assert harmonic_mean(values) <= geometric_mean(values)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "a" in out and "bb" in out
        assert "2.500" in out  # float formatting
        assert "x" in out

    def test_title(self):
        out = render_table(["c"], [[1]], title="My Title")
        assert out.startswith("My Title")

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_bad_align_raises(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1]], align="x")

    def test_alignment_left_and_right(self):
        out = render_table(["col"], [["a"], ["bbb"]], align="l")
        lines = [l for l in out.splitlines() if "| a" in l]
        assert lines, "left-aligned cell should hug the left edge"


class TestLinePlot:
    def test_basic_plot_dimensions(self):
        out = line_plot({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        body = [l for l in out.splitlines() if l.startswith("|")]
        assert len(body) == 5
        assert all(len(l) <= 21 for l in body)

    def test_legend_lists_all_series(self):
        out = line_plot({"alpha": [(0, 1)], "beta": [(1, 2)]})
        assert "alpha" in out and "beta" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": []})

    def test_flat_series_does_not_crash(self):
        out = line_plot({"s": [(0, 1.0), (10, 1.0)]})
        assert "1.00" in out


class TestLinePlotManySeries:
    def test_marker_reuse_beyond_alphabet(self):
        series = {f"s{i}": [(0, i), (1, i + 1)] for i in range(25)}
        out = line_plot(series)
        # All series named in the legend even when markers wrap around.
        assert all(f"s{i}" in out for i in range(25))
