"""Property-based end-to-end tests.

Hypothesis generates small synthetic kernels across the pattern space and
checks global simulator invariants on the tiny configuration:

* every run terminates and drains (no deadlock for any workload shape);
* instruction counts are conserved (issued == program lengths);
* every memory structure is empty at the end (no leaked requests);
* statistics stay within their domains;
* IPC never exceeds the architectural issue ceiling.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gpu import GPU
from repro.sim.config import tiny_gpu
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel

spec_strategy = st.builds(
    SyntheticKernelSpec,
    name=st.just("prop"),
    pattern=st.sampled_from(
        ["stream", "shared_stream", "random", "hot_cold", "tile_reuse",
         "wavefront"]),
    iterations=st.integers(1, 6),
    compute_per_iter=st.integers(0, 8),
    loads_per_iter=st.integers(1, 3),
    txns_per_load=st.integers(1, 4),
    txn_spread=st.integers(1, 3),
    stores_per_iter=st.integers(0, 2),
    working_set_lines=st.integers(16, 2048),
    hot_lines=st.integers(8, 256),
    p_hot=st.floats(0.0, 1.0),
    tile_lines=st.integers(1, 8),
    reuse_per_line=st.integers(1, 4),
    membar_every=st.integers(0, 2),
    mlp_limit=st.integers(1, 6),
)


def expected_instructions(spec, n_sms, warps_per_sm):
    kernel = build_kernel(spec)
    total = 0
    for sm in range(n_sms):
        for warp in range(warps_per_sm):
            for instr in kernel.instantiate(sm, warp, seed=1):
                total += instr[1] if instr[0] == "compute" else 1
    return total


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=spec_strategy, magic=st.booleans())
def test_simulator_invariants(spec, magic):
    config = tiny_gpu()
    if magic:
        config = config.with_magic_memory(75)
    gpu = GPU(config, build_kernel(spec), seed=1)
    gpu.run(max_cycles=400_000)  # terminates (deadlock guard)

    # Conservation: every program instruction issued exactly once.
    assert gpu.instructions == expected_instructions(
        spec, config.core.n_sms, config.core.warps_per_sm)

    # IPC within the architectural ceiling.
    peak = config.core.n_sms * config.core.issue_width
    assert 0 < gpu.ipc <= peak + 1e-9

    # Drained: no request left anywhere.
    for sm in gpu.sms:
        assert sm.is_idle()
        assert len(sm.l1.mshr) == 0
        assert sm.l1.miss_queue.empty
    for l2 in gpu.l2_slices:
        assert l2.is_idle()
    for dram in gpu.dram_channels:
        assert dram.is_idle()
    if gpu.request_xbar is not None:
        assert gpu.request_xbar.is_idle()
        assert gpu.response_xbar.is_idle()

    # Statistics domains.
    for sm in gpu.sms:
        assert 0.0 <= sm.l1.tags.hit_rate <= 1.0
        assert sm.l1.miss_queue.full_fraction() <= 1.0
    for l2 in gpu.l2_slices:
        assert 0.0 <= l2.tags.hit_rate <= 1.0
        for queue in (l2.access_queue, l2.miss_queue, l2.response_queue):
            assert 0.0 <= queue.full_fraction() <= 1.0
    for dram in gpu.dram_channels:
        assert 0.0 <= dram.row_hit_rate <= 1.0
        assert dram.sched_queue.full_fraction() <= 1.0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=spec_strategy)
def test_request_conservation_through_memory_system(spec):
    """DRAM reads + L2 hits account for every line that left the L1s."""
    config = tiny_gpu()
    gpu = GPU(config, build_kernel(spec), seed=2)
    gpu.run(max_cycles=400_000)

    l1_misses = sum(sm.l1.misses_issued for sm in gpu.sms)
    l1_stores = sum(sm.l1.stores_sent for sm in gpu.sms)
    l2_lookups = sum(l2.tags.lookups.denominator for l2 in gpu.l2_slices)
    # Every L1 miss and store reaches exactly one L2 lookup.
    assert l2_lookups == l1_misses + l1_stores

    l2_mshr_allocs = sum(l2.fills for l2 in gpu.l2_slices)
    dram_reads = sum(d.reads for d in gpu.dram_channels)
    # Every L2 fill came from exactly one DRAM read (loads + store fetches).
    assert l2_mshr_allocs == dram_reads

    # Writebacks at L2 equal DRAM write completions.
    writebacks = sum(l2.writebacks for l2 in gpu.l2_slices)
    dram_writes = sum(d.writes for d in gpu.dram_channels)
    assert writebacks == dram_writes
