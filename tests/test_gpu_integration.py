"""End-to-end GPU integration tests on the tiny configuration."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPU
from repro.core.metrics import collect_metrics, run_kernel
from repro.sim.config import tiny_gpu
from repro.workloads.program import KernelProgram
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel


def kernel(**kw):
    args = dict(name="t", pattern="stream", iterations=6, compute_per_iter=2,
                loads_per_iter=2, mlp_limit=4)
    args.update(kw)
    return build_kernel(SyntheticKernelSpec(**args))


class TestExecution:
    def test_runs_to_completion(self):
        gpu = GPU(tiny_gpu(), kernel())
        cycles = gpu.run(max_cycles=200_000)
        assert 0 < cycles <= gpu.cycles
        assert gpu.done()
        assert gpu.instructions > 0

    def test_all_transactions_conserved(self):
        """Every issued L1 miss is eventually filled; nothing leaks."""
        gpu = GPU(tiny_gpu(), kernel(stores_per_iter=1))
        gpu.run(max_cycles=200_000)
        for sm in gpu.sms:
            assert sm.l1.is_idle()
            assert len(sm.l1.mshr) == 0
        for l2 in gpu.l2_slices:
            assert l2.is_idle()
        for dram in gpu.dram_channels:
            assert dram.is_idle()

    def test_deterministic_across_runs(self):
        a = GPU(tiny_gpu(), kernel(pattern="random"), seed=3)
        a.run(max_cycles=200_000)
        b = GPU(tiny_gpu(), kernel(pattern="random"), seed=3)
        b.run(max_cycles=200_000)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_different_seed_changes_random_runs(self):
        a = GPU(tiny_gpu(), kernel(pattern="random", working_set_lines=512), seed=3)
        a.run(max_cycles=200_000)
        b = GPU(tiny_gpu(), kernel(pattern="random", working_set_lines=512), seed=4)
        b.run(max_cycles=200_000)
        # Same totals of work...
        assert a.instructions == b.instructions
        # ...but different dynamic behaviour (with very high probability).
        assert a.cycles != b.cycles

    def test_too_many_warps_rejected(self):
        with pytest.raises(ConfigError):
            GPU(tiny_gpu(), kernel(warps_per_sm=65))

    def test_kernel_scheduler_override(self):
        gpu = GPU(tiny_gpu(), kernel(scheduler="gto"))
        assert gpu.config.core.scheduler == "gto"
        assert gpu.sms[0].scheduler.name == "gto"


class TestMagicMode:
    def test_magic_gpu_has_no_memory_system(self):
        gpu = GPU(tiny_gpu().with_magic_memory(50), kernel())
        assert not gpu.l2_slices
        assert gpu.request_xbar is None
        gpu.run(max_cycles=100_000)
        assert gpu.done()

    def test_ipc_monotone_in_magic_latency(self):
        k = kernel(iterations=10, mlp_limit=2)
        ipcs = []
        for latency in (0, 100, 400):
            m = run_kernel(tiny_gpu().with_magic_memory(latency), k)
            ipcs.append(m.ipc)
        assert ipcs[0] > ipcs[1] > ipcs[2]

    def test_magic_zero_beats_real_memory(self):
        k = kernel(iterations=10)
        real = run_kernel(tiny_gpu(), k)
        magic = run_kernel(tiny_gpu().with_magic_memory(0), k)
        assert magic.ipc > real.ipc


class TestMetrics:
    def test_metrics_fields_populated(self):
        m = run_kernel(tiny_gpu(), kernel(stores_per_iter=1))
        assert m.cycles > 0
        assert m.ipc == pytest.approx(m.instructions / m.cycles)
        assert 0.0 <= m.l1_hit_rate <= 1.0
        assert 0.0 <= m.l2_hit_rate <= 1.0
        assert m.l1_avg_miss_latency > 0
        assert m.dram_reads > 0
        assert m.dram_writes >= 0
        assert 0.0 <= m.l2_accessq.full_fraction <= 1.0
        assert 0.0 <= m.dram_schedq.full_fraction <= 1.0

    def test_magic_metrics_zero_memory_system(self):
        m = run_kernel(tiny_gpu().with_magic_memory(10), kernel())
        assert m.l2_hit_rate == 0.0
        assert m.dram_reads == 0
        assert m.req_xbar_utilization == 0.0

    def test_speedup_over(self):
        k = kernel(iterations=10)
        base = run_kernel(tiny_gpu(), k)
        fast = run_kernel(tiny_gpu().with_magic_memory(0), k)
        assert fast.speedup_over(base) == pytest.approx(fast.ipc / base.ipc)

    def test_collect_metrics_requires_finished_gpu(self):
        gpu = GPU(tiny_gpu(), kernel())
        gpu.run(max_cycles=200_000)
        m = collect_metrics(gpu)
        assert m.benchmark == "t"


class TestLatencySanity:
    def test_unloaded_l2_round_trip_near_120(self):
        """A single warp issuing one L2-hitting load at a time sees roughly
        the paper's ideal ~120-cycle L2 latency (small_gpu timing)."""
        from repro.sim.config import small_gpu

        spec = SyntheticKernelSpec(
            name="probe", pattern="shared_stream", iterations=40,
            compute_per_iter=1, loads_per_iter=1, working_set_lines=8,
            mlp_limit=1, warps_per_sm=1)
        cfg = small_gpu()
        m = run_kernel(cfg, build_kernel(spec))
        # Cold DRAM misses are mixed in, so allow a band around the ~120
        # unloaded L2 round trip.
        assert 100 <= m.l1_avg_miss_latency <= 200

    def test_unloaded_dram_round_trip_near_220(self):
        from repro.sim.config import small_gpu

        spec = SyntheticKernelSpec(
            name="probe", pattern="stream", iterations=40,
            compute_per_iter=1, loads_per_iter=1, mlp_limit=1, warps_per_sm=1)
        cfg = small_gpu()
        m = run_kernel(cfg, build_kernel(spec))
        # Streaming single loads mostly row-hit: between the ideal L2 round
        # trip (~120) and the row-miss DRAM round trip (~250).
        assert 150 <= m.l1_avg_miss_latency <= 280


class TestKernelOverrides:
    def test_warps_per_sm_override(self):
        spec = SyntheticKernelSpec(
            name="few", pattern="stream", iterations=3, compute_per_iter=1,
            loads_per_iter=1, warps_per_sm=2)
        gpu = GPU(tiny_gpu(), build_kernel(spec))
        assert all(len(sm.warps) == 2 for sm in gpu.sms)
        gpu.run(max_cycles=100_000)
        assert gpu.done()
