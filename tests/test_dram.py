"""DRAM channel tests: bank timing, FR-FCFS, bus serialization, queues."""

import dataclasses

import pytest

from repro.cache.l2 import L2Slice
from repro.dram.bankstate import BankFile, BankState
from repro.dram.controller import DRAMChannel
from repro.dram.scheduler import ACTIVATE, CAS, make_scheduler
from repro.errors import ConfigError
from repro.mem.address import AddressMapper
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import DRAMConfig, GPUConfig, tiny_gpu


def make_channel(**dram_kwargs):
    cfg = tiny_gpu()
    if dram_kwargs:
        cfg = dataclasses.replace(
            cfg, dram=dataclasses.replace(cfg.dram, **dram_kwargs)
        )
    mapper = AddressMapper(cfg)
    channel = DRAMChannel("d", cfg, mapper, partition_id=0)
    l2 = L2Slice("l2", cfg, mapper, partition_id=0)
    l2.dram = channel
    channel.l2 = l2
    return channel, l2, mapper, cfg


def read(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=0)


def writeback(rid, line):
    return MemoryRequest(
        rid=rid, kind=AccessKind.WRITEBACK, line=line, sm_id=-1, warp_id=-1
    )


def run_until_returns(channel, n, limit=5000):
    """Step the channel until n responses appear in the return queue."""
    for cycle in range(limit):
        channel.step(cycle)
        if len(channel.return_queue) >= n:
            return cycle
    raise AssertionError(f"only {len(channel.return_queue)} returns in {limit} cycles")  # noqa: REP003 - test-helper failure, not simulator code


class TestBankState:
    def test_access_latency_cases(self):
        timing = DRAMConfig()
        bank = BankState(0)
        assert bank.access_latency(5, timing) == timing.t_rcd + timing.t_cas
        bank.open_row = 5
        assert bank.access_latency(5, timing) == timing.t_cas
        assert (
            bank.access_latency(6, timing)
            == timing.t_rp + timing.t_rcd + timing.t_cas
        )

    def test_row_stats(self):
        bank = BankState(0)
        bank.record_access(1)
        bank.open_row = 1
        bank.record_access(1)
        bank.record_access(2)
        assert bank.row_closed == 1
        assert bank.row_hits == 1
        assert bank.row_conflicts == 1
        assert bank.row_hit_rate == pytest.approx(1 / 3)


class TestServiceFlow:
    def test_read_returns_after_activate_cas_transfer(self):
        channel, l2, mapper, cfg = make_channel()
        l2.miss_queue.push(read(0, 0), 0)
        done = run_until_returns(channel, 1)
        timing = cfg.dram
        minimum = timing.t_rcd + timing.t_cas + cfg.dram_transfer_cycles
        assert done >= minimum - 1
        assert channel.reads == 1

    def test_row_hits_counted_for_same_row_stream(self):
        channel, l2, mapper, cfg = make_channel()
        # Consecutive local lines in one partition share a row initially.
        for i in range(4):
            l2.miss_queue.push(read(i, i * cfg.n_partitions), 0)
        run_until_returns(channel, 4)
        hits = sum(b.row_hits for b in channel.banks)
        assert hits == 3  # first opens the row, rest hit

    def test_writeback_completes_without_return(self):
        channel, l2, mapper, cfg = make_channel()
        l2.miss_queue.push(writeback(0, 0), 0)
        for cycle in range(600):
            channel.step(cycle)
            if channel.writes:
                break
        assert channel.writes == 1
        assert channel.return_queue.empty

    def test_store_fetch_returns_like_read(self):
        """Write-allocate STORE fetches must come back (deadlock guard)."""
        channel, l2, mapper, cfg = make_channel()
        store = MemoryRequest(
            rid=0, kind=AccessKind.STORE, line=0, sm_id=0, warp_id=0
        )
        l2.miss_queue.push(store, 0)
        run_until_returns(channel, 1)
        assert channel.return_queue.peek().kind is AccessKind.STORE

    def test_bus_serializes_transfers(self):
        channel, l2, mapper, cfg = make_channel()
        n = 6
        # Same row -> row hits -> bus-limited spacing.  Feed respecting the
        # miss queue's capacity.
        pending = [read(i, i * cfg.n_partitions) for i in range(n)]
        done = None
        for cycle in range(5000):
            while pending and l2.miss_queue.can_push():
                l2.miss_queue.push(pending.pop(0), cycle)
            channel.step(cycle)
            if len(channel.return_queue) >= n:
                done = cycle
                break
        assert done is not None
        # n transfers cannot finish faster than n * transfer_cycles.
        assert done >= n * cfg.dram_transfer_cycles

    def test_sched_queue_admits_one_per_cycle(self):
        channel, l2, mapper, cfg = make_channel()
        for i in range(4):
            l2.miss_queue.push(read(i, i), 0)
        channel.step(0)
        assert len(channel.sched_queue) == 1
        channel.step(1)
        assert len(channel.sched_queue) + channel.reads >= 2


class TestSchedulers:
    def _queue_with(self, mapper, reqs):
        """Build a scheduler queue with the coordinates the controller
        caches on each request at admission."""
        from repro.mem.queue import StatQueue

        q = StatQueue("q", 32)
        for r in reqs:
            r.dram_bank = mapper.dram_bank(r.line)
            r.dram_row = mapper.dram_row(r.line)
            q.push(r, 0)
        return q

    def test_frfcfs_prefers_row_hit_over_older_conflict(self):
        cfg = tiny_gpu()
        mapper = AddressMapper(cfg)
        sched = make_scheduler("frfcfs")
        banks = BankFile(cfg.dram.banks)
        old = read(0, 0)
        young = read(1, 0 + cfg.n_partitions)  # same bank/row region
        row = mapper.dram_row(young.line)
        banks.open_row[mapper.dram_bank(young.line)] = row
        queue = self._queue_with(mapper, [old, young])
        # "old" also maps to the same row here, so pick oldest hit = old.
        choice = sched.select(
            queue, banks.busy_until, banks.open_row, 0, lambda r: True
        )
        assert choice == (CAS, old)

    def test_frfcfs_activates_for_oldest_when_no_hits(self):
        cfg = tiny_gpu()
        mapper = AddressMapper(cfg)
        sched = make_scheduler("frfcfs")
        banks = BankFile(cfg.dram.banks)
        a = read(0, 0)
        queue = self._queue_with(mapper, [a])
        choice = sched.select(
            queue, banks.busy_until, banks.open_row, 0, lambda r: True
        )
        assert choice == (ACTIVATE, a)

    def test_frfcfs_does_not_close_row_with_pending_hits(self):
        cfg = tiny_gpu()
        mapper = AddressMapper(cfg)
        sched = make_scheduler("frfcfs")
        banks = BankFile(cfg.dram.banks)
        hit = read(0, 0)
        bank_idx = mapper.dram_bank(hit.line)
        banks.open_row[bank_idx] = mapper.dram_row(hit.line)
        row_lines = cfg.dram.row_bytes // cfg.line_bytes
        # Request to a different row of the SAME bank.
        conflict_local = mapper.local_line(hit.line) + row_lines * cfg.dram.banks
        conflict = read(1, conflict_local * cfg.n_partitions)
        assert mapper.dram_bank(conflict.line) == bank_idx
        queue = self._queue_with(mapper, [conflict, hit])
        # The hit is bus-gated (cas_ok False); activate must NOT fire on its bank.
        choice = sched.select(
            queue, banks.busy_until, banks.open_row, 0, lambda r: False
        )
        assert choice is None

    def test_fcfs_serves_strictly_in_order(self):
        cfg = tiny_gpu()
        mapper = AddressMapper(cfg)
        sched = make_scheduler("fcfs")
        banks = BankFile(cfg.dram.banks)
        a, b = read(0, 0), read(1, cfg.n_partitions)
        banks.open_row[mapper.dram_bank(b.line)] = mapper.dram_row(b.line)
        queue = self._queue_with(mapper, [a, b])
        # b is a ready row hit but FCFS must handle a first (activate).
        choice = sched.select(
            queue, banks.busy_until, banks.open_row, 0, lambda r: True
        )
        # a and b share the open row in this mapping? ensure decision is for a.
        assert choice[1] is a

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigError):
            make_scheduler("mystery")


class TestReturnPathGuard:
    def test_reads_gated_by_return_queue_headroom(self):
        channel, l2, mapper, cfg = make_channel(return_queue_depth=2)
        pending = [read(i, i * cfg.n_partitions) for i in range(8)]
        for cycle in range(2000):
            while pending and l2.miss_queue.can_push():
                l2.miss_queue.push(pending.pop(0), cycle)
            channel.step(cycle)
        # Never more returns than capacity, and no stuck completions.
        assert len(channel.return_queue) <= 2
        # Drain and confirm the rest flow.
        drained = len(channel.return_queue)
        for cycle in range(2000, 6000):
            if not channel.return_queue.empty:
                channel.return_queue.pop(cycle)
                drained += 1
            channel.step(cycle)
            if drained == 8:
                break
        assert drained == 8
