"""Campaign tests: manifest lifecycle, claim protocol, shared-store
concurrency (multi-process put/get and usage-delta hammering), LRU
eviction, kill-resume with zero re-simulation, and the CLI surface.

Multi-process tests rely on the Linux ``fork`` start method: child
processes inherit the parent's (possibly monkeypatched) module state, and
``Process`` targets need not be picklable.
"""

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.export import export_runs
from repro.errors import ConfigError, RunnerError, UsageError
from repro.runner import (
    BatchRunner,
    CampaignManifest,
    CampaignWorker,
    Job,
    ResultCache,
    WorkUnit,
    campaign_results,
    campaign_status,
    render_status,
)
from repro.runner.campaign import (
    default_store,
    read_claims,
    read_ledger,
    release_claim,
    try_claim,
)
from repro.sim.config import config_from_dict, tiny_gpu

#: Cheap jobs: tiny config, heavily scaled down.
SCALE = 0.05


def _job(**overrides):
    defaults = dict(seed=1, iteration_scale=SCALE)
    defaults.update(overrides)
    return Job(tiny_gpu(), "nn", **defaults)


def _fork():
    return multiprocessing.get_context("fork")


class TestConfigFromDict:
    def test_roundtrip(self):
        config = tiny_gpu()
        assert config_from_dict(dataclasses.asdict(config)) == config

    def test_roundtrip_magic_memory(self):
        config = tiny_gpu().with_magic_memory(200)
        assert config_from_dict(dataclasses.asdict(config)) == config

    def test_unknown_top_level_field(self):
        payload = dataclasses.asdict(tiny_gpu())
        payload["warp_drive"] = 9
        with pytest.raises(ConfigError):
            config_from_dict(payload)

    def test_unknown_subconfig_field(self):
        payload = dataclasses.asdict(tiny_gpu())
        payload["l2"]["flux_capacitor"] = 1
        with pytest.raises(ConfigError):
            config_from_dict(payload)

    def test_non_mapping_subconfig(self):
        payload = dataclasses.asdict(tiny_gpu())
        payload["dram"] = "fast please"
        with pytest.raises(ConfigError):
            config_from_dict(payload)


class TestManifest:
    def test_create_load_roundtrip(self, tmp_path):
        jobs = [_job(seed=s) for s in (1, 2)]
        created = CampaignManifest.create(tmp_path / "camp", jobs)
        loaded = CampaignManifest.load(tmp_path / "camp")
        assert loaded.keys() == created.keys() == [j.key() for j in jobs]
        assert loaded.code == created.code
        assert [u.job for u in loaded.units] == jobs

    def test_dedupes_by_key_preserving_order(self, tmp_path):
        jobs = [_job(seed=2), _job(seed=1), _job(seed=2)]
        manifest = CampaignManifest.create(tmp_path / "camp", jobs)
        assert manifest.keys() == [jobs[0].key(), jobs[1].key()]

    def test_refuses_overwrite(self, tmp_path):
        CampaignManifest.create(tmp_path / "camp", [_job()])
        with pytest.raises(UsageError, match="already exists"):
            CampaignManifest.create(tmp_path / "camp", [_job(seed=2)])

    def test_refuses_empty(self, tmp_path):
        with pytest.raises(UsageError):
            CampaignManifest.create(tmp_path / "camp", [])

    def test_load_missing(self, tmp_path):
        with pytest.raises(UsageError, match="no campaign manifest"):
            CampaignManifest.load(tmp_path / "nowhere")

    def test_workunit_payload_roundtrip(self):
        unit = WorkUnit(key=_job().key(), job=_job())
        clone = WorkUnit.from_payload(unit.to_payload())
        assert clone == unit

    def test_malformed_payload(self):
        payload = WorkUnit(key=_job().key(), job=_job()).to_payload()
        del payload["kernel"]
        with pytest.raises(UsageError, match="malformed"):
            WorkUnit.from_payload(payload)
        payload = WorkUnit(key=_job().key(), job=_job()).to_payload()
        payload["key"] = ""
        with pytest.raises(UsageError, match="missing key"):
            WorkUnit.from_payload(payload)

    def test_code_drift_locks_execution(self, tmp_path, monkeypatch):
        CampaignManifest.create(tmp_path / "camp", [_job()])
        monkeypatch.setattr(
            "repro.runner.campaign.code_version", lambda: "deadbeef")
        with pytest.raises(UsageError, match="code changed"):
            CampaignWorker(tmp_path / "camp", worker="w")
        # Status stays readable; it just flags the drift.
        status = campaign_status(tmp_path / "camp")
        assert status.code_drift
        assert "code changed" in render_status(status)


def _race_claim(directory, key, name, wins_path, barrier):
    barrier.wait()
    if try_claim(directory, key, name):
        with open(wins_path, "a") as handle:  # O_APPEND: atomic line
            handle.write(name + "\n")


class TestClaims:
    def test_single_winner_then_release(self, tmp_path):
        assert try_claim(tmp_path, "k1", "a")
        assert not try_claim(tmp_path, "k1", "b")
        assert read_claims(tmp_path)["k1"]["worker"] == "a"
        release_claim(tmp_path, "k1")
        assert try_claim(tmp_path, "k1", "b")
        assert read_claims(tmp_path)["k1"]["worker"] == "b"

    def test_stale_takeover(self, tmp_path):
        assert try_claim(tmp_path, "k1", "dead")
        claim = tmp_path / "claims" / "k1.claim"
        old = time.time() - 3600  # noqa: REP001 - backdating a claim heartbeat under test
        os.utime(claim, (old, old))
        # Not stale yet under a generous timeout: the claim holds.
        assert not try_claim(tmp_path, "k1", "b", stale_after=7200)
        # Stale under a tight timeout: taken over.
        assert try_claim(tmp_path, "k1", "b", stale_after=60)
        assert read_claims(tmp_path)["k1"]["worker"] == "b"

    def test_multiprocess_contention_single_winner(self, tmp_path):
        wins = tmp_path / "wins"
        wins.touch()
        ctx = _fork()
        barrier = ctx.Barrier(8)
        procs = [
            ctx.Process(
                target=_race_claim,
                args=(str(tmp_path), "contended", f"w{i}", str(wins),
                      barrier),
            )
            for i in range(8)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        winners = wins.read_text().splitlines()
        assert len(winners) == 1
        assert read_claims(tmp_path)["contended"]["worker"] == winners[0]


def _hammer_usage(directory, rounds, barrier):
    barrier.wait()
    cache = ResultCache(directory)
    for _ in range(rounds):
        cache.record_usage(hits=1, misses=2)


def _hammer_store(directory, metrics, keys, misses_path, barrier):
    barrier.wait()
    cache = ResultCache(directory)
    misses = 0
    for _ in range(5):
        for key in keys:
            cache.put(key, metrics)
            if cache.get(key) is None:
                misses += 1
    with open(misses_path, "a") as handle:
        handle.write(f"{misses}\n")


class TestSharedStoreConcurrency:
    def test_record_usage_loses_no_counts(self, tmp_path):
        """8 concurrent recorders x 25 batches: totals must be exact."""
        directory = tmp_path / "c"
        ctx = _fork()
        barrier = ctx.Barrier(8)
        procs = [
            ctx.Process(
                target=_hammer_usage, args=(str(directory), 25, barrier))
            for _ in range(8)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        assert ResultCache(directory).usage_stats() == {
            "hits": 200, "misses": 400, "batches": 200,
        }

    def test_concurrent_put_get_never_reads_torn_entries(self, tmp_path):
        directory = tmp_path / "c"
        misses = tmp_path / "misses"
        misses.touch()
        metrics = _job().execute()
        keys = [c * 64 for c in "abcd"]
        ctx = _fork()
        barrier = ctx.Barrier(6)
        procs = [
            ctx.Process(
                target=_hammer_store,
                args=(str(directory), metrics, keys, str(misses), barrier),
            )
            for _ in range(6)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        # Atomic replace: a reader racing writers sees the old entry or
        # the new one, never nothing and never a torn pickle.
        assert misses.read_text().splitlines() == ["0"] * 6
        cache = ResultCache(directory)
        for key in keys:
            assert cache.get(key) == metrics
        assert cache.stats().orphans == 0


class TestStoreBounds:
    def test_orphan_temps_counted_and_swept(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("a" * 64, _job().execute())
        (cache.directory / ("b" * 64 + ".pkl.tmp9999")).write_bytes(b"part")
        entries, size, orphans = cache.stats()
        assert (entries, orphans) == (1, 1) and size > 0
        assert len(cache.orphan_temps()) == 1
        assert cache.clear() == 1  # orphans swept but not counted
        assert cache.stats() == (0, 0, 0)

    def test_lru_eviction_order_and_protection(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        metrics = _job().execute()
        for key in ("a" * 64, "b" * 64, "c" * 64):
            cache.put(key, metrics)
        entry = cache.stats().total_bytes // 3
        now = time.time()  # noqa: REP001 - backdating mtimes to order LRU recency under test
        os.utime(cache._path("a" * 64), (now - 300, now - 300))
        os.utime(cache._path("b" * 64), (now - 200, now - 200))
        # A get() hit refreshes recency: touch the oldest, then the next
        # oldest is the one evicted.
        assert cache.get("a" * 64) == metrics
        evicted = cache.evict(entry * 2)
        assert evicted == ["b" * 64]
        assert cache.contains("a" * 64) and cache.contains("c" * 64)

    def test_put_with_max_bytes_keeps_newest(self, tmp_path):
        # An oversized single entry is stored, not thrashed: the entry
        # just written is never evicted.
        cache = ResultCache(tmp_path / "c", max_bytes=1)
        metrics = _job().execute()
        cache.put("a" * 64, metrics)
        assert cache.contains("a" * 64)
        cache.put("b" * 64, metrics)
        assert cache.contains("b" * 64)
        assert not cache.contains("a" * 64)

    def test_index_follows_the_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        metrics = _job().execute()
        cache.put("a" * 64, metrics)
        cache.put("b" * 64, metrics)
        index = cache.index()
        assert set(index) == {"a" * 64, "b" * 64}
        assert all(meta["bytes"] > 0 for meta in index.values())
        os.unlink(cache._path("a" * 64))
        assert set(cache.index()) == {"b" * 64}


def _run_campaign_worker(directory, name):
    report = CampaignWorker(
        directory, worker=name, jobs=1, poll=0.05).run(wait=True)
    os._exit(0 if report.failed == 0 else 3)


class TestCampaignWorkers:
    def test_single_worker_completes_campaign(self, tmp_path):
        jobs = [_job(seed=s) for s in (1, 2)]
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, jobs)
        report = CampaignWorker(camp, worker="solo", jobs=1, poll=0.01).run()
        assert report.executed == 2 and report.failed == 0
        status = campaign_status(camp)
        assert status.complete and status.done == 2 and status.failed == 0
        assert not status.claims
        assert status.workers["solo"]["finished"] == 2
        assert campaign_results(camp) == [job.execute() for job in jobs]

    def test_two_workers_dedupe_and_match_serial(self, tmp_path):
        jobs = [_job(seed=s) for s in (1, 2, 3)]
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, jobs)
        ctx = _fork()
        procs = [
            ctx.Process(
                target=_run_campaign_worker, args=(str(camp), f"w{i}"))
            for i in (1, 2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
        assert all(proc.exitcode == 0 for proc in procs)
        # Per-key dedupe: every unit finished exactly once.
        done = [r["key"] for r in read_ledger(camp) if r["status"] == "done"]
        assert sorted(done) == sorted(CampaignManifest.load(camp).keys())
        # The export contract: racing workers == serial run, byte for byte.
        serial = [job.execute() for job in jobs]
        assert campaign_results(camp) == serial
        merged = export_runs(campaign_results(camp), tmp_path / "camp.csv")
        reference = export_runs(serial, tmp_path / "serial.csv")
        assert merged.read_bytes() == reference.read_bytes()

    def test_kill_resume_resimulates_nothing(self, tmp_path, monkeypatch):
        jobs = [_job(seed=s) for s in range(1, 7)]
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, jobs)
        original = Job.execute

        def slowed(self):
            time.sleep(0.15)  # widen the mid-flight window for the kill
            return original(self)

        monkeypatch.setattr(Job, "execute", slowed)  # inherited via fork
        ctx = _fork()
        proc = ctx.Process(
            target=_run_campaign_worker, args=(str(camp), "doomed"))
        proc.start()
        store = default_store(camp)
        deadline = time.monotonic() + 60  # noqa: REP001 - test timeout bookkeeping
        while time.monotonic() < deadline:  # noqa: REP001 - test timeout bookkeeping
            if store.stats().entries >= 1:
                break
            time.sleep(0.01)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=60)
        done_before = {
            unit.key for unit in CampaignManifest.load(camp).units
            if store.contains(unit.key)
        }
        assert done_before  # the worker was killed genuinely mid-flight

        executed = []

        def counting(self):
            executed.append(self.key())
            return original(self)

        monkeypatch.setattr(Job, "execute", counting)
        report = CampaignWorker(
            camp, worker="resumer", jobs=1, stale_after=0.0, poll=0.01,
        ).run(wait=True)
        # Zero re-simulation: nothing already in the store ran again,
        # and the resumer did exactly the remainder.
        assert not set(executed) & done_before
        assert report.executed == len(jobs) - len(done_before)
        status = campaign_status(camp)
        assert status.complete and status.failed == 0
        assert len(campaign_results(camp)) == len(jobs)

    def test_failed_unit_settles_the_campaign(self, tmp_path):
        camp = tmp_path / "camp"
        good = _job()
        bad = Job(tiny_gpu(), "doom")  # unknown kernel: deterministic fail
        CampaignManifest.create(camp, [good, bad])
        report = CampaignWorker(
            camp, worker="w", jobs=1, poll=0.01, retries=0).run(wait=True)
        assert report.executed == 1 and report.failed == 1
        status = campaign_status(camp)
        assert status.complete and status.done == 1 and status.failed == 1
        with pytest.raises(RunnerError, match="no stored result"):
            campaign_results(camp)
        failures = [r for r in read_ledger(camp) if r["status"] == "failed"]
        assert len(failures) == 1 and failures[0]["key"] == bad.key()

    def test_retry_failed_reruns_only_failures(self, tmp_path, monkeypatch):
        camp = tmp_path / "camp"
        jobs = [_job(seed=1), _job(seed=2)]
        CampaignManifest.create(camp, jobs)
        original = Job.execute

        def broken_for_seed_2(self):
            if self.seed == 2:
                raise ConfigError("bad config")
            return original(self)

        monkeypatch.setattr(Job, "execute", broken_for_seed_2)
        report = CampaignWorker(camp, worker="w1", jobs=1, poll=0.01).run()
        assert report.executed == 1 and report.failed == 1
        # A plain resume skips ledger-failed units (and must terminate).
        report = CampaignWorker(camp, worker="w2", jobs=1, poll=0.01).run()
        assert report.executed == 0 and report.failed == 0
        # retry-failed with the failure fixed finishes the campaign.
        monkeypatch.setattr(Job, "execute", original)
        report = CampaignWorker(
            camp, worker="w3", jobs=1, poll=0.01, retry_failed=True).run()
        assert report.executed == 1 and report.failed == 0
        assert campaign_status(camp).complete
        assert len(campaign_results(camp)) == 2


class TestCampaignCLI:
    SWEEP = ["--config", "tiny", "--scale", str(SCALE),
             "--benchmarks", "nn", "sc", "--seeds", "1"]

    def test_run_status_resume_export(self, capsys, tmp_path):
        camp = str(tmp_path / "camp")
        out = tmp_path / "results.csv"
        assert main(["campaign", "run", camp, *self.SWEEP,
                     "--jobs", "1", "--worker", "w1",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "campaign complete" in captured.out
        assert "executed 2" in captured.err
        assert main(["campaign", "status", camp]) == 0
        status_out = capsys.readouterr().out
        assert "2 done" in status_out and "campaign complete" in status_out
        # Resuming a finished campaign re-simulates nothing.
        assert main(["campaign", "resume", camp, "--jobs", "1",
                     "--worker", "w2"]) == 0
        assert "executed 0" in capsys.readouterr().err
        # The campaign export equals the plain serial export, byte for byte.
        reference = tmp_path / "serial.csv"
        assert main(["export", str(reference), "--config", "tiny",
                     "--scale", str(SCALE), "--benchmarks", "nn", "sc",
                     "--seed", "1", "--jobs", "1", "--no-cache"]) == 0
        capsys.readouterr()
        assert out.read_bytes() == reference.read_bytes()

    def test_joining_with_different_sweep_is_refused(self, capsys, tmp_path):
        camp = str(tmp_path / "camp")
        assert main(["campaign", "run", camp, *self.SWEEP,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", camp, "--config", "tiny",
                     "--scale", str(SCALE), "--benchmarks", "nn",
                     "--seeds", "9", "--jobs", "1"]) == 2
        assert "different work list" in capsys.readouterr().err

    def test_rerunning_same_sweep_joins(self, capsys, tmp_path):
        camp = str(tmp_path / "camp")
        assert main(["campaign", "run", camp, *self.SWEEP,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", camp, *self.SWEEP,
                     "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "executed 0" in captured.err
        assert "2 already done" in captured.err

    def test_status_on_missing_campaign_errors(self, capsys, tmp_path):
        assert main(["campaign", "status", str(tmp_path / "nope")]) == 2
        assert "no campaign manifest" in capsys.readouterr().err


def _worker_sigterm_victim(directory):
    """Child: SIGTERM itself mid-batch; held claims must be released."""
    def bomb(self, jobs):
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(10)
        return []

    BatchRunner.run = bomb
    CampaignWorker(directory, worker="victim", jobs=1, poll=0.01).run()
    os._exit(0)  # unreachable: SystemExit(143) unwinds first


class TestWorkerLifecycle:
    """Claim-freshness and claim-release regression tests."""

    def test_heartbeat_thread_keeps_claim_fresh_mid_batch(
        self, tmp_path, monkeypatch
    ):
        # Regression: heartbeats used to fire only between batches, so a
        # single simulation longer than stale_after let another worker
        # steal the claim mid-flight and duplicate the work.
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, [_job()])
        real_run = BatchRunner.run

        def slow_run(self, jobs):
            time.sleep(1.2)
            return real_run(self, jobs)

        monkeypatch.setattr(BatchRunner, "run", slow_run)
        worker = CampaignWorker(
            camp, worker="slow", jobs=1, poll=0.01, stale_after=0.4)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            deadline = time.monotonic() + 30  # noqa: REP001 - test scheduling, not simulated time
            while not read_claims(camp):
                assert time.monotonic() < deadline, "claim never appeared"  # noqa: REP001 - test scheduling, not simulated time
                time.sleep(0.01)
            key = next(iter(read_claims(camp)))
            time.sleep(0.8)  # well past stale_after
            # The background heartbeat kept the claim fresh: a takeover
            # attempt must lose even though the batch is still running.
            assert not try_claim(camp, key, "thief", stale_after=0.4)
        finally:
            thread.join(timeout=60)
        assert not read_claims(camp)
        assert campaign_status(camp).complete

    def test_evict_never_drops_manifest_protected_keys(self, tmp_path):
        # Regression: store entry presence is the campaign's
        # done-authority, so eviction of a done unit's entry silently
        # flipped it back to pending on the next status/claim pass.
        jobs = [_job(seed=s) for s in (1, 2)]
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, jobs)
        store = default_store(camp)
        metrics = jobs[0].execute()
        manifest_keys = [job.key() for job in jobs]
        for key in manifest_keys:
            store.put(key, metrics)
        store.put("f" * 64, metrics)  # unrelated, fair game
        evicted = store.evict(0)
        assert evicted == ["f" * 64]
        assert all(store.contains(key) for key in manifest_keys)

    def test_keyboard_interrupt_releases_held_claims(
        self, tmp_path, monkeypatch
    ):
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, [_job()])

        def interrupt(self, jobs):
            raise KeyboardInterrupt  # noqa: REP003 - simulating ctrl-C under test

        monkeypatch.setattr(BatchRunner, "run", interrupt)
        with pytest.raises(KeyboardInterrupt):
            CampaignWorker(camp, worker="ctrlc", jobs=1, poll=0.01).run()
        # The claim was handed back immediately, not left to go stale.
        assert not read_claims(camp)

    def test_sigterm_releases_held_claims(self, tmp_path):
        camp = tmp_path / "camp"
        CampaignManifest.create(camp, [_job()])
        ctx = _fork()
        proc = ctx.Process(
            target=_worker_sigterm_victim, args=(str(camp),))
        proc.start()
        proc.join(timeout=120)
        assert proc.exitcode == 128 + signal.SIGTERM
        assert not read_claims(camp)
        # The unit is untouched: still claimable by the next worker.
        assert try_claim(camp, _job().key(), "successor")
