"""Batch runner tests: jobs, cache, pool determinism, retry, CLI wiring,
and the opt-in observability layer (JSONL event log, progress line,
cache hit-rate statistics)."""

import dataclasses
import io
import json
import os
import pickle

import pytest

from repro.core.metrics import RunMetrics
from repro.cli import main
from repro.errors import ConfigError, RunnerError, UsageError
from repro.runner import (
    BatchRunner,
    EventLog,
    Job,
    ProgressLine,
    ResultCache,
    code_version,
)
from repro.runner.cache import CACHE_FORMAT
from repro.runner.pool import FAULT_ENV
from repro.sim.config import tiny_gpu

#: One cheap job everybody reuses (tiny config, heavily scaled down).
SCALE = 0.05


def _job(**overrides):
    defaults = dict(seed=1, iteration_scale=SCALE)
    defaults.update(overrides)
    return Job(tiny_gpu(), "nn", **defaults)


class TestJob:
    def test_key_is_stable(self):
        assert _job().key() == _job().key()

    def test_key_changes_with_config(self):
        base = tiny_gpu()
        scaled = dataclasses.replace(
            base, l2=dataclasses.replace(base.l2, access_queue_depth=99))
        assert Job(base, "nn").key() != Job(scaled, "nn").key()

    def test_key_changes_with_run_parameters(self):
        assert _job().key() != _job(seed=2).key()
        assert _job().key() != _job(iteration_scale=0.1).key()
        assert _job().key() != _job(max_cycles=1234).key()
        assert _job().key() != Job(tiny_gpu(), "lbm",
                                   iteration_scale=SCALE).key()

    def test_key_includes_code_version(self, monkeypatch):
        before = _job().key()
        monkeypatch.setattr(
            "repro.runner.job.code_version", lambda: "deadbeef")
        assert _job().key() != before  # code changes invalidate cached keys
        assert code_version()  # real digest is non-empty

    def test_validation(self):
        with pytest.raises(UsageError):
            Job(tiny_gpu(), "")
        with pytest.raises(UsageError):
            _job(max_cycles=0)
        with pytest.raises(UsageError):
            _job(iteration_scale=0.0)

    def test_job_pickles(self):
        job = _job()
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.key() == job.key()

    def test_execute_runs_the_simulation(self):
        metrics = _job().execute()
        assert metrics.instructions > 0
        assert not metrics.truncated

    def test_execute_flags_truncated_runs(self):
        metrics = _job(max_cycles=50).execute()
        assert metrics.truncated
        assert metrics.cycles <= 50

    def test_describe_mentions_magic_latency(self):
        job = Job(tiny_gpu().with_magic_memory(200), "nn",
                  iteration_scale=SCALE)
        assert "magic_latency=200" in job.describe()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        metrics = _job().execute()
        cache.put("k" * 64, metrics)
        assert cache.get("k" * 64) == metrics

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path / "c").get("nope") is None

    def test_corrupt_entry_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k" * 64, _job().execute())
        path = cache.entries()[0]
        path.write_bytes(b"not a pickle")
        assert cache.get("k" * 64) is None
        assert cache.entries() == []

    def test_wrong_format_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        path = cache.directory / "x.pkl"
        cache.directory.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": CACHE_FORMAT + 1}))
        assert cache.get("x") is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        metrics = _job().execute()
        cache.put("a" * 64, metrics)
        cache.put("b" * 64, metrics)
        count, size, orphans = cache.stats()
        assert count == 2 and size > 0 and orphans == 0
        assert cache.clear() == 2
        assert cache.stats() == (0, 0, 0)

    def test_env_var_sets_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert ResultCache().directory == tmp_path / "env-cache"


class TestBatchRunnerSerial:
    def test_results_in_submission_order(self):
        jobs = [_job(seed=s) for s in (3, 1, 2)]
        results = BatchRunner.serial().run(jobs)
        expected = [job.execute() for job in jobs]
        assert results == expected

    def test_empty_batch(self):
        assert BatchRunner.serial().run([]) == []

    def test_duplicate_jobs_execute_once(self, monkeypatch):
        calls = []
        original = Job.execute
        monkeypatch.setattr(
            Job, "execute",
            lambda self: calls.append(self.seed) or original(self))
        runner = BatchRunner.serial()
        results = runner.run([_job(), _job()])
        assert len(calls) == 1
        assert results[0] == results[1]
        assert runner.last_stats.unique == 1

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "c")
        runner = BatchRunner(jobs=1, cache=cache)
        first = runner.run([_job()])
        assert runner.last_stats.executed == 1

        # A warm rerun must perform zero simulations: executing again
        # would mean the cache key failed to identify the job.
        def boom(self):
            raise AssertionError("cache miss: job executed")  # noqa: REP003 - monkeypatched probe must not look like a modelled failure

        monkeypatch.setattr(Job, "execute", boom)
        second = BatchRunner(jobs=1, cache=cache).run([_job()])
        assert second == first

    def test_stats_accumulate_across_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = BatchRunner(jobs=1, cache=cache)
        runner.run([_job()])
        runner.run([_job()])
        assert runner.last_stats.cache_hits == 1
        assert runner.total_stats.executed == 1
        assert runner.total_stats.cache_hits == 1
        assert runner.total_stats.jobs == 2

    def test_repro_error_is_not_retried(self, monkeypatch):
        attempts = []

        def fail(self):
            attempts.append(1)
            raise ConfigError("deterministic failure")

        monkeypatch.setattr(Job, "execute", fail)
        runner = BatchRunner.serial()
        with pytest.raises(RunnerError) as excinfo:
            runner.run([_job()])
        assert len(attempts) == 1  # rerunning a frozen config cannot help
        assert "deterministic failure" in str(excinfo.value)
        assert "nn(seed=1" in str(excinfo.value)

    def test_unexpected_error_is_retried(self, monkeypatch):
        attempts = []
        original = Job.execute

        def flaky(self):
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")  # noqa: REP003 - deliberately a non-ReproError to exercise retry
            return original(self)

        monkeypatch.setattr(Job, "execute", flaky)
        runner = BatchRunner(jobs=1, retries=2)
        [metrics] = runner.run([_job()])
        assert len(attempts) == 3
        assert runner.last_stats.retried == 2
        assert metrics.instructions > 0

    def test_retry_budget_exhausted(self, monkeypatch):
        monkeypatch.setattr(
            Job, "execute",
            lambda self: (_ for _ in ()).throw(ValueError("always")))
        with pytest.raises(RunnerError):
            BatchRunner(jobs=1, retries=1).run([_job()])

    def test_unknown_kernel_surfaces_as_runner_error(self):
        with pytest.raises(RunnerError) as excinfo:
            BatchRunner.serial().run([Job(tiny_gpu(), "doom")])
        assert "doom" in str(excinfo.value)

    def test_invalid_construction(self):
        with pytest.raises(UsageError):
            BatchRunner(jobs=0)
        with pytest.raises(UsageError):
            BatchRunner(retries=-1)


class TestBatchRunnerPool:
    """The process-pool path (jobs > 1 with more than one pending job)."""

    def test_pool_matches_serial(self):
        jobs = [_job(seed=s) for s in (1, 2, 3)]
        serial = BatchRunner(jobs=1).run(jobs)
        parallel = BatchRunner(jobs=4).run(jobs)
        assert parallel == serial

    def test_pool_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = BatchRunner(jobs=4, cache=cache)
        jobs = [_job(seed=s) for s in (1, 2)]
        runner.run(jobs)
        assert cache.stats()[0] == 2
        warm = BatchRunner(jobs=4, cache=cache)
        warm.run(jobs)
        assert warm.last_stats.cache_hits == 2
        assert warm.last_stats.executed == 0

    def test_worker_crash_is_retried(self, tmp_path, monkeypatch):
        fault = tmp_path / "fault"
        fault.write_text("1")  # first worker to pick this up dies hard
        monkeypatch.setenv(FAULT_ENV, str(fault))
        runner = BatchRunner(jobs=2, retries=2)
        results = runner.run([_job(seed=s) for s in (1, 2)])
        assert len(results) == 2
        assert runner.last_stats.retried >= 1
        assert fault.read_text().strip() == "0"

    def test_persistent_crash_exhausts_retries(self, tmp_path, monkeypatch):
        fault = tmp_path / "fault"
        fault.write_text("99")  # every attempt dies
        monkeypatch.setenv(FAULT_ENV, str(fault))
        runner = BatchRunner(jobs=2, retries=0)
        with pytest.raises(RunnerError) as excinfo:
            runner.run([_job(seed=s) for s in (1, 2)])
        assert "crashed" in str(excinfo.value)

    def test_crash_after_retry_reports_fresh_diagnostics(
            self, tmp_path, monkeypatch):
        """A crash in retry round N must not surface round N-1's error.

        Round 1: the bad job raises an ordinary exception (recorded as
        that round's crash diagnostics).  Round 2: the same job kills its
        worker outright, which breaks the pool with no specific error.
        The failure summary must carry round 2's generic crash text, not
        the stale round-1 exception.  (Relies on the fork start method:
        pool workers inherit the monkeypatched ``Job.execute``.)
        """
        counter = tmp_path / "attempts"

        def two_phase(self):
            if self.seed == 99:
                with open(counter, "ab") as handle:
                    handle.write(b"x")
                if os.path.getsize(counter) == 1:
                    raise ValueError("round-one noise")  # noqa: REP003 - deliberately a non-ReproError to exercise retry
                os._exit(13)  # hard crash: breaks the pool
            return original(self)

        original = Job.execute
        monkeypatch.setattr(Job, "execute", two_phase)
        runner = BatchRunner(jobs=2, retries=1)
        with pytest.raises(RunnerError) as excinfo:
            runner.run([_job(seed=1), _job(seed=99)])
        text = str(excinfo.value)
        assert "worker crashed (process pool broken)" in text
        assert "round-one noise" not in text

    def test_pool_repro_error_not_retried(self):
        jobs = [Job(tiny_gpu(), "doom"), Job(tiny_gpu(), "lbm",
                                             iteration_scale=SCALE)]
        runner = BatchRunner(jobs=2, retries=2)
        with pytest.raises(RunnerError) as excinfo:
            runner.run(jobs)
        # The healthy job completed; only the bad one is reported.
        assert "doom" in str(excinfo.value)
        assert runner.last_stats.executed == 1


def _read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestEventLog:
    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"  # parent dir is created
        with EventLog(path) as log:
            log.emit("alpha", value=1)
            log.emit("beta", nested={"x": [1, 2]})
        events = _read_events(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["value"] == 1
        assert events[1]["nested"] == {"x": [1, 2]}
        for event in events:
            assert event["t"] >= 0.0  # monotonic offset from log creation
            assert event["ts"] > 0.0  # wall-clock epoch
        assert log.events_written == 2

    def test_append_only_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("first")
        with EventLog(path) as log:
            log.emit("second")
        assert [e["event"] for e in _read_events(path)] == ["first", "second"]

    def test_serial_run_emits_lifecycle_events(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        runner = BatchRunner(jobs=1, events=log)
        runner.run([_job()])
        log.close()
        names = [e["event"] for e in _read_events(log.path)]
        assert names[0] == "batch_start"
        assert names[-1] == "batch_end"
        assert "job_start" in names
        assert "job_finish" in names

    def test_job_finish_carries_wall_time(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        BatchRunner(jobs=1, events=log).run([_job()])
        log.close()
        finish = [
            e for e in _read_events(log.path) if e["event"] == "job_finish"]
        assert len(finish) == 1
        assert finish[0]["wall_s"] > 0.0
        assert finish[0]["truncated"] is False
        assert finish[0]["attempt"] == 1

    def test_cache_hits_are_logged(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        BatchRunner(jobs=1, cache=cache).run([_job()])
        log = EventLog(tmp_path / "events.jsonl")
        BatchRunner(jobs=1, cache=cache, events=log).run([_job()])
        log.close()
        events = _read_events(log.path)
        hits = [e for e in events if e["event"] == "cache_hit"]
        assert len(hits) == 1
        assert "nn(seed=1" in hits[0]["job"]
        batch_end = [e for e in events if e["event"] == "batch_end"][0]
        assert batch_end["cache_hits"] == 1
        assert batch_end["executed"] == 0

    def test_retries_and_fatal_errors_are_logged(self, tmp_path, monkeypatch):
        attempts = []
        original = Job.execute

        def flaky(self):
            attempts.append(1)
            if len(attempts) < 2:
                raise ValueError("transient")  # noqa: REP003 - deliberately a non-ReproError to exercise retry
            return original(self)

        monkeypatch.setattr(Job, "execute", flaky)
        log = EventLog(tmp_path / "events.jsonl")
        BatchRunner(jobs=1, retries=2, events=log).run([_job()])
        log.close()
        events = _read_events(log.path)
        retry = [e for e in events if e["event"] == "job_retry"]
        assert len(retry) == 1
        assert "transient" in retry[0]["error"]

        monkeypatch.setattr(
            Job, "execute",
            lambda self: (_ for _ in ()).throw(ConfigError("frozen")))
        log = EventLog(tmp_path / "fatal.jsonl")
        with pytest.raises(RunnerError):
            BatchRunner(jobs=1, events=log).run([_job()])
        log.close()
        errors = [
            e for e in _read_events(log.path) if e["event"] == "job_error"]
        assert len(errors) == 1
        assert errors[0]["fatal"] is True

    def test_pool_run_emits_events_and_utilization(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        runner = BatchRunner(jobs=2, events=log)
        runner.run([_job(seed=s) for s in (1, 2)])
        log.close()
        events = _read_events(log.path)
        assert sum(1 for e in events if e["event"] == "job_finish") == 2
        batch_end = [e for e in events if e["event"] == "batch_end"][0]
        assert batch_end["workers"] == 2
        assert batch_end["busy_s"] > 0.0
        assert 0.0 <= batch_end["pool_utilization"] <= 1.0

    def test_events_never_reach_stdout(self, tmp_path, capsys):
        log = EventLog(tmp_path / "events.jsonl")
        BatchRunner(jobs=1, events=log).run([_job()])
        log.close()
        captured = capsys.readouterr()
        assert captured.out == ""


class TestProgressLine:
    def test_rewrites_one_line(self):
        stream = io.StringIO()
        line = ProgressLine(stream=stream, tty=True)
        line.update(1, 3)
        line.update(3, 3, cached=1, retried=2, failed=1)
        line.finish()
        text = stream.getvalue()
        assert text.startswith("\r[1/3] jobs done")
        assert "[3/3] jobs done (1 cached, 2 retried, 1 failed)" in text
        assert text.endswith("\n")

    def test_non_tty_stream_gets_plain_lines(self):
        # A StringIO has no isatty -> redirected stderr must never see
        # carriage-return rewrite sequences, only whole lines.
        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line.update(1, 2)
        line.update(2, 2)
        line.finish()
        text = stream.getvalue()
        assert "\r" not in text
        assert text.splitlines() == [
            "[1/2] jobs done (0 cached)", "[2/2] jobs done (0 cached)"]

    def test_finish_without_updates_is_silent(self):
        stream = io.StringIO()
        ProgressLine(stream=stream).finish()
        assert stream.getvalue() == ""

    def test_runner_progress_leaves_stdout_untouched(self, capsys):
        runner = BatchRunner(jobs=1, progress=True)
        runner.run([_job()])
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[1/1] jobs done" in captured.err

    def test_non_tty_updates_are_throttled(self, monkeypatch):
        # Regression: plain mode used to emit one line per completed
        # job, flooding CI logs on large sweeps.  Updates inside the
        # interval that advance less than percent_step stay silent.
        clock = {"now": 100.0}
        monkeypatch.setattr(
            "repro.runner.events.time.monotonic", lambda: clock["now"])
        stream = io.StringIO()
        line = ProgressLine(stream=stream, min_interval=5.0,
                            percent_step=10.0)
        line.update(1, 100)  # first update always emits
        clock["now"] += 1.0
        line.update(2, 100)  # +1% after 1s: suppressed
        line.update(3, 100)  # suppressed
        clock["now"] += 5.0
        line.update(4, 100)  # min_interval elapsed: emits
        line.update(15, 100)  # +11% > percent_step: emits
        line.update(100, 100)  # final count always emits
        line.finish()
        emitted = stream.getvalue().splitlines()
        assert [text.split("]")[0] + "]" for text in emitted] == [
            "[1/100]", "[4/100]", "[15/100]", "[100/100]"]

    def test_non_tty_new_failures_bypass_throttle(self, monkeypatch):
        clock = {"now": 100.0}
        monkeypatch.setattr(
            "repro.runner.events.time.monotonic", lambda: clock["now"])
        stream = io.StringIO()
        line = ProgressLine(stream=stream, min_interval=60.0,
                            percent_step=50.0)
        line.update(1, 100)
        line.update(2, 100, failed=1)  # new failure: emits immediately
        line.update(3, 100, failed=1)  # failure count unchanged: silent
        emitted = stream.getvalue().splitlines()
        assert len(emitted) == 2
        assert "1 failed" in emitted[1]

    def test_tty_updates_are_never_throttled(self, monkeypatch):
        clock = {"now": 100.0}
        monkeypatch.setattr(
            "repro.runner.events.time.monotonic", lambda: clock["now"])
        stream = io.StringIO()
        line = ProgressLine(stream=stream, tty=True, min_interval=60.0,
                            percent_step=50.0)
        for done in (1, 2, 3):
            line.update(done, 100)
        # Every update redrew the line: three carriage returns.
        assert stream.getvalue().count("\r") == 3


class TestCacheUsageStats:
    def test_usage_counters_accumulate(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        BatchRunner(jobs=1, cache=cache).run([_job()])
        BatchRunner(jobs=1, cache=cache).run([_job()])
        assert cache.usage_stats() == {"hits": 1, "misses": 1, "batches": 2}

    def test_usage_file_is_not_a_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        BatchRunner(jobs=1, cache=cache).run([_job()])
        assert cache.stats()[0] == 1  # the sidecar is not counted

    def test_clear_resets_usage(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        BatchRunner(jobs=1, cache=cache).run([_job()])
        cache.clear()
        assert cache.usage_stats() == {"hits": 0, "misses": 0, "batches": 0}

    def test_corrupt_sidecar_is_a_fresh_start(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.directory.mkdir(parents=True)
        (cache.directory / "_usage.json").write_text("not json{")
        assert cache.usage_stats() == {"hits": 0, "misses": 0, "batches": 0}
        cache.record_usage(hits=2, misses=1)
        assert cache.usage_stats() == {"hits": 2, "misses": 1, "batches": 1}


class TestCLI:
    PROFILE_ARGS = [
        "latency-profile", "--config", "tiny", "--scale", "0.1",
        "--benchmarks", "nn", "--latencies", "0", "200",
    ]

    def test_jobs_1_jobs_4_and_warm_cache_are_byte_identical(self, capsys):
        assert main([*self.PROFILE_ARGS, "--jobs", "1"]) == 0
        cold_serial = capsys.readouterr().out
        assert main([*self.PROFILE_ARGS, "--jobs", "4", "--no-cache"]) == 0
        cold_parallel = capsys.readouterr().out
        assert main([*self.PROFILE_ARGS, "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert cold_parallel == cold_serial
        assert captured.out == cold_serial
        assert "served from cache" in captured.err  # warm rerun note

    def test_run_uses_cache_on_rerun(self, capsys):
        args = ["run", "nn", "--config", "tiny", "--scale", "0.1"]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "served from cache" in second.err

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        args = ["run", "nn", "--config", "tiny", "--scale", "0.1",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_events_and_progress_flags(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main([
            "congestion", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn", "sc", "--jobs", "2",
            "--events", str(events), "--progress",
        ]) == 0
        captured = capsys.readouterr()
        names = [e["event"] for e in _read_events(events)]
        assert "batch_start" in names and "batch_end" in names
        assert names.count("job_finish") == 2
        assert "[2/2] jobs done" in captured.err
        assert "jobs done" not in captured.out  # stdout stays a pure report

    def test_cache_info_reports_hit_rate(self, capsys, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        args = ["run", "nn", "--config", "tiny", "--scale", "0.1",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "50.0% hit rate" in out
        assert "2 batches" in out

    def test_no_cache_flag_bypasses_store(self, capsys, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        assert main([
            "run", "nn", "--config", "tiny", "--scale", "0.1",
            "--cache-dir", str(cache_dir), "--no-cache",
        ]) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_failed_batch_exits_2(self, capsys, monkeypatch):
        monkeypatch.setattr(
            Job, "execute",
            lambda self: (_ for _ in ()).throw(ConfigError("boom")))
        assert main([
            "congestion", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn", "--jobs", "1",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "boom" in err


class TestTruncationFlag:
    def test_truncated_metrics_survive_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = BatchRunner(jobs=1, cache=cache)
        [cold] = runner.run([_job(max_cycles=50)])
        [warm] = BatchRunner(jobs=1, cache=cache).run([_job(max_cycles=50)])
        assert cold.truncated and warm.truncated

    def test_truncated_is_exported(self):
        metrics = _job(max_cycles=50).execute()
        from repro.core.export import metrics_to_dict
        assert metrics_to_dict(metrics)["truncated"] is True

    def test_runmetrics_default_is_not_truncated(self):
        assert RunMetrics.__dataclass_fields__["truncated"].default is False
