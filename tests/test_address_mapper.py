"""Address-mapping tests: partition/bank/row decomposition invariants."""

from hypothesis import given, strategies as st

from repro.mem.address import AddressMapper
from repro.sim.config import GPUConfig, tiny_gpu


def test_partitions_interleave_consecutive_lines():
    mapper = AddressMapper(GPUConfig())
    partitions = [mapper.partition(line) for line in range(8)]
    assert partitions == [0, 1, 2, 3, 0, 1, 2, 3]


def test_local_line_strips_partition_bits():
    mapper = AddressMapper(GPUConfig())
    assert mapper.local_line(0) == 0
    assert mapper.local_line(4) == 1
    assert mapper.local_line(9) == 2


def test_l2_bank_alternates_within_partition():
    cfg = GPUConfig()
    mapper = AddressMapper(cfg)
    # lines mapping to partition 0: 0, 4, 8, 12 -> locals 0,1,2,3
    banks = [mapper.l2_bank(line) for line in (0, 4, 8, 12)]
    assert banks == [0, 1, 0, 1]


def test_row_layout_gives_streaming_row_runs():
    """Consecutive local lines share a DRAM row for row_lines accesses."""
    cfg = GPUConfig()
    mapper = AddressMapper(cfg)
    row_lines = cfg.dram.row_bytes // cfg.line_bytes
    part0_lines = [line for line in range(0, 4 * row_lines * 4, 4)]
    rows_banks = [(mapper.dram_bank(l), mapper.dram_row(l)) for l in part0_lines]
    # First row_lines lines: same (bank, row).
    assert len(set(rows_banks[:row_lines])) == 1
    # The next chunk moves to another bank.
    assert rows_banks[row_lines] != rows_banks[0]


@given(st.integers(0, 2**40))
def test_decomposition_is_injective(line):
    """(partition, bank, row, column) uniquely reconstructs the line."""
    cfg = tiny_gpu()
    mapper = AddressMapper(cfg)
    part = mapper.partition(line)
    local = mapper.local_line(line)
    assert 0 <= part < cfg.n_partitions
    assert local * cfg.n_partitions + part == line
    assert 0 <= mapper.dram_bank(line) < cfg.dram.banks
    assert 0 <= mapper.l2_bank(line) < cfg.l2.banks
    assert mapper.dram_row(line) >= 0


@given(st.integers(0, 2**30), st.integers(0, 2**30))
def test_same_partition_iff_congruent(a, b):
    mapper = AddressMapper(GPUConfig())
    same = mapper.partition(a) == mapper.partition(b)
    assert same == ((a - b) % 4 == 0)


def test_single_partition_mapping():
    """n_partitions=1: every line is local and partition 0."""
    import dataclasses

    cfg = dataclasses.replace(tiny_gpu(), n_partitions=1)
    mapper = AddressMapper(cfg)
    for line in (0, 1, 17, 12345):
        assert mapper.partition(line) == 0
        assert mapper.local_line(line) == line
