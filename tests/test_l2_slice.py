"""L2 slice tests: hit/miss paths, write-back, data port, back-pressure."""

import dataclasses

from repro.cache.l2 import L2Slice
from repro.dram.controller import DRAMChannel
from repro.mem.address import AddressMapper
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import tiny_gpu


def make_partition(**l2_kwargs):
    cfg = tiny_gpu()
    if l2_kwargs:
        cfg = dataclasses.replace(
            cfg, l2=dataclasses.replace(cfg.l2, **l2_kwargs)
        )
    mapper = AddressMapper(cfg)
    l2 = L2Slice("l2", cfg, mapper, partition_id=0)
    dram = DRAMChannel("d", cfg, mapper, partition_id=0)
    l2.dram = dram
    dram.l2 = l2
    return l2, dram, mapper, cfg


def load(rid, line, sm=0):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=sm, warp_id=0)


def store(rid, line, sm=0):
    return MemoryRequest(rid=rid, kind=AccessKind.STORE, line=line, sm_id=sm, warp_id=0)


def run_partition(l2, dram, cycles, start=0):
    for c in range(start, start + cycles):
        l2.step(c)
        dram.step(c)


class TestLoadPath:
    def test_cold_load_misses_to_dram_and_responds(self):
        l2, dram, mapper, cfg = make_partition()
        r = load(0, 0)
        l2.access_queue.push(r, 0)
        run_partition(l2, dram, 400)
        assert len(l2.response_queue) == 1
        assert l2.response_queue.peek() is r
        assert r.is_response
        assert r.l2_miss

    def test_second_load_same_line_hits_after_fill(self):
        l2, dram, mapper, cfg = make_partition()
        l2.access_queue.push(load(0, 0), 0)
        run_partition(l2, dram, 400)
        l2.response_queue.pop(400)
        second = load(1, 0)
        l2.access_queue.push(second, 401)
        run_partition(l2, dram, 50, start=401)
        assert second.is_response
        assert "l2_hit" in second.timestamps
        assert l2.tags.lookups.numerator == 1  # one hit counted

    def test_concurrent_loads_merge_in_mshr(self):
        l2, dram, mapper, cfg = make_partition()
        a, b = load(0, 0, sm=0), load(1, 0, sm=1)
        l2.access_queue.push(a, 0)
        l2.access_queue.push(b, 0)
        run_partition(l2, dram, 400)
        # Both got responses, single DRAM read.
        assert len(l2.response_queue) == 2
        assert dram.reads == 1
        assert l2.mshr.merges == 1

    def test_mshr_released_after_fill(self):
        l2, dram, mapper, cfg = make_partition()
        l2.access_queue.push(load(0, 0), 0)
        run_partition(l2, dram, 400)
        assert len(l2.mshr) == 0


class TestStorePath:
    def test_store_miss_write_allocates(self):
        l2, dram, mapper, cfg = make_partition()
        l2.access_queue.push(store(0, 0), 0)
        run_partition(l2, dram, 400)
        # Store completes without producing a response packet.
        assert l2.response_queue.empty
        assert l2.store_completions == 1
        assert dram.reads == 1  # the write-allocate fetch

    def test_store_hit_marks_dirty_and_later_eviction_writes_back(self):
        l2, dram, mapper, cfg = make_partition()
        l2.access_queue.push(store(0, 0), 0)
        run_partition(l2, dram, 400)
        # Now overflow the set until line 0 is evicted; its writeback must
        # reach DRAM as a write.
        local_sets = l2.tags.n_sets
        assoc = l2.tags.assoc
        conflicts = [
            load(10 + i, (i + 1) * local_sets * cfg.n_partitions * l2.tags.assoc)
            for i in range(assoc + 1)
        ]
        fed = list(conflicts)
        for c in range(401, 3000):
            while fed and l2.access_queue.can_push():
                l2.access_queue.push(fed.pop(0), c)
            l2.step(c)
            dram.step(c)
            if dram.writes:
                break
        assert l2.writebacks >= 1
        assert dram.writes >= 1


class TestDataPort:
    def test_port_serializes_responses(self):
        l2, dram, mapper, cfg = make_partition()
        # Two hits back to back: fill two lines first.
        l2.access_queue.push(load(0, 0), 0)
        l2.access_queue.push(load(1, cfg.n_partitions), 0)
        run_partition(l2, dram, 500)
        while not l2.response_queue.empty:
            l2.response_queue.pop(500)
        a, b = load(2, 0), load(3, cfg.n_partitions)
        l2.access_queue.push(a, 501)
        l2.access_queue.push(b, 501)
        run_partition(l2, dram, 100, start=501)
        out_a = a.timestamps["l2_out"]
        out_b = b.timestamps["l2_out"]
        assert abs(out_b - out_a) >= cfg.l2_port_cycles

    def test_full_response_queue_blocks_bank(self):
        l2, dram, mapper, cfg = make_partition(response_queue_depth=1)
        lines = [i * cfg.n_partitions for i in range(4)]
        fed = [load(i, line) for i, line in enumerate(lines)]
        for c in range(0, 2000):
            while fed and l2.access_queue.can_push():
                l2.access_queue.push(fed.pop(0), c)
            l2.step(c)
            dram.step(c)
        # Only one response fits; banks/pending hold the rest.
        assert len(l2.response_queue) == 1
        assert not l2.is_idle()
        # Draining the queue lets the rest flow.
        got = 0
        for c in range(2000, 6000):
            if not l2.response_queue.empty:
                l2.response_queue.pop(c)
                got += 1
            l2.step(c)
            dram.step(c)
            if got == 4:
                break
        assert got == 4
        assert l2.is_idle()


class TestReservation:
    def test_reservation_failure_blocks_bank(self):
        # More concurrent same-set misses than ways, with MSHR capacity
        # above associativity so the tag array (not the MSHR file) is the
        # contended resource.
        l2, dram, mapper, cfg = make_partition(mshr_entries=16)
        sets = l2.tags.n_sets
        assoc = l2.tags.assoc
        # Same set, different tags: local lines k * sets.
        same_set = [
            load(i, i * sets * cfg.n_partitions * 64) for i in range(assoc + 2)
        ]
        # force same set: local = i * sets * 64 -> set index 0 for pow2 sets
        fed = list(same_set)
        responses = 0
        for c in range(0, 6000):
            while fed and l2.access_queue.can_push():
                l2.access_queue.push(fed.pop(0), c)
            l2.step(c)
            dram.step(c)
            while not l2.response_queue.empty:
                l2.response_queue.pop(c)
                responses += 1
            if responses == len(same_set):
                break
        # All complete despite set-conflict pressure, and the pressure was
        # actually exercised (reserved ways or MSHR capacity ran out).
        assert responses == len(same_set)
        assert l2.tags.reservation_fails + l2.mshr.alloc_fails >= 1
