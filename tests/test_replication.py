"""Multi-seed replication tests."""

import pytest

from repro.core.replication import Replication, ReplicationReport, replicate
from repro.sim.config import tiny_gpu


class TestReplicationMath:
    def test_mean_std(self):
        r = Replication("m", (1.0, 2.0, 3.0))
        assert r.mean == pytest.approx(2.0)
        assert r.std == pytest.approx(1.0)
        assert r.cv == pytest.approx(0.5)
        assert r.spread == pytest.approx(2.0)

    def test_single_value_has_zero_std(self):
        r = Replication("m", (5.0,))
        assert r.std == 0.0
        assert r.cv == 0.0

    def test_zero_mean_cv(self):
        r = Replication("m", (0.0, 0.0))
        assert r.cv == 0.0

    def test_negative_mean_cv_is_positive(self):
        # std / signed-mean would be negative here and rank *below* a
        # perfectly stable metric under max(); the CV normalizes by |mean|.
        r = Replication("m", (-1.0, -2.0, -3.0))
        assert r.cv == pytest.approx(0.5)
        assert r.cv > 0.0

    def test_worst_cv_of_empty_report_is_zero(self):
        report = ReplicationReport(
            benchmark="nn", seeds=(1,), replications={})
        assert report.worst_cv() == 0.0


class TestReplicate:
    @pytest.fixture(scope="class")
    def report(self):
        return replicate(
            tiny_gpu(), "cfd", seeds=(1, 2, 3), iteration_scale=0.1)

    def test_all_default_metrics_present(self, report):
        assert set(report.replications) == {
            "ipc", "l1_avg_miss_latency", "l2_hit_rate",
            "l2_accessq_full", "dram_schedq_full",
        }
        assert report.seeds == (1, 2, 3)

    def test_one_value_per_seed(self, report):
        for r in report.replications.values():
            assert len(r.values) == 3

    def test_seed_variance_is_modest(self, report):
        # Seeds change the random address stream, but at suite statistics
        # the behaviour is stable: conclusions must not flip with the seed.
        assert report.worst_cv() < 0.25

    def test_table_renders(self, report):
        text = report.to_table()
        assert "cfd" in text and "CV" in text

    def test_deterministic_benchmark_has_zero_variance(self):
        # "nn" is a deterministic shared stream: seeds don't change it.
        report = replicate(
            tiny_gpu(), "nn", seeds=(1, 2), iteration_scale=0.1)
        assert report.replications["ipc"].spread == pytest.approx(0.0)

    def test_custom_metric(self):
        report = replicate(
            tiny_gpu(), "nn", seeds=(1,), iteration_scale=0.1,
            metrics={"cycles": lambda m: float(m.cycles)})
        assert set(report.replications) == {"cycles"}
        assert report.replications["cycles"].mean > 0
