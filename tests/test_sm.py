"""SM tests: issue, LD/ST pipeline, blocking, retirement, IPC accounting.

These use magic-memory mode so the SM + L1 can be tested without the full
memory system.
"""

import dataclasses

from repro.cores.sm import SM
from repro.cores.warp import WarpState
from repro.mem.request import RequestFactory
from repro.sim.config import CoreConfig, tiny_gpu


def make_sm(programs, mlp=4, magic_latency=20, **core_kwargs):
    cfg = tiny_gpu().with_magic_memory(magic_latency)
    if core_kwargs:
        cfg = dataclasses.replace(
            cfg, core=dataclasses.replace(cfg.core, **core_kwargs)
        )
    return SM(0, cfg, [iter(p) for p in programs], mlp, RequestFactory())


def run(sm, cycles):
    for c in range(sm.cycles, sm.cycles + cycles):
        sm.step(c)


class TestComputeIssue:
    def test_compute_counts_instructions(self):
        sm = make_sm([[("compute", 5)]])
        run(sm, 10)
        assert sm.instructions == 5
        assert sm.done

    def test_issue_width_caps_per_cycle(self):
        sm = make_sm([[("compute", 10)], [("compute", 10)]], issue_width=2)
        sm.step(0)
        assert sm.instructions == 2

    def test_ipc_bounded_by_issue_width(self):
        sm = make_sm([[("compute", 50)] for _ in range(4)], issue_width=2)
        run(sm, 200)
        assert sm.done
        assert sm.ipc <= 2.0


class TestLoads:
    def test_load_reaches_l1_and_completes(self):
        sm = make_sm([[("load", [0x10])]], magic_latency=10)
        run(sm, 40)
        assert sm.done
        assert sm.l1.misses_issued == 1

    def test_warp_blocks_at_mlp_limit(self):
        program = [("load", [1]), ("load", [2]), ("load", [3]), ("compute", 1)]
        sm = make_sm([program], mlp=2, magic_latency=500)
        run(sm, 10)
        warp = sm.warps[0]
        assert warp.state is WarpState.BLOCKED
        assert warp.outstanding_loads == 2  # third load not yet issued

    def test_warp_wakes_on_completion(self):
        program = [("load", [1]), ("compute", 3)]
        sm = make_sm([program], mlp=1, magic_latency=15)
        run(sm, 60)
        assert sm.done
        assert sm.instructions == 2 + 3 - 1  # load + membar-free compute run

    def test_membar_waits_for_loads(self):
        program = [("load", [1]), ("membar",), ("compute", 1)]
        sm = make_sm([program], mlp=4, magic_latency=30)
        run(sm, 5)
        assert sm.warps[0].state is WarpState.BLOCKED
        run(sm, 100)
        assert sm.done

    def test_divergent_load_creates_transactions(self):
        sm = make_sm([[("load", [1, 2, 3, 4])]], magic_latency=5)
        run(sm, 60)
        assert sm.done
        assert sm.l1.misses_issued == 4
        # one load instruction, four transactions
        assert sm.instructions == 1


class TestStores:
    def test_store_is_fire_and_forget(self):
        sm = make_sm([[("store", [1]), ("compute", 2)]])
        run(sm, 10)
        assert sm.done
        assert sm.l1.stores_sent == 1


class TestStructural:
    def test_ldst_queue_full_stalls_issue(self):
        # mlp high, ldst tiny: issue must stall on queue space.
        program = [("load", [1, 2, 3, 4]) for _ in range(8)]
        sm = make_sm([program], mlp=8, magic_latency=400,
                     ldst_queue_depth=4, mem_pipeline_width=1)
        run(sm, 4)
        assert len(sm._ldst_queue) <= 4

    def test_mem_pipeline_width_limits_drain(self):
        sm = make_sm([[("load", [1, 2, 3, 4, 5, 6])]],
                     mlp=8, magic_latency=500, mem_pipeline_width=2)
        sm.step(0)   # issue the load -> 6 txns queued
        sm.step(1)   # drain at most 2
        assert sm.l1.misses_issued <= 4

    def test_quiesce_after_done(self):
        sm = make_sm([[("compute", 1)]])
        run(sm, 30)
        assert sm.done and sm.is_idle()
        before = sm.instructions
        run(sm, 10)
        assert sm.instructions == before


class TestMultiWarp:
    def test_all_warps_retire(self):
        programs = [[("compute", 2), ("load", [i]), ("compute", 2)]
                    for i in range(4)]
        sm = make_sm(programs, magic_latency=12)
        run(sm, 200)
        assert sm.done
        assert all(w.state is WarpState.RETIRED for w in sm.warps)

    def test_no_ready_warp_cycles_counted(self):
        sm = make_sm([[("load", [1])]], mlp=1, magic_latency=50)
        run(sm, 40)
        assert sm.no_ready_warp_cycles > 0

    def test_instructions_conserved(self):
        """Total issued = per-warp program lengths (compute expanded)."""
        programs = [
            [("compute", 3), ("load", [1]), ("store", [2])],
            [("compute", 2), ("membar",)],
        ]
        sm = make_sm(programs, magic_latency=8)
        run(sm, 200)
        assert sm.done
        expected = (3 + 1 + 1) + (2 + 1)
        assert sm.instructions == expected
        assert sm.instructions == sum(w.instructions for w in sm.warps)
