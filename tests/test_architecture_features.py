"""Tests for optional architecture features: L1 write-back policy, TLP
throttling (active warp limit), and DRAM refresh."""

import dataclasses

import pytest

from repro.cache.l1 import AccessResult, L1DCache
from repro.core.metrics import run_kernel
from repro.cores.sm import SM
from repro.errors import ConfigError
from repro.gpu import GPU
from repro.mem.request import AccessKind, MemoryRequest, RequestFactory
from repro.sim.config import CoreConfig, DRAMConfig, L1Config, tiny_gpu
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel


def wb_config():
    cfg = tiny_gpu()
    return dataclasses.replace(
        cfg, l1=dataclasses.replace(cfg.l1, write_policy="write_back"))


def store(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.STORE, line=line, sm_id=0, warp_id=0)


def load(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=0)


class TestWriteBackL1:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            L1Config(write_policy="write_around")

    def test_store_miss_fetches_line(self):
        l1 = L1DCache("l1", wb_config(), 0)
        assert l1.try_access(store(0, 0x10), 0) is AccessResult.QUEUED
        # Downstream request is a fetch, not a write.
        assert l1.miss_queue.peek().kind is AccessKind.LOAD

    def test_store_hit_absorbed_locally(self):
        l1 = L1DCache("l1", wb_config(), 0)
        r = store(0, 0x10)
        l1.try_access(r, 0)
        l1.miss_queue.pop(0)
        r.is_response = True
        l1.deliver_fill(r, 1)
        for cycle in range(1, 100):
            l1.collect_completions(cycle)
            if l1.tags.lookup(0x10, cycle, count=False):
                break
        before = len(l1.miss_queue)
        assert l1.try_access(store(1, 0x10), 200) is AccessResult.HIT
        assert len(l1.miss_queue) == before  # no downstream traffic
        assert l1.store_hits_local == 1

    def test_dirty_eviction_writes_back(self):
        cfg = wb_config()
        l1 = L1DCache("l1", cfg, 0)
        n_sets = l1.tags.n_sets
        assoc = l1.tags.assoc
        # Dirty one line in set 0 via a store fill.
        first = store(0, 0)
        l1.try_access(first, 0)
        l1.miss_queue.pop(0)
        first.is_response = True
        l1.deliver_fill(first, 0)
        for cycle in range(0, 60):
            l1.collect_completions(cycle)
        # Conflict-fill the same set until the dirty line evicts.
        for i in range(1, assoc + 1):
            r = load(i, i * n_sets)
            l1.try_access(r, 100 + i)
            if not l1.miss_queue.empty:
                while not l1.miss_queue.empty:
                    l1.miss_queue.pop(100 + i)
            r.is_response = True
            l1.deliver_fill(r, 100 + i)
        for cycle in range(102, 400):
            l1.collect_completions(cycle)
            if l1.writebacks_sent:
                break
        assert l1.writebacks_sent >= 1
        # Writeback travels as a STORE (a real write at the L2).
        kinds = [r.kind for r in l1.miss_queue]
        assert AccessKind.STORE in kinds

    def test_write_back_absorbs_repeated_stores(self):
        """Repeated stores to the same line: write-through sends every one
        to the L2; write-back absorbs all but the first locally."""
        from repro.workloads.trace import trace_kernel

        program = [("store", [5])] * 10 + [("compute", 1)]
        kernel = trace_kernel({(0, 0): list(program), (1, 0): list(program)},
                              mlp_limit=2)
        wt = run_kernel(tiny_gpu(), kernel)
        wb = run_kernel(wb_config(), kernel)
        # DRAM traffic never grows (the shared L2 already dedups repeats),
        # and absorbing the stores locally finishes measurably faster.
        assert wb.dram_reads + wb.dram_writes <= wt.dram_reads + wt.dram_writes
        assert wb.cycles < wt.cycles

    def test_write_back_run_drains_cleanly(self):
        spec = SyntheticKernelSpec(
            name="st", pattern="stream", iterations=6, compute_per_iter=1,
            loads_per_iter=1, stores_per_iter=2, mlp_limit=4)
        gpu = GPU(wb_config(), build_kernel(spec))
        gpu.run(max_cycles=300_000)
        for sm in gpu.sms:
            assert sm.l1.is_idle()
        for l2 in gpu.l2_slices:
            assert l2.is_idle()


class TestActiveWarpLimit:
    def programs(self, n):
        return [[("compute", 2), ("load", [i]), ("compute", 2)]
                for i in range(n)]

    def make_sm(self, limit):
        cfg = tiny_gpu().with_magic_memory(20)
        cfg = dataclasses.replace(
            cfg, core=dataclasses.replace(cfg.core, active_warp_limit=limit))
        return SM(0, cfg, [iter(p) for p in self.programs(4)], 2,
                  RequestFactory())

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoreConfig(active_warp_limit=0)

    def test_limit_caps_concurrent_warps(self):
        sm = self.make_sm(limit=2)
        assert len(sm.scheduler) == 2
        assert len(sm._inactive_warps) == 2

    def test_all_warps_eventually_retire(self):
        sm = self.make_sm(limit=1)
        for cycle in range(2000):
            sm.step(cycle)
            if sm.done:
                break
        assert sm.done

    def test_unlimited_default(self):
        sm = self.make_sm(limit=None)
        assert len(sm.scheduler) == 4

    def test_instructions_identical_under_throttling(self):
        a = self.make_sm(limit=None)
        b = self.make_sm(limit=1)
        for cycle in range(4000):
            if not a.done:
                a.step(cycle)
            if not b.done:
                b.step(cycle)
        assert a.done and b.done
        assert a.instructions == b.instructions


class TestDRAMRefresh:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DRAMConfig(refresh_interval=100, refresh_cycles=100)
        with pytest.raises(ConfigError):
            DRAMConfig(refresh_interval=-1)

    def test_refresh_disabled_by_default(self):
        m_gpu = GPU(tiny_gpu(), build_kernel(SyntheticKernelSpec(
            name="x", pattern="stream", iterations=4, compute_per_iter=1,
            loads_per_iter=1)))
        m_gpu.run(max_cycles=100_000)
        assert all(d.refreshes == 0 for d in m_gpu.dram_channels)

    def test_refresh_fires_and_costs_performance(self):
        spec = SyntheticKernelSpec(
            name="x", pattern="stream", iterations=16, compute_per_iter=1,
            loads_per_iter=2, mlp_limit=6)
        base_cfg = tiny_gpu()
        refresh_cfg = dataclasses.replace(
            base_cfg, dram=dataclasses.replace(
                base_cfg.dram, refresh_interval=200, refresh_cycles=60))
        base = GPU(base_cfg, build_kernel(spec))
        base.run(max_cycles=300_000)
        refreshed = GPU(refresh_cfg, build_kernel(spec))
        refreshed.run(max_cycles=300_000)
        assert sum(d.refreshes for d in refreshed.dram_channels) > 0
        assert refreshed.cycles > base.cycles  # refresh steals bandwidth

    def test_refresh_closes_rows(self):
        from repro.dram.controller import DRAMChannel
        from repro.mem.address import AddressMapper

        cfg = dataclasses.replace(
            tiny_gpu(), dram=dataclasses.replace(
                tiny_gpu().dram, refresh_interval=50, refresh_cycles=10))
        channel = DRAMChannel("d", cfg, AddressMapper(cfg), 0)
        channel.banks[0].open_row = 7
        channel._refresh(100)
        assert channel.banks[0].open_row is None
        assert channel.banks[0].busy_until >= 110
        assert channel._next_refresh > 100
