"""Event-engine equivalence suite.

The event-calendar scheduler (``SimConfig(engine_mode="event")``) is a
pure execution-strategy change: it must produce **byte-identical**
:class:`RunMetrics` to the ticked engine on every benchmark, under magic
memory, for both warp schedulers and for any seed.  The matrix below is
the lock on that contract; the hand-built components underneath pin the
calendar semantics (same-cycle edge visibility, reschedule/cancel,
degradation, mixed clock domains, late registration).
"""

from dataclasses import replace

import pytest

from repro.analysis import Sanitizer
from repro.core.metrics import run_kernel
from repro.gpu import GPU
from repro.sim.clock import ClockDomain
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.config import SimConfig, tiny_gpu
from repro.sim.engine import Simulator
from repro.workloads.suite import BENCHMARKS, get_benchmark

SCALE = 0.2


def _config(memory, scheduler):
    config = tiny_gpu()
    if scheduler != config.core.scheduler:
        config = replace(config, core=replace(config.core, scheduler=scheduler))
    if memory == "magic":
        config = config.with_magic_memory(200)
    return config


def _pair(config, name, seed):
    ticked = run_kernel(
        config, get_benchmark(name, SCALE), seed=seed, engine_mode="ticked"
    )
    event = run_kernel(
        config, get_benchmark(name, SCALE), seed=seed, engine_mode="event"
    )
    return ticked, event


class TestEquivalenceMatrix:
    """8 benchmarks x {normal, magic} x {lrr, gto} x 2 seeds."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("memory", ("normal", "magic"))
    @pytest.mark.parametrize("scheduler", ("lrr", "gto"))
    @pytest.mark.parametrize("seed", (1, 2))
    def test_byte_identical_metrics(self, name, memory, scheduler, seed):
        ticked, event = _pair(_config(memory, scheduler), name, seed)
        assert ticked == event

    def test_event_mode_engages_calendar(self):
        """The event run must actually skip cycles, not fall back."""
        gpu = GPU(
            tiny_gpu(),
            get_benchmark("leukocyte", SCALE),
            sim_config=SimConfig(engine_mode="event"),
        )
        gpu.run(max_cycles=500_000)
        assert gpu.sim.engine_mode == "event"
        assert gpu.sim.cycles_fast_forwarded > 0


class _Sleeper(Component):
    """Wakes at fixed cycles; counts real steps and replayed ticks."""

    def __init__(self, wakes):
        self.wakes = sorted(wakes)
        self.stepped = []
        self.replayed = 0

    def step(self, now):
        self.stepped.append(now)

    def next_wake(self, now):
        for wake in self.wakes:
            if wake >= now:
                return wake
        return WAKE_NEVER

    def fast_forward(self, cycles):
        self.replayed += cycles


class _Mailbox(Component):
    """Steps whenever its inbox is non-empty; optionally replies."""

    def __init__(self, reply_to=None):
        self.inbox = []
        self.reply_to = reply_to
        self.stepped = []
        self.replayed = 0

    def step(self, now):
        if self.inbox:
            self.stepped.append(now)
            self.inbox.clear()
            if self.reply_to is not None:
                self.reply_to.inbox.append(now)

    def next_wake(self, now):
        return now if self.inbox else WAKE_NEVER

    def fast_forward(self, cycles):
        self.replayed += cycles


def _event_sim():
    return Simulator(SimConfig(engine_mode="event"))


class TestCalendarSemantics:
    def test_sleeper_cycles_accounted_exactly_once(self):
        """steps + replayed ticks must cover [0, horizon) with no overlap."""
        sim = _event_sim()
        s = sim.add(_Sleeper([0, 5, 11]))
        sim.run(lambda: sim.cycle >= 11, drain=False)
        assert s.stepped == [0, 5]  # done() fires before cycle 11 runs
        assert len(s.stepped) + s.replayed == 11

    def test_jump_lands_on_earliest_wake(self):
        sim = _event_sim()
        a = sim.add(_Sleeper([0, 10]))
        b = sim.add(_Sleeper([0, 7]))
        sim.run(lambda: sim.cycle >= 7, drain=False)
        # The calendar jumps straight to 7 — the earlier of the two
        # horizons — never to a's later wake at 10.
        assert sim.cycle == 7
        assert sim.cycles_fast_forwarded > 0
        assert a.stepped == b.stepped == [0]
        assert a.replayed == b.replayed == 6

    def test_forward_edge_same_cycle_visibility(self):
        """A consumer registered after its producer sees work the same
        cycle the producer hands it over (ticked registration order)."""
        sim = _event_sim()
        producer = sim.add(_Sleeper([5]))
        consumer = _Mailbox()
        sim.add(consumer)
        sim.add(_Sleeper([8]))  # horizon anchor
        producer.step = (
            lambda now: consumer.inbox.append(now) if now == 5 else None
        )
        sim.connect(producer, consumer, signal=consumer.inbox.__len__)
        sim.run(lambda: sim.cycle >= 8, drain=False)
        assert consumer.stepped == [5]

    def test_backward_edge_next_cycle_repoll(self):
        """Work handed *backward* (to an earlier position) is serviced on
        the next cycle — the calendar must re-poll the consumer."""
        sim = _event_sim()
        left = _Mailbox()
        sim.add(left)
        right = sim.add(_Sleeper([5]))
        sim.add(_Sleeper([8]))  # horizon anchor
        right.step = (
            lambda now: left.inbox.append(now) if now == 5 else None
        )
        sim.connect(right, left, signal=left.inbox.__len__)
        sim.run(lambda: sim.cycle >= 8, drain=False)
        assert left.stepped == [6]

    def test_reschedule_overrides_stale_calendar_entry(self):
        """A wake hint that moves earlier must win over the stale entry."""
        sim = _event_sim()
        mover = sim.add(_Sleeper([0, 40]))
        poker = sim.add(_Sleeper([0, 10]))
        sim.add(_Sleeper([20]))  # horizon anchor
        # After poker's cycle-10 step, mover's wake jumps forward to 12.
        original = poker.step

        def poke(now):
            original(now)
            if now == 10:
                mover.wakes = [12]

        poker.step = poke
        sim.connect(poker, mover)  # unconditional edge: re-poll mover
        sim.run(lambda: sim.cycle >= 20, drain=False)
        assert 12 in mover.stepped
        assert 40 not in mover.stepped

    def test_none_hint_degrades_to_ticked(self):
        """An unhintable component mid-run drops the calendar for good
        while keeping every cycle stepped exactly once."""
        sim = _event_sim()
        hinted = sim.add(_Sleeper([0, 50]))
        unhinted = sim.add(_Sleeper([0, 50]))
        unhinted.next_wake = lambda now: None
        sim.run(lambda: sim.cycle >= 50, drain=False)
        assert sim.fast_forward_enabled is False
        # Every cycle accounted exactly once, no duplicates.
        assert len(hinted.stepped) + hinted.replayed == 50
        assert sorted(set(hinted.stepped)) == hinted.stepped

    def test_observer_forces_ticked_loop(self):
        gpu = GPU(
            tiny_gpu(),
            get_benchmark("sc", SCALE),
            sim_config=SimConfig(engine_mode="event"),
        )
        Sanitizer.attach(gpu, interval=1)
        gpu.run(max_cycles=500_000)
        assert gpu.sim.cycles_fast_forwarded == 0

    def test_slow_clock_domain_ticks_counted(self):
        sim = _event_sim()
        fast = sim.add(_Sleeper([0, 20]))
        slow = sim.add(_Sleeper([0, 20]), ClockDomain("half", period=2))
        sim.run(lambda: sim.cycle >= 20, drain=False)
        assert fast.replayed + len(fast.stepped) == 20
        # The half-rate domain ticks on even cycles only: 10 edges in
        # [0, 20), replayed or stepped.
        assert slow.replayed + len(slow.stepped) == 10

    def test_budget_overrun_raises_at_exact_cycle(self):
        from repro.errors import CycleLimitExceeded

        sim = _event_sim()
        sim.add(_Sleeper([0, 10_000]))
        with pytest.raises(CycleLimitExceeded):
            sim.run(lambda: False, max_cycles=100)
        assert sim.cycle == 100


class TestLateRegistration:
    def test_component_added_mid_run_gets_fast_mode(self):
        """add() after run() started must propagate the active fast flag
        (components cache burst state keyed on it) — and the event
        calendar, whose compiled tables can't cover the newcomer, must
        hand over to the ticked loop instead of never stepping it."""
        sim = _event_sim()
        seen = []

        class _Recorder(_Sleeper):
            def set_fast_mode(self, enabled):
                seen.append(enabled)

        recorder = _Recorder([4])
        trigger = sim.add(_Sleeper([0, 3]))
        original = trigger.step

        def add_late(now):
            original(now)
            if now == 3:
                sim.add(recorder)

        trigger.step = add_late
        sim.run(lambda: sim.cycle >= 6, drain=False)
        assert seen == [True]
        assert 4 in recorder.stepped
