"""Tests for the whole-program static verifier (repro.analysis.static).

Covers: each REP006-REP012 pass firing on its synthetic fixture, inline
suppression in both spellings, baseline load/match/stale/update behavior,
JSON and SARIF schema stability, fingerprint robustness to line drift,
the CLI entry points, and — the acceptance bar — a clean run over the
shipped tree.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static import RULES, analyze_paths
from repro.analysis.static.baseline import Baseline
from repro.analysis.static.finding import Finding
from repro.analysis.static.suppress import codes_suppressed_on
from repro.cli import main as cli_main
from repro.errors import UsageError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "static"
SRC = REPO_ROOT / "src"


def _rules_found(report):
    return {finding.rule for finding in report.active}


def _findings_for(report, rule):
    return [f for f in report.active if f.rule == rule]


class TestPassesOnFixtures:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([str(FIXTURES)])

    @pytest.mark.parametrize(
        "rule", ["REP006", "REP007", "REP008", "REP009", "REP010",
                 "REP011", "REP012"])
    def test_each_rule_fires(self, report, rule):
        findings = _findings_for(report, rule)
        if not findings:
            pytest.fail(f"{rule} produced no findings on its fixture")
        for finding in findings:
            if finding.line <= 0:
                pytest.fail(f"{rule} finding has no line: {finding}")
            if rule not in ("REP012",) and finding.col < 0:
                pytest.fail(f"{rule} finding has no column: {finding}")

    def test_rep006_catches_every_bad_form(self, report):
        messages = " | ".join(
            f.message for f in _findings_for(report, "REP006"))
        for fragment in ("'soon'", "1.5", "boolean", "true-division",
                         "extra required parameter"):
            if fragment not in messages:
                pytest.fail(f"REP006 missed the {fragment} form: {messages}")

    def test_rep008_resolves_transitive_subclasses(self, report):
        paths = {f.path for f in _findings_for(report, "REP008")}
        if not any("rep008_bad_hooks" in p for p in paths):
            pytest.fail("REP008 did not resolve the two-level subclass")

    def test_rep012_reports_upward_and_cycle(self, report):
        messages = [f.message for f in _findings_for(report, "REP012")]
        if not any("must point downward" in m for m in messages):
            pytest.fail(f"no upward-import finding: {messages}")
        if not any("import cycle" in m for m in messages):
            pytest.fail(f"no cycle finding: {messages}")

    def test_sorted_iteration_not_flagged(self, report):
        for finding in _findings_for(report, "REP009"):
            if "fine" in finding.snippet or "sorted(" in finding.snippet:
                pytest.fail(f"sorted() iteration flagged: {finding}")

    def test_findings_sorted_and_rendered(self, report):
        keys = [(f.path, f.line, f.col, f.rule) for f in report.active]
        if keys != sorted(keys):
            pytest.fail("findings are not in (path, line, col) order")
        rendered = report.active[0].render()
        parts = rendered.split(":")
        if len(parts) < 4:
            pytest.fail(f"render() is not file:line:col: message: {rendered}")


class TestCleanTree:
    def test_shipped_src_is_clean_under_baseline(self):
        baseline = Baseline.load(REPO_ROOT / ".repro-static-baseline.json")
        report = analyze_paths([str(SRC)], baseline=baseline)
        if report.active:
            details = "\n".join(f.render() for f in report.active)
            pytest.fail(f"shipped tree has active findings:\n{details}")
        if not report.baselined:
            pytest.fail("expected the sanitizer id() entries to be baselined")
        if report.stale:
            pytest.fail(f"stale baseline entries: {report.stale}")

    def test_rule_registry_covers_all_codes(self):
        expected = {f"REP{n:03d}" for n in range(1, 13)}
        if set(RULES) != expected:
            pytest.fail(f"rule registry mismatch: {sorted(RULES)}")


class TestSuppression:
    def test_spellings(self):
        cases = {
            "x = 1  # repro: noqa[REP009]": {"REP009"},
            "x = 1  # repro: noqa[REP009,REP010]": {"REP009", "REP010"},
            "x = 1  # repro: noqa": {"*"},
            "x = 1  # noqa: REP009": {"REP009"},
            "x = 1  # noqa": {"*"},
            "x = 1": set(),
        }
        for text, want in cases.items():
            got = set(codes_suppressed_on(text))
            if got != want:
                pytest.fail(f"{text!r}: suppressed {got}, want {want}")

    def test_inline_suppression_silences_new_pass(self, tmp_path):
        bad = tmp_path / "repro" / "mem"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text(
            "def f(s):\n"
            "    for x in {1, 2}:  # repro: noqa[REP009]\n"
            "        s.append(x)\n"
        )
        report = analyze_paths([str(tmp_path)])
        if report.active:
            pytest.fail(f"suppressed finding leaked: {report.active}")
        if report.suppressed != 1:
            pytest.fail(f"suppressed count {report.suppressed}, want 1")

    def test_classic_rules_accept_bracket_spelling(self, tmp_path):
        from repro.analysis.lint import lint_source

        source = "import time\nt = time.time()  # repro: noqa[REP001]\n"
        if lint_source(source, "src/repro/x.py"):
            pytest.fail("bracketed suppression ignored by classic lint")

    def test_classic_rep002_exempt_under_tests(self):
        from repro.analysis.lint import lint_source

        source = "def test_x():\n    assert 1 == 1\n"
        if lint_source(source, "tests/test_x.py"):
            pytest.fail("REP002 applied to test code")
        if not lint_source(source, "src/repro/x.py"):
            pytest.fail("REP002 missing on simulator code")


class TestBaseline:
    def _bad_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "mem"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "def f(out):\n"
            "    for x in {1, 2}:\n"
            "        out.append(x)\n"
        )
        return tmp_path

    def test_baselined_findings_do_not_fail(self, tmp_path):
        tree = self._bad_tree(tmp_path)
        first = analyze_paths([str(tree)])
        if len(first.active) != 1:
            pytest.fail(f"fixture should yield 1 finding: {first.active}")

        baseline_path = tmp_path / "baseline.json"
        Baseline.empty().save(baseline_path, first.active)
        baseline = Baseline.load(baseline_path)
        second = analyze_paths([str(tree)], baseline=baseline)
        if second.active:
            pytest.fail(f"baselined finding still active: {second.active}")
        if len(second.baselined) != 1 or second.stale:
            pytest.fail("baseline bookkeeping wrong")

    def test_fingerprint_survives_line_drift(self, tmp_path):
        tree = self._bad_tree(tmp_path)
        first = analyze_paths([str(tree)])
        baseline_path = tmp_path / "baseline.json"
        Baseline.empty().save(baseline_path, first.active)

        # Insert lines above the finding: line number changes, identity
        # must not.
        mod = tree / "repro" / "mem" / "mod.py"
        mod.write_text('"""Docstring pushes everything down."""\n\n\n'
                       + mod.read_text())
        report = analyze_paths(
            [str(tree)], baseline=Baseline.load(baseline_path))
        if report.active:
            pytest.fail("line drift broke the fingerprint match")

    def test_stale_entries_reported_and_expired(self, tmp_path):
        tree = self._bad_tree(tmp_path)
        first = analyze_paths([str(tree)])
        baseline_path = tmp_path / "baseline.json"
        Baseline.empty().save(baseline_path, first.active)

        # Fix the violation; the baseline entry must surface as stale.
        mod = tree / "repro" / "mem" / "mod.py"
        mod.write_text(
            "def f(out):\n"
            "    for x in sorted({1, 2}):\n"
            "        out.append(x)\n"
        )
        baseline = Baseline.load(baseline_path)
        report = analyze_paths([str(tree)], baseline=baseline)
        if report.active or len(report.stale) != 1:
            pytest.fail(f"stale detection wrong: {report.stale}")

        # --update-baseline semantics: rewrite from current findings
        # drops the stale entry.
        count = baseline.save(baseline_path, report.active)
        if count != 0:
            pytest.fail("stale entry survived the baseline rewrite")
        if json.loads(baseline_path.read_text())["entries"]:
            pytest.fail("baseline file still has entries after rewrite")

    def test_update_preserves_justifications(self, tmp_path):
        tree = self._bad_tree(tmp_path)
        first = analyze_paths([str(tree)])
        baseline_path = tmp_path / "baseline.json"
        Baseline.empty().save(baseline_path, first.active)
        data = json.loads(baseline_path.read_text())
        data["entries"][0]["justification"] = "known benign ordering"
        baseline_path.write_text(json.dumps(data))

        baseline = Baseline.load(baseline_path)
        baseline.save(baseline_path, first.active)
        kept = json.loads(baseline_path.read_text())["entries"][0]
        if kept["justification"] != "known benign ordering":
            pytest.fail("justification lost across --update-baseline")

    def test_malformed_baseline_raises_usage_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(UsageError):
            Baseline.load(bad)
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(UsageError):
            Baseline.load(bad)


class TestOutputs:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([str(FIXTURES)])

    def test_json_schema(self, report):
        payload = json.loads(report.render("json"))
        for key in ("version", "tool", "findings", "baselined",
                    "stale_baseline"):
            if key not in payload:
                pytest.fail(f"JSON report missing {key!r}")
        finding = payload["findings"][0]
        for key in ("rule", "severity", "path", "line", "col", "message",
                    "fingerprint"):
            if key not in finding:
                pytest.fail(f"JSON finding missing {key!r}")

    def test_sarif_schema(self, report):
        log = json.loads(report.render("sarif"))
        if log["version"] != "2.1.0":
            pytest.fail(f"SARIF version {log['version']}")
        if "sarif-2.1.0" not in log["$schema"]:
            pytest.fail(f"unexpected $schema {log['$schema']}")
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        rule_ids = {rule["id"] for rule in driver["rules"]}
        if not {"REP001", "REP006", "REP012"} <= rule_ids:
            pytest.fail(f"driver rule table incomplete: {sorted(rule_ids)}")
        result = run["results"][0]
        location = result["locations"][0]["physicalLocation"]
        if result["ruleId"] not in rule_ids:
            pytest.fail("result ruleId not in driver rules")
        if location["region"]["startLine"] < 1:
            pytest.fail("SARIF line numbers must be 1-based")
        if location["region"]["startColumn"] < 1:
            pytest.fail("SARIF column numbers must be 1-based")
        if "reproFingerprint/v1" not in result["partialFingerprints"]:
            pytest.fail("fingerprint missing from SARIF result")

    def test_sarif_marks_baselined_as_suppressed(self, tmp_path):
        shutil.copytree(FIXTURES, tmp_path / "tree")
        first = analyze_paths([str(tmp_path / "tree")])
        baseline_path = tmp_path / "baseline.json"
        Baseline.empty().save(baseline_path, first.active)
        report = analyze_paths(
            [str(tmp_path / "tree")], baseline=Baseline.load(baseline_path))
        log = json.loads(report.render("sarif"))
        results = log["runs"][0]["results"]
        if not results or not all("suppressions" in r for r in results):
            pytest.fail("baselined results not marked suppressed in SARIF")


class TestEntryPoints:
    def test_cli_static_exits_1_on_fixtures(self, capsys):
        code = cli_main(
            ["lint", "--static", str(FIXTURES), "--no-baseline"])
        out = capsys.readouterr().out
        if code != 1:
            pytest.fail(f"exit code {code}, want 1")
        if "REP006" not in out or ":" not in out:
            pytest.fail(f"no file:line findings in output:\n{out}")

    def test_cli_static_clean_on_src_with_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = cli_main(["lint", "--static", "src"])
        capsys.readouterr()
        if code != 0:
            pytest.fail("shipped tree not clean through the CLI")

    def test_cli_writes_sarif_file(self, capsys, tmp_path, monkeypatch):
        out_path = tmp_path / "report.sarif"
        code = cli_main([
            "lint", "--static", str(FIXTURES), "--no-baseline",
            "--format", "sarif", "--output", str(out_path)])
        capsys.readouterr()
        if code != 1:
            pytest.fail(f"exit code {code}, want 1")
        log = json.loads(out_path.read_text())
        if log["version"] != "2.1.0":
            pytest.fail("SARIF file malformed")

    def test_scripts_lint_static(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint.py"),
             "--static", str(FIXTURES), "--no-baseline"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        if proc.returncode != 1:
            pytest.fail(
                f"scripts/lint.py --static exit {proc.returncode}:\n"
                f"{proc.stdout}\n{proc.stderr}")
        if "REP012" not in proc.stdout:
            pytest.fail(f"REP012 missing from output:\n{proc.stdout}")

    def test_classic_lint_still_default(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = cli_main(["lint", "src", "tests", "scripts"])
        capsys.readouterr()
        if code != 0:
            pytest.fail("classic lint over src+tests+scripts not clean")


class TestFindingModel:
    def test_fingerprint_root_independent(self):
        a = Finding("REP009", "src/repro/mem/mod.py", 3, 4, "m", "for x in s:")
        b = Finding("REP009", "repro/mem/mod.py", 9, 4, "m", "for x in s:")
        if a.fingerprint != b.fingerprint:
            pytest.fail("fingerprint depends on the scan root")

    def test_fingerprint_changes_with_content(self):
        a = Finding("REP009", "repro/mem/mod.py", 3, 4, "m", "for x in s:")
        b = Finding("REP009", "repro/mem/mod.py", 3, 4, "m", "for y in s:")
        if a.fingerprint == b.fingerprint:
            pytest.fail("editing the flagged line must change identity")

    def test_severity_defaults(self):
        if Finding("REP006", "p", 1, 0, "m").severity != "error":
            pytest.fail("contract rules should be errors")
        if Finding("REP009", "p", 1, 0, "m").severity != "warning":
            pytest.fail("determinism heuristics should be warnings")
