"""Warp state-machine tests."""

import pytest

from repro.cores.warp import Warp, WarpState
from repro.errors import WorkloadError


def make_warp(instrs, mlp=2, warp_id=0):
    return Warp(warp_id, iter(instrs), mlp)


class TestFetch:
    def test_fetch_returns_instructions_in_order(self):
        w = make_warp([("compute", 3), ("load", [1])])
        assert w.fetch() == ("compute", 3)
        w.consume_pending()
        assert w.fetch() == ("load", [1])

    def test_pending_instruction_sticks_until_consumed(self):
        w = make_warp([("load", [1]), ("compute", 1)])
        assert w.fetch() == ("load", [1])
        assert w.fetch() == ("load", [1])  # structural stall: same instr
        w.consume_pending()
        assert w.fetch() == ("compute", 1)

    def test_fetch_none_at_end(self):
        w = make_warp([])
        assert w.fetch() is None
        assert w.program_done

    def test_invalid_instruction_rejected(self):
        w = make_warp([("jump", 1)])
        with pytest.raises(WorkloadError):
            w.fetch()

    def test_invalid_mlp_rejected(self):
        with pytest.raises(WorkloadError):
            Warp(0, iter([]), 0)


class TestBlocking:
    def test_blocks_at_mlp_limit(self):
        w = make_warp([], mlp=2)
        w.outstanding_loads = 1
        assert not w.should_block()
        w.outstanding_loads = 2
        assert w.should_block()

    def test_membar_blocks_until_drained(self):
        w = make_warp([], mlp=8)
        w.outstanding_loads = 1
        w.at_membar = True
        assert w.should_block()
        w.on_load_complete()
        assert not w.at_membar
        assert not w.should_block()

    def test_membar_with_no_loads_does_not_block(self):
        w = make_warp([], mlp=8)
        w.at_membar = True
        assert not w.should_block()


class TestRetire:
    def test_cannot_retire_with_outstanding_loads(self):
        w = make_warp([])
        w.fetch()
        w.outstanding_loads = 1
        assert not w.can_retire()
        w.on_load_complete()
        assert w.can_retire()

    def test_cannot_retire_with_pending_instr(self):
        w = make_warp([("load", [1])])
        w.fetch()
        assert not w.can_retire()

    def test_cannot_retire_mid_compute(self):
        w = make_warp([])
        w.fetch()
        w.remaining_compute = 2
        assert not w.can_retire()

    def test_fresh_empty_warp_retires(self):
        w = make_warp([])
        w.fetch()
        assert w.can_retire()
        assert w.state is WarpState.READY  # state transition is the SM's job
