"""Event-horizon fast-forward determinism suite.

The optimisation contract is *byte identity*: a run with fast-forward
enabled must produce exactly the same :class:`RunMetrics` — cycles,
instructions, IPC, every per-queue ``full_fraction`` — as the naive
per-cycle loop, on every benchmark, under magic memory, for any seed and
for both warp schedulers.  These tests are the lock on that contract.

Engine-level semantics (wake hints, tick replay, observer gating) are
covered on hand-built components below the workload sweep.
"""

import pytest

from repro.analysis import Sanitizer
from repro.core.metrics import run_kernel
from repro.gpu import GPU
from repro.sim.clock import ClockDomain
from repro.sim.component import WAKE_NEVER, Component
from repro.sim.engine import Simulator
from repro.sim.config import tiny_gpu
from repro.workloads.suite import BENCHMARKS, get_benchmark

SCALE = 0.2


def _pair(config, name, seed=1, **kwargs):
    fast = run_kernel(
        config, get_benchmark(name, SCALE), seed=seed, **kwargs)
    naive = run_kernel(
        config, get_benchmark(name, SCALE), seed=seed,
        fast_forward=False, **kwargs)
    return fast, naive


class TestSuiteDeterminism:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("seed", (1, 2))
    def test_identical_metrics(self, name, seed):
        fast, naive = _pair(tiny_gpu(), name, seed=seed)
        assert fast == naive

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_identical_metrics_magic_memory(self, name):
        fast, naive = _pair(tiny_gpu().with_magic_memory(200), name)
        assert fast == naive

    @pytest.mark.parametrize("name", ("leukocyte", "sc"))
    def test_identical_metrics_gto_scheduler(self, name):
        """GTO bypasses the LRR burst fast paths; identity must still hold."""
        from dataclasses import replace

        base = tiny_gpu()
        config = replace(base, core=replace(base.core, scheduler="gto"))
        fast, naive = _pair(config, name)
        assert fast == naive

    def test_fast_forward_actually_engages(self):
        """The compute-bound benchmark must see real jumps, not a no-op."""
        gpu = GPU(tiny_gpu(), get_benchmark("leukocyte", SCALE))
        gpu.run(max_cycles=500_000)
        assert gpu.sim.cycles_fast_forwarded > 0


class TestObserverGating:
    def test_observer_suspends_fast_forward(self):
        """Observers assume on_cycle fires every cycle: attaching one must
        force the naive loop (no jumps), while leaving results identical."""
        plain = GPU(tiny_gpu(), get_benchmark("sc", SCALE))
        plain.run(max_cycles=500_000)
        observed = GPU(tiny_gpu(), get_benchmark("sc", SCALE))
        Sanitizer.attach(observed, interval=1)
        observed.run(max_cycles=500_000)
        assert observed.sim.cycles_fast_forwarded == 0
        assert observed.cycles == plain.cycles
        assert observed.instructions == plain.instructions

    def test_disabled_flag_forces_naive_loop(self):
        gpu = GPU(tiny_gpu(), get_benchmark("leukocyte", SCALE))
        gpu.sim.fast_forward_enabled = False
        gpu.run(max_cycles=500_000)
        assert gpu.sim.cycles_fast_forwarded == 0


class _Sleeper(Component):
    """Wakes at fixed cycles; counts real steps and replayed ticks."""

    def __init__(self, wakes):
        self.wakes = sorted(wakes)
        self.stepped = []
        self.replayed = 0

    def step(self, now):
        self.stepped.append(now)

    def next_wake(self, now):
        for wake in self.wakes:
            if wake >= now:
                return wake
        return WAKE_NEVER

    def fast_forward(self, cycles):
        self.replayed += cycles


class TestEngineSemantics:
    def test_jump_lands_on_joint_horizon(self):
        sim = Simulator()
        a = sim.add(_Sleeper([0, 10]))
        b = sim.add(_Sleeper([0, 7]))
        sim.run(lambda: sim.cycle >= 7, drain=False)
        # Cycle 0 steps naively (both wake there); after the retry
        # cooldown the engine jumps straight to 7 — the earlier of the two
        # horizons — never to a's later wake at 10.
        assert sim.cycle == 7
        assert sim.cycles_fast_forwarded > 0
        assert a.stepped == b.stepped  # lockstep: same naive cycles
        assert a.replayed == b.replayed == 7 - len(a.stepped)

    def test_replay_plus_steps_cover_every_cycle(self):
        sim = Simulator()
        s = sim.add(_Sleeper([0, 5, 11]))
        sim.run(lambda: sim.cycle >= 11, drain=False)
        assert len(s.stepped) + s.replayed == 11

    def test_none_hint_disables_fast_forward_for_good(self):
        sim = Simulator()
        hinted = sim.add(_Sleeper([0, 50]))
        unhinted = sim.add(_Sleeper([0, 50]))
        unhinted.next_wake = lambda now: None
        sim.run(lambda: sim.cycle >= 50, drain=False)
        assert sim.fast_forward_enabled is False
        assert hinted.replayed == 0  # every cycle stepped naively
        assert len(hinted.stepped) == 50

    def test_slow_clock_replay_counts_domain_ticks(self):
        """A period-2 component's fast_forward gets its own tick count."""
        sim = Simulator()
        fast = sim.add(_Sleeper([0, 20]))
        slow = sim.add(_Sleeper([0, 20]), ClockDomain("half", period=2))
        sim.run(lambda: sim.cycle >= 20, drain=False)
        assert fast.replayed + len(fast.stepped) == 20
        # The half-rate domain ticks on even cycles only: 10 edges in
        # [0, 20), replayed or stepped.
        assert slow.replayed + len(slow.stepped) == 10

    def test_budget_overrun_fires_at_naive_cycle(self):
        from repro.errors import CycleLimitExceeded

        sim = Simulator()
        sim.add(_Sleeper([0, 10_000]))
        with pytest.raises(CycleLimitExceeded):
            sim.run(lambda: False, max_cycles=100)
        assert sim.cycle == 100  # horizon clamped to the budget
