"""Warp scheduler (LRR / GTO) tests."""

import pytest

from repro.cores.scheduler import GTOScheduler, LRRScheduler, make_warp_scheduler
from repro.cores.warp import Warp
from repro.errors import ConfigError


def warps(n):
    return [Warp(i, iter([]), 1) for i in range(n)]


class TestPoolMaintenance:
    @pytest.mark.parametrize("cls", [LRRScheduler, GTOScheduler])
    def test_add_remove_contains(self, cls):
        sched = cls()
        a, b = warps(2)
        sched.add(a)
        sched.add(b)
        assert sched.contains(a) and len(sched) == 2
        sched.remove(a)
        assert not sched.contains(a) and len(sched) == 1

    @pytest.mark.parametrize("cls", [LRRScheduler, GTOScheduler])
    def test_add_is_idempotent(self, cls):
        sched = cls()
        (a,) = warps(1)
        sched.add(a)
        sched.add(a)
        assert len(sched) == 1
        assert len(sched.candidates()) == 1

    @pytest.mark.parametrize("cls", [LRRScheduler, GTOScheduler])
    def test_remove_absent_is_noop(self, cls):
        sched = cls()
        (a,) = warps(1)
        sched.remove(a)
        assert len(sched) == 0


class TestLRR:
    def test_rotation_after_issue(self):
        sched = LRRScheduler()
        a, b, c = warps(3)
        for w in (a, b, c):
            sched.add(w)
        assert sched.candidates()[0] is a
        sched.issued(a)
        assert sched.candidates()[0] is b
        sched.issued(b)
        assert sched.candidates()[0] is c

    def test_issue_from_middle_moves_to_back(self):
        sched = LRRScheduler()
        a, b, c = warps(3)
        for w in (a, b, c):
            sched.add(w)
        sched.issued(b)  # b issued while not at the front
        order = sched.candidates()
        assert order[-1] is b


class TestGTO:
    def test_greedy_prefers_current_warp(self):
        sched = GTOScheduler()
        a, b, c = warps(3)
        for w in (a, b, c):
            sched.add(w)
        sched.issued(b)
        assert sched.candidates()[0] is b

    def test_falls_back_to_oldest_when_current_leaves(self):
        sched = GTOScheduler()
        a, b, c = warps(3)
        for w in (a, b, c):
            sched.add(w)
        sched.issued(c)
        sched.remove(c)
        assert sched.candidates()[0] is a  # oldest = lowest id

    def test_candidates_sorted_by_age(self):
        sched = GTOScheduler()
        a, b, c = warps(3)
        for w in (c, a, b):
            sched.add(w)
        assert [w.warp_id for w in sched.candidates()] == [0, 1, 2]


def test_factory():
    assert make_warp_scheduler("lrr").name == "lrr"
    assert make_warp_scheduler("gto").name == "gto"
    with pytest.raises(ConfigError):
        make_warp_scheduler("fifo")
