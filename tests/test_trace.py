"""Trace record/replay tests."""

import pytest

from repro.core.metrics import run_kernel
from repro.cores.coalescer import strided_lanes, unit_stride_lanes
from repro.errors import WorkloadError
from repro.sim.config import tiny_gpu
from repro.workloads.suite import get_benchmark
from repro.workloads.trace import (
    coalesce_lane_trace,
    load_trace,
    parse_trace,
    record_program,
    save_trace,
    trace_kernel,
)

SAMPLE = """
# sample trace
warp 0 0
c 4
l 16 17
s 0x20
m
warp 0 1
l 5
"""


class TestParse:
    def test_parse_sample(self):
        programs = parse_trace(SAMPLE)
        assert programs[(0, 0)] == [
            ("compute", 4),
            ("load", [16, 17]),
            ("store", [32]),
            ("membar",),
        ]
        assert programs[(0, 1)] == [("load", [5])]

    def test_comments_and_blank_lines_ignored(self):
        assert parse_trace("# only a comment\n\n") == {}

    def test_instruction_before_warp_header(self):
        with pytest.raises(WorkloadError):
            parse_trace("c 4\n")

    def test_unknown_op(self):
        with pytest.raises(WorkloadError):
            parse_trace("warp 0 0\nx 1\n")

    def test_malformed_arguments(self):
        with pytest.raises(WorkloadError):
            parse_trace("warp 0 0\nc banana\n")


class TestRoundTrip:
    def test_record_then_parse_preserves_programs(self):
        kernel = get_benchmark("cfd", 0.1)
        text = record_program(kernel, n_sms=2, warps_per_sm=2, seed=5)
        programs = parse_trace(text)
        for sm in range(2):
            for warp in range(2):
                original = list(kernel.instantiate(sm, warp, 5))
                assert programs[(sm, warp)] == original

    def test_replay_matches_original_run(self):
        """Replaying a recorded trace reproduces the original simulation
        cycle for cycle."""
        cfg = tiny_gpu()
        kernel = get_benchmark("nn", 0.1)
        text = record_program(
            kernel, cfg.core.n_sms, cfg.core.warps_per_sm, seed=1)
        replay = trace_kernel(
            parse_trace(text), mlp_limit=kernel.mlp_limit)
        original = run_kernel(cfg, kernel, seed=1)
        replayed = run_kernel(cfg, replay, seed=1)
        assert replayed.cycles == original.cycles
        assert replayed.instructions == original.instructions

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, SAMPLE)
        assert load_trace(path) == parse_trace(SAMPLE)

    def test_missing_warp_gets_empty_program(self):
        kernel = trace_kernel(parse_trace(SAMPLE))
        assert list(kernel.instantiate(7, 7, 1)) == []


class TestLaneTrace:
    def test_coalesce_lane_trace(self):
        accesses = [
            ("load", unit_stride_lanes(0)),
            ("store", strided_lanes(0, 256)),
        ]
        instructions, coalescer = coalesce_lane_trace(
            accesses, line_bytes=128, compute_between=2)
        assert instructions[0] == ("compute", 2)
        assert instructions[1] == ("load", [0])
        assert instructions[3][0] == "store"
        assert len(instructions[3][1]) == 32
        assert coalescer.stats.accesses == 2

    def test_masked_access_dropped(self):
        instructions, _ = coalesce_lane_trace(
            [("load", [None] * 4)], line_bytes=128)
        assert instructions == []

    def test_bad_kind(self):
        with pytest.raises(WorkloadError):
            coalesce_lane_trace([("atomic", [0])], line_bytes=128)

    def test_lane_trace_runs_on_gpu(self):
        accesses = [("load", unit_stride_lanes(i * 512)) for i in range(8)]
        instructions, _ = coalesce_lane_trace(
            accesses, line_bytes=128, compute_between=1)
        kernel = trace_kernel({(0, 0): instructions}, mlp_limit=2)
        metrics = run_kernel(tiny_gpu(), kernel)
        assert metrics.instructions == len(instructions)
