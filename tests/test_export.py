"""CSV/JSON export tests."""

import csv
import io
import json

from repro.core.explorer import explore_design_space
from repro.core.latency_profile import profile_latency_tolerance
from repro.core.metrics import run_kernel
from repro.sim.config import tiny_gpu
from repro.core.export import (
    exploration_to_dict,
    exploration_to_json,
    metrics_to_csv,
    metrics_to_dict,
    profile_to_csv,
    write_text,
)
from repro.workloads.suite import get_benchmark


class TestMetricsExport:
    def test_metrics_to_dict_flattens_queues(self):
        m = run_kernel(tiny_gpu(), get_benchmark("nn", 0.1))
        d = metrics_to_dict(m)
        assert d["benchmark"] == "nn"
        assert "l2_accessq_full_fraction" in d
        assert "dram_schedq_rejections" in d
        assert all(not isinstance(v, dict) for v in d.values())

    def test_metrics_to_csv_round_trip(self):
        runs = [
            run_kernel(tiny_gpu(), get_benchmark(n, 0.1))
            for n in ("nn", "leukocyte")
        ]
        text = metrics_to_csv(runs)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert [r["benchmark"] for r in rows] == ["nn", "leukocyte"]
        assert float(rows[0]["ipc"]) > 0

    def test_empty_runs(self):
        assert metrics_to_csv([]) == ""


class TestProfileExport:
    def test_profile_to_csv(self):
        profile = profile_latency_tolerance(
            "nn", tiny_gpu(), latencies=(0, 200), iteration_scale=0.1)
        rows = list(csv.DictReader(io.StringIO(profile_to_csv(profile))))
        assert [int(r["latency"]) for r in rows] == [0, 200]
        assert float(rows[0]["normalized_ipc"]) > float(
            rows[1]["normalized_ipc"])


class TestExplorationExport:
    def test_exploration_round_trips_through_json(self):
        result = explore_design_space(
            tiny_gpu(), benchmarks=("leukocyte",),
            configs={"baseline": (), "l2": ("l2",)}, iteration_scale=0.1)
        data = json.loads(exploration_to_json(result))
        assert data["benchmarks"] == ["leukocyte"]
        assert "l2" in data["speedups"]
        assert data["speedups"]["l2"]["leukocyte"] > 0
        assert data == exploration_to_dict(result)


class TestWriteText:
    def test_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.csv"
        write_text(target, "x,y\n1,2\n")
        assert target.read_text().startswith("x,y")


class TestUtilsExportShim:
    """The historical repro.utils.export location keeps forwarding."""

    def test_forwards_moved_exporters(self):
        from repro.core import export as core_export
        from repro.utils import export as utils_export

        assert utils_export.metrics_to_dict is core_export.metrics_to_dict
        assert utils_export.profile_to_csv is core_export.profile_to_csv
        assert utils_export.exploration_to_json is core_export.exploration_to_json

    def test_unknown_attribute_still_raises(self):
        import pytest

        from repro.utils import export as utils_export

        with pytest.raises(AttributeError):
            utils_export.no_such_exporter
