"""Simulation engine and clock-domain tests."""

import pytest

from repro.errors import ConfigError, CycleLimitExceeded, SimulationError
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.engine import Simulator


class Ticker(Component):
    """Records the cycles at which it was stepped."""

    def __init__(self, idle_after=None):
        self.ticks = []
        self.idle_after = idle_after
        self.finalized_at = None

    def step(self, now):
        self.ticks.append(now)

    def is_idle(self):
        if self.idle_after is None:
            return True
        return len(self.ticks) >= self.idle_after

    def finalize(self, now):
        self.finalized_at = now


class TestClockDomain:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ClockDomain("x", period=0)
        with pytest.raises(ConfigError):
            ClockDomain("x", period=2, phase=2)

    def test_ticks(self):
        clk = ClockDomain("half", period=2)
        assert [c for c in range(6) if clk.ticks(c)] == [0, 2, 4]

    def test_phase(self):
        clk = ClockDomain("half", period=2, phase=1)
        assert [c for c in range(6) if clk.ticks(c)] == [1, 3, 5]


class TestSimulator:
    def test_step_order_is_registration_order(self):
        sim = Simulator()
        order = []

        class Probe(Component):
            def __init__(self, tag):
                self.tag = tag

            def step(self, now):
                order.append(self.tag)

        sim.add(Probe("a"))
        sim.add(Probe("b"))
        sim.step()
        assert order == ["a", "b"]

    def test_slow_clock_component(self):
        sim = Simulator()
        fast = Ticker()
        slow = Ticker()
        sim.add(fast)
        sim.add(slow, ClockDomain("half", period=2))
        for _ in range(6):
            sim.step()
        assert fast.ticks == list(range(6))
        assert slow.ticks == [0, 2, 4]

    def test_slow_clock_preserves_order_within_shared_cycles(self):
        """The per-residue dispatch lists must keep registration order on
        the cycles where both domains tick (the one-hop-per-cycle
        contract), and skip the period-2 component on odd cycles."""
        sim = Simulator()
        order = []

        class Probe(Component):
            def __init__(self, tag):
                self.tag = tag

            def step(self, now):
                order.append((now, self.tag))

        sim.add(Probe("fast"))
        sim.add(Probe("slow"), ClockDomain("half", period=2))
        sim.add(Probe("tail"))
        for _ in range(4):
            sim.step()
        assert order == [
            (0, "fast"), (0, "slow"), (0, "tail"),
            (1, "fast"), (1, "tail"),
            (2, "fast"), (2, "slow"), (2, "tail"),
            (3, "fast"), (3, "tail"),
        ]

    def test_phase_offset_dispatch(self):
        sim = Simulator()
        t = Ticker()
        sim.add(t, ClockDomain("odd", period=2, phase=1))
        for _ in range(6):
            sim.step()
        assert t.ticks == [1, 3, 5]

    def test_pathological_hyperperiod_falls_back_to_scan(self):
        """A hyperperiod beyond the dispatch-table cap still steps
        correctly via the per-entry scan."""
        sim = Simulator()
        t = Ticker()
        sim.add(t, ClockDomain("huge", period=5000))
        for _ in range(3):
            sim.step()
        assert sim._dispatch is None  # table declined, scan path active
        assert t.ticks == [0]

    def test_run_until_done(self):
        sim = Simulator()
        t = Ticker()
        sim.add(t)
        finished = sim.run(lambda: len(t.ticks) >= 5)
        assert finished == 5

    def test_run_drains_to_idle(self):
        sim = Simulator()
        t = Ticker(idle_after=10)
        sim.add(t)
        finished = sim.run(lambda: len(t.ticks) >= 3)
        assert finished == 3
        assert sim.cycle == 10  # drained past "done"
        assert t.finalized_at == 10

    def test_cycle_limit_raises(self):
        sim = Simulator()
        sim.add(Ticker())
        with pytest.raises(CycleLimitExceeded):
            sim.run(lambda: False, max_cycles=50)

    def test_finalize_idempotent_and_run_after_finalize_rejected(self):
        sim = Simulator()
        t = Ticker()
        sim.add(t)
        sim.run(lambda: True)
        sim.finalize()
        with pytest.raises(SimulationError):
            sim.run(lambda: True)

    def test_add_after_start_resets_fast_path(self):
        sim = Simulator()
        a = Ticker()
        sim.add(a)
        sim.step()
        b = Ticker()
        sim.add(b)
        sim.step()
        assert b.ticks == [1]


class TestComponentDefaults:
    def test_base_component_contract(self):
        c = Component()
        with pytest.raises(NotImplementedError):
            c.step(0)
        assert c.is_idle()
        c.finalize(0)  # no-op by default

    def test_components_property_in_order(self):
        sim = Simulator()
        a, b = Ticker(), Ticker()
        sim.add(a)
        sim.add(b)
        assert sim.components == [a, b]
