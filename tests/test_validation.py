"""Validation-report tests.

The structural behaviour is unit-tested with synthetic checks; the full
battery runs once on the tiny config to verify it executes end to end
(claim verdicts at tiny scale are informational — the authoritative run
is the benchmark harness on the default config).
"""

import pytest

from repro.core.validation import (
    Check,
    ValidationReport,
    validate_reproduction,
)
from repro.sim.config import tiny_gpu


class TestReportStructure:
    def test_all_pass(self):
        report = ValidationReport(checks=(Check("x", True, "e"),))
        assert report.passed
        assert report.failures == []
        assert "REPRODUCED" in report.to_table()

    def test_failure_detected(self):
        report = ValidationReport(
            checks=(Check("x", True, "e"), Check("y", False, "bad")))
        assert not report.passed
        assert [c.name for c in report.failures] == ["y"]
        assert "NOT REPRODUCED" in report.to_table()

    def test_table_lists_every_check(self):
        report = ValidationReport(
            checks=(Check("alpha", True, "1"), Check("beta", False, "2")))
        table = report.to_table()
        assert "alpha" in table and "beta" in table
        assert "PASS" in table and "FAIL" in table


class TestFullBattery:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_reproduction(
            tiny_gpu(), iteration_scale=0.15, latencies=(0, 300, 800))

    def test_all_nine_checks_present(self, report):
        assert [c.name for c in report.checks] == [
            "fig1_curves_fall",
            "fig1_compute_flat",
            "fig1_intercepts_high",
            "sec3_l2_congested",
            "sec3_dram_congested",
            "sec4_l2_dominates",
            "sec4_superadditive",
            "sec4_l1_backfires",
            "sec4_cache_beats_dram",
        ]

    def test_every_check_has_evidence(self, report):
        assert all(c.evidence for c in report.checks)

    def test_fig1_structural_checks_hold_even_at_tiny_scale(self, report):
        by_name = {c.name: c for c in report.checks}
        assert by_name["fig1_curves_fall"].passed
        assert by_name["fig1_compute_flat"].passed
