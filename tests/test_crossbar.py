"""Crossbar tests: routing, bandwidth, arbitration, back-pressure."""

import dataclasses

from repro.icnt.crossbar import Crossbar, PacketSink
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import GPUConfig, ICNTConfig


def make_xbar(n_in=2, n_out=2, flit_bytes=4, lanes=8, sink_capacity=100,
              payload=True):
    cfg = dataclasses.replace(
        GPUConfig(),
        icnt=ICNTConfig(flit_bytes=flit_bytes, channel_lanes=lanes),
    )
    sources = [StatQueue(f"src{i}", 64) for i in range(n_in)]
    outputs = [StatQueue(f"dst{o}", sink_capacity) for o in range(n_out)]
    sinks = [
        PacketSink(
            can_accept=(lambda q: lambda _r: q.can_push())(q),
            accept=(lambda q: lambda r, now: q.push(r, now))(q),
        )
        for q in outputs
    ]
    xbar = Crossbar(
        "x",
        cfg,
        sources=sources,
        sinks=sinks,
        route=lambda r: r.line % n_out,
        flit_count=lambda r: cfg.response_flits(payload),
        stamp_hop="icnt",
    )
    return xbar, sources, outputs, cfg


def req(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=0)


class TestTransfer:
    def test_single_packet_takes_transfer_cycles(self):
        xbar, sources, outputs, cfg = make_xbar()
        cycles = cfg.response_transfer_cycles(True)
        sources[0].push(req(0, 0), 0)
        for c in range(cycles - 1):
            xbar.step(c)
            assert outputs[0].empty
        xbar.step(cycles - 1)
        assert len(outputs[0]) == 1

    def test_single_flit_packet_delivers_first_cycle(self):
        xbar, sources, outputs, _ = make_xbar(payload=False)
        sources[0].push(req(0, 0), 0)
        xbar.step(0)
        assert len(outputs[0]) == 1

    def test_routing_by_destination(self):
        xbar, sources, outputs, _ = make_xbar(payload=False)
        sources[0].push(req(0, 0), 0)
        sources[0].push(req(1, 1), 0)
        for c in range(4):
            xbar.step(c)
        assert len(outputs[0]) == 1 and len(outputs[1]) == 1

    def test_parallel_transfers_on_distinct_ports(self):
        xbar, sources, outputs, _ = make_xbar(payload=False)
        sources[0].push(req(0, 0), 0)
        sources[1].push(req(1, 1), 0)
        xbar.step(0)
        assert len(outputs[0]) == 1 and len(outputs[1]) == 1


class TestArbitration:
    def test_output_contention_serializes(self):
        xbar, sources, outputs, cfg = make_xbar()
        cycles = cfg.response_transfer_cycles(True)
        sources[0].push(req(0, 0), 0)
        sources[1].push(req(1, 0), 0)  # same destination
        for c in range(2 * cycles):
            xbar.step(c)
        assert len(outputs[0]) == 2
        assert xbar.packets_delivered == 2

    def test_round_robin_fairness(self):
        """With persistent contention every input gets served."""
        xbar, sources, outputs, cfg = make_xbar(n_in=2, payload=False)
        for i in range(10):
            sources[0].push(req(100 + i, 0), 0)
            sources[1].push(req(200 + i, 0), 0)
        for c in range(40):
            xbar.step(c)
        rids = [r.rid for r in outputs[0]]
        from_a = sum(1 for r in rids if r < 200)
        from_b = sum(1 for r in rids if r >= 200)
        assert from_a == from_b == 10

    def test_input_serves_one_output_at_a_time(self):
        xbar, sources, outputs, cfg = make_xbar()
        cycles = cfg.response_transfer_cycles(True)
        sources[0].push(req(0, 0), 0)
        sources[0].push(req(1, 1), 0)
        for c in range(cycles):
            xbar.step(c)
        # Wormhole: second packet had to wait for the first to finish.
        assert len(outputs[0]) == 1
        assert outputs[1].empty


class TestBackPressure:
    def test_full_sink_blocks_tail_flit(self):
        xbar, sources, outputs, cfg = make_xbar(sink_capacity=1)
        cycles = cfg.response_transfer_cycles(True)
        sources[0].push(req(0, 0), 0)
        sources[1].push(req(1, 0), 0)
        for c in range(3 * cycles):
            xbar.step(c)
        assert len(outputs[0]) == 1  # second packet blocked
        assert xbar.delivery_blocked_cycles > 0
        outputs[0].pop(100)
        for c in range(100, 100 + 2 * cycles):
            xbar.step(c)
        assert len(outputs[0]) == 1  # drained after space freed

    def test_source_drains_into_input_fifo(self):
        xbar, sources, outputs, cfg = make_xbar()
        for i in range(cfg.icnt.input_queue_pkts + 3):
            sources[0].push(req(i, 0), 0)
        xbar.step(0)
        # Input FIFO holds its capacity; the remainder stays in the source.
        assert len(sources[0]) == 3
        # As packets deliver, the FIFO refills from the source.
        for c in range(1, 60):
            xbar.step(c)
        assert sources[0].empty
        assert len(outputs[0]) == cfg.icnt.input_queue_pkts + 3

    def test_is_idle(self):
        xbar, sources, outputs, cfg = make_xbar(payload=False)
        assert xbar.is_idle()
        sources[0].push(req(0, 0), 0)
        xbar._inject(0)
        assert not xbar.is_idle()


class TestStats:
    def test_utilization_bounded(self):
        xbar, sources, outputs, _ = make_xbar()
        for i in range(6):
            sources[i % 2].push(req(i, i % 2), 0)
        for c in range(60):
            xbar.step(c)
        assert 0.0 <= xbar.utilization <= 1.0

    def test_hop_timestamps(self):
        xbar, sources, outputs, _ = make_xbar(payload=False)
        r = req(0, 0)
        sources[0].push(r, 0)
        xbar.step(5)
        assert r.timestamps["icnt_in"] == 5
        assert r.timestamps["icnt_out"] == 5
