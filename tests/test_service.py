"""Service tests: wire protocol, daemon lifecycle (coalescing, bounded
queue, drain, cancel), results byte-identity against a local export, and
the socket transports.

The daemon coalesces by submission id *before* its workers start, so
most lifecycle tests construct a :class:`ReproDaemon` without calling
``start()`` — submissions pile up deterministically in the queue and the
test controls exactly when simulation begins.  Socket tests run the real
accept loop in a thread over a unix socket in ``tmp_path``.
"""

import dataclasses
import threading

import pytest

from repro.core.export import runs_to_text
from repro.errors import ReproError, UsageError
from repro.runner import BatchRunner
from repro.runner.cache import _read_jsonl
from repro.service import (
    ReproDaemon,
    ServiceClient,
    ServiceError,
    ServiceServer,
    build_jobs,
    submission_id,
    sweep_spec,
)
from repro.service.daemon import CANCELLED, DONE, QUEUED, TERMINAL
from repro.service.protocol import decode_line, encode_line

#: Cheap sweep: tiny config, one benchmark, heavily scaled down.
SCALE = 0.05


def _spec(**overrides):
    defaults = dict(
        config="tiny", benchmarks=["nn"], seeds=[1], scale=SCALE)
    defaults.update(overrides)
    return sweep_spec(**defaults)


def _daemon(tmp_path, **overrides):
    defaults = dict(workers=1, jobs=1)
    defaults.update(overrides)
    return ReproDaemon(tmp_path / "state", **defaults)


def _event_kinds(submission):
    return [
        record.get("event")
        for record in _read_jsonl(submission.events_path)
    ]


class TestProtocol:
    def test_submission_id_is_content_addressed(self):
        keys = ["a" * 64, "b" * 64]
        assert submission_id(keys) == submission_id(list(keys))
        assert submission_id(keys) != submission_id(keys[:1])
        assert submission_id(keys) != submission_id(keys[::-1])
        assert len(submission_id(keys)) == 24

    def test_build_jobs_sweep_matrix(self):
        jobs = build_jobs(sweep_spec(
            config="tiny", benchmarks=["nn", "nw"], seeds=[1, 2],
            scale=SCALE))
        assert len(jobs) == 4
        assert {job.kernel_name for job in jobs} == {"nn", "nw"}
        assert {job.seed for job in jobs} == {1, 2}
        assert all(job.iteration_scale == SCALE for job in jobs)

    def test_build_jobs_rejects_malformed_specs(self):
        for bad in (
            {},  # neither sweep nor jobs
            {"sweep": {}, "jobs": []},  # both
            {"sweep": []},  # wrong type
            {"jobs": []},  # empty
            {"sweep": {"benchmarks": []}},  # empty sweep axis
            {"sweep": {"config": "warehouse-scale"}},  # unknown name
        ):
            with pytest.raises(ServiceError) as err:
                build_jobs(bad)
            assert err.value.code == "bad-request"

    def test_explicit_jobs_roundtrip_config_dicts(self):
        sweep_jobs = build_jobs(_spec())
        explicit = build_jobs({"jobs": [{
            "config": dataclasses.asdict(sweep_jobs[0].config),
            "kernel": "nn",
            "seed": 1,
            "iteration_scale": SCALE,
            "max_cycles": sweep_jobs[0].max_cycles,
        }]})
        assert explicit[0].key() == sweep_jobs[0].key()

    def test_line_codec_roundtrip_and_junk(self):
        payload = {"op": "submit", "spec": {"sweep": {"seeds": [1]}}}
        assert decode_line(encode_line(payload)) == payload
        with pytest.raises(ServiceError) as err:
            decode_line(b"not json\n")
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError):
            decode_line(b"[1,2,3]\n")

    def test_error_payload_survives_round_trip(self):
        error = ServiceError("queue-full", "try later")
        clone = ServiceError.from_payload(error.to_payload())
        assert (clone.code, str(clone)) == ("queue-full", "try later")
        # Unknown codes collapse to 'internal' rather than propagating.
        assert ServiceError("made-up", "x").code == "internal"
        assert isinstance(error, ReproError)


class TestDaemonLifecycle:
    def test_identical_submissions_coalesce_to_one_pass(self, tmp_path):
        daemon = _daemon(tmp_path)
        first = daemon.submit(_spec())
        second = daemon.submit(_spec())
        assert first["id"] == second["id"]
        assert (first["coalesced"], second["coalesced"]) == (False, True)
        assert second["clients"] == 2
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        status = daemon.status(first["id"])
        assert status["state"] == DONE
        submission = daemon._get(first["id"])
        kinds = _event_kinds(submission)
        # Exactly one simulation pass: one submission_start, and one
        # job_finish per unique job despite two client submits.
        assert kinds.count("submission_start") == 1
        assert kinds.count("job_finish") == len(submission.keys) == 1
        daemon.stop(timeout=10)

    def test_duplicate_jobs_inside_a_spec_dedupe(self, tmp_path):
        daemon = _daemon(tmp_path)
        status = daemon.submit(_spec(seeds=[1, 1, 1]))
        assert status["total"] == 1

    def test_queue_full_is_a_typed_rejection(self, tmp_path):
        daemon = _daemon(tmp_path, queue_depth=1)
        daemon.submit(_spec(seeds=[1]))
        with pytest.raises(ServiceError) as err:
            daemon.submit(_spec(seeds=[2]))
        assert err.value.code == "queue-full"
        # An identical spec still coalesces — it needs no queue slot.
        assert daemon.submit(_spec(seeds=[1]))["coalesced"] is True

    def test_drain_rejects_new_but_finishes_queued(self, tmp_path):
        daemon = _daemon(tmp_path)
        queued = daemon.submit(_spec())
        daemon.drain()
        with pytest.raises(ServiceError) as err:
            daemon.submit(_spec(seeds=[2]))
        assert err.value.code == "draining"
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        assert daemon.status(queued["id"])["state"] == DONE
        daemon.stop(timeout=10)

    def test_cancel_queued_submission(self, tmp_path):
        daemon = _daemon(tmp_path)  # workers never started
        queued = daemon.submit(_spec())
        cancelled = daemon.cancel(queued["id"])
        assert cancelled["state"] == CANCELLED
        with pytest.raises(ServiceError) as err:
            daemon.results(queued["id"])
        assert err.value.code == "not-done"
        # A fresh submit re-attempts under the same id.
        assert daemon.submit(_spec())["state"] == QUEUED

    def test_unknown_id_and_bad_ops_are_typed(self, tmp_path):
        daemon = _daemon(tmp_path)
        with pytest.raises(ServiceError) as err:
            daemon.status("feedfacedeadbeefcafe0123")
        assert err.value.code == "unknown-job"
        with pytest.raises(ServiceError) as err:
            daemon.handle({"op": "selfdestruct"})
        assert err.value.code == "bad-request"

    def test_failed_submission_reports_error(self, tmp_path):
        daemon = _daemon(tmp_path, retries=0)
        # Benchmark names resolve at execute time, so the submission is
        # accepted and then fails inside the batch runner.
        status = daemon.submit(_spec(benchmarks=["bogus"]))
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        final = daemon.status(status["id"])
        assert final["state"] == "failed" and final["error"]
        daemon.stop(timeout=10)

    def test_live_submission_keys_survive_eviction(self, tmp_path):
        daemon = _daemon(tmp_path)
        status = daemon.submit(_spec())
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        submission = daemon._get(status["id"])
        # The store's evict guard covers live submissions: even an
        # evict-everything request must not remove their results.
        assert daemon.cache.evict(0) == []
        assert all(daemon.cache.contains(key) for key in submission.keys)
        daemon.stop(timeout=10)


class TestDaemonResults:
    def test_results_match_local_export_bytes(self, tmp_path):
        spec = _spec(seeds=[1, 2])
        serial_jobs = build_jobs(spec)
        serial_csv = runs_to_text(
            BatchRunner(jobs=1).run(serial_jobs), "csv")
        serial_json = runs_to_text(
            BatchRunner(jobs=1).run(serial_jobs), "json")

        daemon = _daemon(tmp_path)
        status = daemon.submit(spec)
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        assert daemon.results(status["id"], "csv")["text"] == serial_csv
        assert daemon.results(status["id"], "json")["text"] == serial_json
        daemon.stop(timeout=10)

    def test_results_detect_a_cleared_store(self, tmp_path):
        daemon = _daemon(tmp_path)
        status = daemon.submit(_spec())
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        daemon.cache.clear()
        with pytest.raises(ServiceError) as err:
            daemon.results(status["id"])
        assert err.value.code == "incomplete"
        daemon.stop(timeout=10)

    def test_resubmit_after_done_is_a_cache_hit(self, tmp_path):
        daemon = _daemon(tmp_path)
        first = daemon.submit(_spec())
        daemon.start()
        assert daemon.wait_idle(timeout=300)
        again = daemon.submit(_spec())
        assert again["coalesced"] is True
        assert again["state"] == DONE
        assert again["done"] == again["total"]
        daemon.stop(timeout=10)
        assert first["id"] == again["id"]


class TestSocketTransport:
    def _serve(self, tmp_path, **daemon_overrides):
        daemon = _daemon(tmp_path, **daemon_overrides)
        server = ServiceServer(daemon, socket_path=tmp_path / "svc.sock")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(socket_path=tmp_path / "svc.sock")
        deadline = 100
        for _ in range(deadline):
            try:
                client.ping()
                break
            except ServiceError:
                threading.Event().wait(0.05)
        return daemon, server, thread, client

    def test_server_needs_exactly_one_transport(self, tmp_path):
        daemon = _daemon(tmp_path)
        with pytest.raises(UsageError):
            ServiceServer(daemon)
        with pytest.raises(UsageError):
            ServiceServer(daemon, socket_path=tmp_path / "s", port=0)
        with pytest.raises(UsageError):
            ServiceClient()

    def test_concurrent_clients_share_one_simulation(self, tmp_path):
        daemon, server, thread, _ = self._serve(tmp_path)
        results = [None, None]

        def _client(slot):
            client = ServiceClient(socket_path=tmp_path / "svc.sock")
            submitted = client.submit(_spec())
            final = client.wait_done(submitted["id"], timeout=300)
            assert final["state"] == DONE
            results[slot] = (
                submitted, client.results(submitted["id"])["text"])

        clients = [
            threading.Thread(target=_client, args=(slot,))
            for slot in (0, 1)
        ]
        for worker in clients:
            worker.start()
        for worker in clients:
            worker.join(timeout=300)
        assert all(entry is not None for entry in results)
        (first, text_a), (second, text_b) = results
        assert first["id"] == second["id"]
        # One submit created the submission, the other coalesced.
        assert {first["coalesced"], second["coalesced"]} == {True, False}
        assert text_a == text_b
        submission = daemon._get(first["id"])
        kinds = _event_kinds(submission)
        assert kinds.count("submission_start") == 1
        assert kinds.count("job_finish") == len(submission.keys)
        server.request_stop()
        daemon.stop(timeout=10)
        thread.join(timeout=10)

    def test_event_stream_follows_to_completion(self, tmp_path):
        daemon, server, thread, client = self._serve(tmp_path)
        submitted = client.submit(_spec())
        messages = list(client.stream_events(submitted["id"]))
        assert messages, "follow stream yielded nothing"
        final = messages[-1]
        assert final.get("done") is True
        assert final["state"] in TERMINAL
        kinds = [
            message["event"]["event"]
            for message in messages if "event" in message
        ]
        assert "submission_start" in kinds and "submission_end" in kinds
        server.request_stop()
        daemon.stop(timeout=10)
        thread.join(timeout=10)

    def test_tcp_loopback_transport(self, tmp_path):
        daemon = _daemon(tmp_path)
        server = ServiceServer(daemon, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(port=server.port)
        for _ in range(100):
            try:
                assert client.ping()["protocol"] >= 1
                break
            except ServiceError:
                threading.Event().wait(0.05)
        submitted = client.submit(_spec())
        final = client.wait_done(submitted["id"], timeout=300)
        assert final["state"] == DONE
        server.request_stop()
        daemon.stop(timeout=10)
        thread.join(timeout=10)

    def test_typed_errors_cross_the_wire(self, tmp_path):
        daemon, server, thread, client = self._serve(tmp_path)
        with pytest.raises(ServiceError) as err:
            client.status("feedfacedeadbeefcafe0123")
        assert err.value.code == "unknown-job"
        with pytest.raises(ServiceError) as err:
            client.submit({"sweep": {"scale": -1}})
        assert err.value.code == "bad-request"
        server.request_stop()
        daemon.stop(timeout=10)
        thread.join(timeout=10)
