"""Table I design-space tests."""

import pytest

from repro.core.design_space import (
    LEVELS,
    TABLE_I,
    get_parameter,
    parameters_for_level,
    render_table_i,
    scale_level,
    scale_levels,
    scaled_config,
)
from repro.errors import ConfigError
from repro.sim.config import GPUConfig


class TestTableContents:
    def test_thirteen_rows_as_in_the_paper(self):
        assert len(TABLE_I) == 13

    def test_levels_partition_the_table(self):
        assert sum(len(parameters_for_level(l)) for l in LEVELS) == len(TABLE_I)
        assert len(parameters_for_level("dram")) == 3
        assert len(parameters_for_level("l2")) == 7
        assert len(parameters_for_level("l1")) == 3

    def test_paper_baseline_and_scaled_values(self):
        expectations = {
            "dram_sched_queue": (16, 64),
            "dram_banks": (16, 64),
            "dram_bus_width": (4, 8),
            "l2_miss_queue": (8, 32),
            "l2_response_queue": (8, 32),
            "l2_mshr": (32, 128),
            "l2_access_queue": (8, 32),
            "l2_data_port": (32, 128),
            "flit_size": (4, 16),
            "l2_banks": (2, 8),
            "l1_miss_queue": (8, 32),
            "l1_mshr": (32, 128),
            "mem_pipeline_width": (10, 40),
        }
        for key, (baseline, scaled) in expectations.items():
            p = get_parameter(key)
            assert (p.baseline, p.scaled) == (baseline, scaled), key

    def test_types_match_paper(self):
        plus = {p.key for p in TABLE_I if p.kind == "+"}
        assert plus == {"dram_bus_width", "l2_data_port", "flit_size", "l2_banks"}

    def test_baselines_match_default_config(self):
        cfg = GPUConfig()
        assert cfg.dram.sched_queue_depth == 16
        assert cfg.dram.banks == 16
        assert cfg.dram.bus_bytes == 4
        assert cfg.l2.miss_queue_depth == 8
        assert cfg.l2.response_queue_depth == 8
        assert cfg.l2.mshr_entries == 32
        assert cfg.l2.access_queue_depth == 8
        assert cfg.l2.data_port_bytes == 32
        assert cfg.icnt.flit_bytes == 4
        assert cfg.l2.banks == 2
        assert cfg.l1.miss_queue_depth == 8
        assert cfg.l1.mshr_entries == 32
        assert cfg.core.mem_pipeline_width == 10


class TestScaling:
    def test_scale_level_applies_all_rows(self):
        scaled = scale_level(GPUConfig(), "l2")
        assert scaled.l2.miss_queue_depth == 32
        assert scaled.l2.response_queue_depth == 32
        assert scaled.l2.mshr_entries == 128
        assert scaled.l2.access_queue_depth == 32
        assert scaled.l2.data_port_bytes == 128
        assert scaled.icnt.flit_bytes == 16
        assert scaled.l2.banks == 8
        # other levels untouched
        assert scaled.dram.banks == 16
        assert scaled.l1.mshr_entries == 32

    def test_scale_levels_combines(self):
        scaled = scale_levels(GPUConfig(), ("l1", "l2"))
        assert scaled.l1.mshr_entries == 128
        assert scaled.core.mem_pipeline_width == 40
        assert scaled.l2.banks == 8
        assert scaled.dram.sched_queue_depth == 16

    def test_scale_empty_is_identity(self):
        assert scale_levels(GPUConfig(), ()) == GPUConfig()

    def test_scaled_config_single_parameter(self):
        scaled = scaled_config(GPUConfig(), "dram_banks")
        assert scaled.dram.banks == 64
        custom = scaled_config(GPUConfig(), "dram_banks", 32)
        assert custom.dram.banks == 32

    def test_unknown_parameter_and_level(self):
        with pytest.raises(ConfigError):
            scaled_config(GPUConfig(), "l3_banks")
        with pytest.raises(ConfigError):
            scale_level(GPUConfig(), "l4")

    def test_original_config_never_mutated(self):
        cfg = GPUConfig()
        scale_levels(cfg, ("l1", "l2", "dram"))
        assert cfg == GPUConfig()


class TestRendering:
    def test_render_contains_every_row_label(self):
        table = render_table_i()
        for p in TABLE_I:
            assert p.label in table
        assert "(a) DRAM" in table
        assert "(b) L2 Cache" in table
        assert "(c) L1 Cache" in table
